"""Heterogeneous-memory substrate.

This package simulates the machine Sentinel runs on: two memory devices with
different bandwidths (DRAM + Optane PMM, or GPU HBM + CPU DRAM), an OS-style
page table whose entries carry the reserved poison bit Sentinel uses for
access counting (PTE bit 51 in the paper), a TLB, a protection-fault handler,
NUMA first-touch placement, the hardware DRAM cache of Optane's Memory Mode,
and an asynchronous page-migration engine modelled on ``move_pages()`` with
two helper threads (one per direction).
"""

from repro.mem.devices import DeviceKind, DeviceSpec, MemoryDevice
from repro.mem.platforms import Platform, OPTANE_HM, GPU_HM, CXL_HM, GPU_A100_HM
from repro.mem.page import PAGE_SIZE, PageTableEntry, PageTable
from repro.mem.tlb import TLB
from repro.mem.faults import FaultHandler
from repro.mem.numa import FirstTouchPolicy
from repro.mem.cache import DRAMCache
from repro.mem.migration import MigrationEngine
from repro.mem.energy import EnergyBreakdown, EnergySpec, GPU_ENERGY, OPTANE_ENERGY, estimate_step_energy
from repro.mem.machine import Machine

__all__ = [
    "DeviceKind",
    "DeviceSpec",
    "MemoryDevice",
    "Platform",
    "OPTANE_HM",
    "GPU_HM",
    "CXL_HM",
    "GPU_A100_HM",
    "PAGE_SIZE",
    "PageTableEntry",
    "PageTable",
    "TLB",
    "FaultHandler",
    "FirstTouchPolicy",
    "DRAMCache",
    "MigrationEngine",
    "Machine",
    "EnergySpec",
    "EnergyBreakdown",
    "OPTANE_ENERGY",
    "GPU_ENERGY",
    "estimate_step_energy",
]
