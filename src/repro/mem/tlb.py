"""A small TLB model.

The TLB matters to Sentinel for one reason: a poisoned PTE only faults if its
translation is *not* cached, so the fault handler must flush the entry after
every counted access to keep counting.  We model a finite
least-recently-used translation cache with per-entry flush, which is enough
to reproduce that protocol and to charge TLB-miss costs during profiling.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable


class TLB:
    """Fixed-capacity LRU translation lookaside buffer."""

    def __init__(self, capacity: int = 1536) -> None:
        if capacity <= 0:
            raise ValueError(f"TLB capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self._entries: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    def lookup(self, vpn: int) -> bool:
        """Translate ``vpn``; returns True on hit.  Misses insert the entry."""
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[vpn] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return False

    def flush(self, vpn: int) -> None:
        """Invalidate one entry (no-op if absent) — ``invlpg`` equivalent."""
        self._entries.pop(vpn, None)

    def flush_many(self, vpns: "Iterable[int]") -> None:
        """Invalidate a batch of entries in one call (a ranged shootdown).

        Equivalent to ``flush`` per vpn; batch teardown paths (unmapping a
        multi-run tensor) use it to drop the per-entry call overhead.
        """
        pop = self._entries.pop
        for vpn in vpns:
            pop(vpn, None)

    def flush_all(self) -> None:
        self._entries.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
