"""OS page table with poisonable entries, managed as contiguous page runs.

Sentinel's profiler counts main-memory accesses by setting a reserved bit
(bit 51) in a page's PTE and flushing the TLB entry: the next access to the
page takes a protection fault, whose handler counts the access, re-poisons
the PTE, and flushes again.  This module models that machinery.

One deliberate abstraction: entries cover *runs* of contiguous pages rather
than single pages.  Tensors (and Sentinel's co-allocation groups) occupy
contiguous page ranges that are always placed and migrated as a unit, so a
multi-gigabyte tensor is one :class:`PageTableEntry` covering millions of
pages instead of millions of Python objects.  Per-page effects — one fault
per page per access pass, one TLB flush per page — are accounted
arithmetically via :attr:`PageTableEntry.npages`.  Runs can be split when a
policy genuinely needs to move part of a range (e.g. page-granularity FIFO
eviction in the IAL baseline).

Migration state lives on the entry: while a run is in flight the entry
records the destination tier and the completion time, so the executor can
decide whether to stall (GPU) or keep reading the still-valid source copy
(CPU) — mirroring ``move_pages()`` semantics, where the old frame stays
mapped until the kernel swaps the PTE.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import PageError
from repro.mem.devices import DeviceKind

#: Default OS page size (bytes).
PAGE_SIZE = 4096

#: The reserved PTE bit Sentinel poisons (informational; we store a bool).
POISON_BIT = 51


@dataclass
class PageTableEntry:
    """A run of contiguous pages sharing placement and profiling state.

    Attributes:
        vpn: virtual page number of the first page in the run (also the
            run's identity in the table).
        npages: number of contiguous pages covered.
        device: tier the frames currently reside on.
        poisoned: whether the reserved bit is set on the run's PTEs.
        reads / writes: access counts recorded by the fault handler
            (one count per page per access pass).
        migrating_to: destination tier if a migration is in flight.
        available_at: simulation time the in-flight copy completes.
        pinned: ``mlock``-style pin — a pinned run must not be migrated.
        initialized: whether the run has ever been written.  A fresh output
            buffer holds no data worth copying: residency platforms satisfy
            its first placement by allocating device frames directly
            (zero-copy materialize) rather than a PCIe transfer.
    """

    vpn: int
    npages: int
    device: DeviceKind
    poisoned: bool = False
    reads: int = 0
    writes: int = 0
    migrating_to: Optional[DeviceKind] = None
    available_at: float = 0.0
    pinned: bool = False
    initialized: bool = False

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def in_flight(self) -> bool:
        return self.migrating_to is not None

    def nbytes(self, page_size: int) -> int:
        return self.npages * page_size

    def begin_migration(self, target: DeviceKind, available_at: float) -> None:
        if self.pinned:
            raise PageError(f"run {self.vpn} is pinned and cannot migrate")
        if self.migrating_to is not None:
            raise PageError(f"run {self.vpn} is already migrating")
        if target is self.device:
            raise PageError(f"run {self.vpn} is already on {target.value}")
        self.migrating_to = target
        self.available_at = available_at

    def commit_migration(self) -> DeviceKind:
        """Finish the in-flight migration; returns the vacated source tier."""
        if self.migrating_to is None:
            raise PageError(f"run {self.vpn} has no migration to commit")
        source = self.device
        self.device = self.migrating_to
        self.migrating_to = None
        return source

    def effective_device(self, now: float) -> DeviceKind:
        """Tier whose copy a CPU access at time ``now`` would read.

        Before the copy completes the source frames are still the valid
        mapping; afterwards the destination is (even if the engine has not
        yet swept the entry through :meth:`commit_migration`).
        """
        if self.migrating_to is not None and now >= self.available_at:
            return self.migrating_to
        return self.device

    def reset_counts(self) -> None:
        self.reads = 0
        self.writes = 0


class PageTable:
    """Virtual-page-number space managed as runs of contiguous pages.

    Virtual page numbers are handed out sequentially and never reused within
    a simulation run, which keeps traces unambiguous (a vpn identifies one
    allocation for the whole run, like addresses in a real trace).
    """

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError(f"page size must be a positive power of two: {page_size}")
        self.page_size = page_size
        self._entries: Dict[int, PageTableEntry] = {}
        self._next_vpn = 0
        #: sorted run-start vpns — the interval index behind
        #: :meth:`run_containing`/:meth:`runs_in_range`, so point and range
        #: lookups bisect instead of walking every entry.
        self._starts: List[int] = []
        self._mapped_pages = 0

    def __len__(self) -> int:
        """Number of mapped runs (not pages)."""
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    @property
    def mapped_pages(self) -> int:
        return self._mapped_pages

    def map_run(self, npages: int, device: DeviceKind) -> PageTableEntry:
        """Map a fresh run of ``npages`` contiguous pages on ``device``."""
        if npages <= 0:
            raise ValueError(f"must map at least one page, got {npages!r}")
        entry = PageTableEntry(vpn=self._next_vpn, npages=npages, device=device)
        self._next_vpn += npages
        self._entries[entry.vpn] = entry
        # Fresh vpns are handed out monotonically, so this append keeps
        # the interval index sorted without a bisect.
        self._starts.append(entry.vpn)
        self._mapped_pages += npages
        return entry

    def unmap(self, vpn: int) -> PageTableEntry:
        """Remove the run starting at ``vpn``; returns it for accounting."""
        try:
            entry = self._entries.pop(vpn)
        except KeyError:
            raise PageError(f"no run starts at vpn {vpn}") from None
        index = bisect_right(self._starts, vpn) - 1
        del self._starts[index]
        self._mapped_pages -= entry.npages
        return entry

    def entry(self, vpn: int) -> PageTableEntry:
        try:
            return self._entries[vpn]
        except KeyError:
            raise PageError(f"no run starts at vpn {vpn}") from None

    def entries(self) -> Iterator[PageTableEntry]:
        return iter(self._entries.values())

    def split(self, vpn: int, npages_first: int) -> PageTableEntry:
        """Split a run in two; returns the new second run.

        The first run keeps ``npages_first`` pages and its identity; the
        remainder becomes a fresh entry inheriting placement and poison
        state.  Access counts stay with the first run (they are per-run
        aggregates and the profiler only splits before counting starts).
        In-flight runs cannot be split.
        """
        entry = self.entry(vpn)
        if entry.in_flight:
            raise PageError(f"cannot split in-flight run {vpn}")
        if not 0 < npages_first < entry.npages:
            raise PageError(
                f"split point {npages_first} outside run of {entry.npages} pages"
            )
        tail = PageTableEntry(
            vpn=entry.vpn + npages_first,
            npages=entry.npages - npages_first,
            device=entry.device,
            poisoned=entry.poisoned,
            pinned=entry.pinned,
            initialized=entry.initialized,
        )
        entry.npages = npages_first
        self._entries[tail.vpn] = tail
        insort(self._starts, tail.vpn)
        return tail

    def run_containing(self, vpn: int) -> Optional[PageTableEntry]:
        """The run covering page ``vpn``, or ``None`` if it is unmapped.

        A point lookup on the interval index: bisect to the last run
        starting at or before ``vpn``, then check coverage — O(log runs)
        against the O(runs) scan a naive table walk costs.
        """
        index = bisect_right(self._starts, vpn) - 1
        if index < 0:
            return None
        entry = self._entries[self._starts[index]]
        if vpn < entry.vpn + entry.npages:
            return entry
        return None

    def runs_in_range(self, vpn: int, npages: int) -> List[PageTableEntry]:
        """All runs overlapping ``[vpn, vpn + npages)``, in address order.

        The batch-lookup companion to :meth:`run_containing`: one bisect
        finds the first candidate and the sorted start index yields the
        rest contiguously, so a range query costs O(log runs + answers).
        """
        if npages < 0:
            raise ValueError(f"cannot query negative pages {npages!r}")
        end = vpn + npages
        starts = self._starts
        index = bisect_right(starts, vpn) - 1
        if index >= 0:
            entry = self._entries[starts[index]]
            if vpn >= entry.vpn + entry.npages:
                index += 1
        else:
            index = 0
        found: List[PageTableEntry] = []
        while index < len(starts) and starts[index] < end:
            found.append(self._entries[starts[index]])
            index += 1
        return found

    def runs_on(self, device: DeviceKind) -> List[PageTableEntry]:
        """Runs whose committed residency is ``device`` (in-flight excluded)."""
        return [
            e
            for e in self._entries.values()
            if e.device is device and e.migrating_to is None
        ]

    def poison_all(self) -> None:
        for entry in self._entries.values():
            entry.poisoned = True

    def unpoison_all(self) -> None:
        for entry in self._entries.values():
            entry.poisoned = False

    def bytes_on(self, device: DeviceKind) -> int:
        return sum(e.npages for e in self.runs_on(device)) * self.page_size
