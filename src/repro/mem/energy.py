"""Memory-system energy accounting.

The paper argues twice from energy: moving short-lived tensors "is highly
inefficient in terms of both performance and energy efficiency" (§IV-C),
and page-level false sharing "leads to memory bandwidth waste" (§I).  This
module turns a run's traffic counters into Joules so those arguments are
measurable: per-byte access energy for each tier, per-byte migration energy
(a read on one side plus a write on the other), and background power
integrated over the step.

Per-byte numbers are published device characteristics (DRAM ~15 pJ/bit
dynamic; Optane media writes several times costlier than reads); as with
timing, the *ratios* carry the results.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Joules per byte (1 pJ/bit = 8e-12 J/B).
PJ_PER_BIT = 8e-12


@dataclass(frozen=True)
class EnergySpec:
    """Energy characteristics of a two-tier memory system.

    Attributes:
        fast_read / fast_write: dynamic energy per byte on the fast tier.
        slow_read / slow_write: dynamic energy per byte on the slow tier.
        fast_static_watts / slow_static_watts: background power, integrated
            over the step duration.
    """

    fast_read: float
    fast_write: float
    slow_read: float
    slow_write: float
    fast_static_watts: float = 0.0
    slow_static_watts: float = 0.0

    def __post_init__(self) -> None:
        for name in ("fast_read", "fast_write", "slow_read", "slow_write"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def promote_per_byte(self) -> float:
        """Slow-to-fast migration: read the slow copy, write the fast one."""
        return self.slow_read + self.fast_write

    @property
    def demote_per_byte(self) -> float:
        """Fast-to-slow migration: read fast, write slow."""
        return self.fast_read + self.slow_write


#: DDR4 + Optane PMM: DRAM ~15 pJ/bit; Optane reads ~2x DRAM, writes ~6x.
OPTANE_ENERGY = EnergySpec(
    fast_read=15 * PJ_PER_BIT,
    fast_write=18 * PJ_PER_BIT,
    slow_read=35 * PJ_PER_BIT,
    slow_write=95 * PJ_PER_BIT,
    fast_static_watts=4.0,
    slow_static_watts=6.0,
)

#: HBM2 is very efficient per byte (~4 pJ/bit); host DRAM over PCIe adds
#: the link's energy to every transferred byte.
GPU_ENERGY = EnergySpec(
    fast_read=4 * PJ_PER_BIT,
    fast_write=4 * PJ_PER_BIT,
    slow_read=25 * PJ_PER_BIT,
    slow_write=28 * PJ_PER_BIT,
    fast_static_watts=10.0,
    slow_static_watts=8.0,
)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules spent by one training step, by cause."""

    fast_access: float
    slow_access: float
    migration: float
    static: float

    @property
    def total(self) -> float:
        return self.fast_access + self.slow_access + self.migration + self.static

    @property
    def dynamic(self) -> float:
        return self.fast_access + self.slow_access + self.migration


def estimate_step_energy(metrics, spec: EnergySpec) -> EnergyBreakdown:
    """Energy of one measured step (a :class:`~repro.harness.runner.RunMetrics`
    or any object with the same traffic fields).

    Access traffic is split half read / half write within each tier — ops
    read inputs and write outputs in comparable volumes, and the per-tier
    asymmetry (not the read/write split) dominates the comparison.
    """
    fast_access = metrics.bytes_fast * (spec.fast_read + spec.fast_write) / 2
    slow_access = metrics.bytes_slow * (spec.slow_read + spec.slow_write) / 2
    migration = (
        metrics.promoted_bytes * spec.promote_per_byte
        + metrics.demoted_bytes * spec.demote_per_byte
    )
    static = metrics.step_time * (spec.fast_static_watts + spec.slow_static_watts)
    return EnergyBreakdown(
        fast_access=fast_access,
        slow_access=slow_access,
        migration=migration,
        static=static,
    )
