"""Optane "Memory Mode": DRAM as a hardware-managed cache in front of PMM.

In Memory Mode the DRAM is invisible to software; the memory controller uses
it as a cache of PMM at near-page granularity.  We model it as a byte-budget
LRU cache over page runs: an access to a run that is resident proceeds at
DRAM speed; a miss stalls for the fill from PMM (and for writing back the
dirty bytes of whatever was evicted to make room).  All of this is
synchronous — hardware cache fills sit on the load's critical path — which
is why Memory Mode loses to Sentinel's proactive, overlapped migration for
working sets larger than DRAM.

Runs larger than the entire cache bypass it and are served from PMM
directly (a hardware cache cannot hold them; keeping them out also models
the controller's thrash behaviour conservatively).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.mem.devices import MemoryDevice


@dataclass
class _Line:
    nbytes: int
    dirty_bytes: int = 0


class DRAMCache:
    """Byte-budget LRU cache of slow memory, fronted by the fast device."""

    def __init__(
        self,
        fast: MemoryDevice,
        slow: MemoryDevice,
        page_size: int,
        fill_bandwidth: float = 0.0,
        writeback_bandwidth: float = 0.0,
    ) -> None:
        """``fill_bandwidth``/``writeback_bandwidth`` let the cache stream
        at the device's *sequential* rate (the memory controller fetches
        whole lines back to back) instead of the effective rate op-level
        accesses see; zero falls back to the slow device's model."""
        if page_size <= 0:
            raise ValueError(f"page size must be positive, got {page_size!r}")
        self.fast = fast
        self.slow = slow
        self.page_size = page_size
        self.fill_bandwidth = fill_bandwidth
        self.writeback_bandwidth = writeback_bandwidth
        # A hardware page cache is far from fully associative: conflict
        # misses waste part of the nominal capacity.
        self.capacity = int(fast.capacity * 0.75)
        self._lines: "OrderedDict[int, _Line]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.writeback_bytes = 0

    def resident(self, run_id: int) -> bool:
        return run_id in self._lines

    @property
    def used(self) -> int:
        return self._used

    def _fill_time(self, nbytes: int) -> float:
        if self.fill_bandwidth > 0:
            return nbytes / self.fill_bandwidth
        return self.slow.access_time(nbytes, is_write=False)

    def _writeback_time(self, nbytes: int) -> float:
        if self.writeback_bandwidth > 0:
            return nbytes / self.writeback_bandwidth
        return self.slow.access_time(nbytes, is_write=True)

    def _evict_until(self, needed: int) -> float:
        """Evict LRU lines until ``needed`` bytes fit; returns writeback time."""
        cost = 0.0
        while self._used + needed > self.capacity and self._lines:
            _, line = self._lines.popitem(last=False)
            self._used -= line.nbytes
            if line.dirty_bytes:
                cost += self._writeback_time(line.dirty_bytes)
                self.writeback_bytes += line.dirty_bytes
        return cost

    def access(
        self, run_id: int, run_bytes: int, touched_bytes: int, is_write: bool
    ) -> float:
        """Time to access ``touched_bytes`` of run ``run_id`` through the cache."""
        if touched_bytes < 0 or run_bytes <= 0:
            raise ValueError(
                f"invalid access: run_bytes={run_bytes!r} touched={touched_bytes!r}"
            )
        if run_bytes > self.capacity:
            # Uncacheable: served straight from PMM.
            self.misses += 1
            return self.slow.access_time(touched_bytes, is_write)
        line = self._lines.get(run_id)
        cost = 0.0
        if line is None:
            self.misses += 1
            cost += self._evict_until(run_bytes)
            # Fill what the access streams through; the first toucher of a
            # run pays the PMM read on the critical path.
            cost += self._fill_time(touched_bytes)
            line = _Line(nbytes=run_bytes)
            self._lines[run_id] = line
            self._used += run_bytes
        else:
            self.hits += 1
            self._lines.move_to_end(run_id)
        if is_write:
            line.dirty_bytes = min(run_bytes, line.dirty_bytes + touched_bytes)
        cost += self.fast.access_time(touched_bytes, is_write)
        return cost

    def invalidate(self, run_id: int) -> None:
        """Drop a run on free; dirty data is discarded (the run is dead)."""
        line = self._lines.pop(run_id, None)
        if line is not None:
            self._used -= line.nbytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
