"""First-touch NUMA placement.

On the Optane platform DRAM and PMM are two NUMA nodes; Linux's default
policy places a page on the node of the CPU that first touches it, spilling
to the other node when the preferred one is full.  Training threads run on
the DRAM node, so first-touch fills DRAM until it is exhausted and then
spills everything else to PMM — with no later correction, which is why it
performs poorly for working sets larger than DRAM (paper Figure 8).
"""

from __future__ import annotations

from repro.mem.devices import DeviceFullError, DeviceKind, MemoryDevice


class FirstTouchPolicy:
    """Chooses an initial tier for new pages, first-touch style."""

    def __init__(
        self,
        fast: MemoryDevice,
        slow: MemoryDevice,
        preferred: DeviceKind = DeviceKind.FAST,
    ) -> None:
        self.fast = fast
        self.slow = slow
        self.preferred = preferred
        self.spilled_pages = 0

    def _device(self, kind: DeviceKind) -> MemoryDevice:
        return self.fast if kind is DeviceKind.FAST else self.slow

    def choose(self, nbytes: int, page_size: int = 4096) -> DeviceKind:
        """Tier for a new allocation of ``nbytes`` (page-rounded).

        Raises :class:`DeviceFullError` if neither node can hold it.
        """
        nbytes = page_size * (-(-nbytes // page_size))
        preferred = self._device(self.preferred)
        if preferred.fits(nbytes):
            return self.preferred
        fallback = self._device(self.preferred.other())
        if fallback.fits(nbytes):
            self.spilled_pages += 1
            return self.preferred.other()
        raise DeviceFullError(
            f"first-touch: {nbytes} bytes fit on neither node "
            f"(fast {self.fast.free} free, slow {self.slow.free} free)"
        )
