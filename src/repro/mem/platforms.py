"""Platform presets matching the paper's two evaluation machines (Table II).

The absolute numbers are published device characteristics, not measurements
of the authors' testbed; what the reproduction relies on is the *ratios*:

* Optane platform — DRAM is ~6x faster than Optane for reads and ~16x for
  writes; page migration sustains a few GB/s per helper thread.
* GPU platform — HBM2 is ~75x faster than the PCIe 3.0 x16 link over which
  tensors are staged from CPU memory, and GPU compute throughput is an order
  of magnitude above the CPU's.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.mem.devices import DeviceSpec

GIB = 1024**3


@dataclass(frozen=True)
class Platform:
    """A heterogeneous-memory machine configuration.

    Attributes:
        name: platform label.
        fast: spec of the fast tier (DRAM or GPU HBM).
        slow: spec of the slow tier (Optane PMM or CPU DRAM).
        promote_bandwidth: slow-to-fast migration bandwidth, bytes/s
            (one helper thread / one CUDA copy stream).
        demote_bandwidth: fast-to-slow migration bandwidth, bytes/s.
        migration_latency: per-migration-call fixed cost in seconds
            (``move_pages()`` syscall / ``cudaMemPrefetchAsync`` launch).
        fault_cost: cost of one protection fault during profiling, seconds
            (trap + handler + PTE poison + TLB flush).
        compute_throughput: effective FLOP/s of the processor, used to turn
            an op's FLOP count into compute time.
        residency_required: True on GPU — a kernel cannot run until its
            operand pages are resident in fast memory; on CPU a page can
            always be accessed in place at the slow tier's speed.
        page_size: OS page size in bytes.
    """

    name: str
    fast: DeviceSpec
    slow: DeviceSpec
    promote_bandwidth: float
    demote_bandwidth: float
    migration_latency: float
    fault_cost: float
    compute_throughput: float
    residency_required: bool
    page_size: int = 4096

    def __post_init__(self) -> None:
        if self.promote_bandwidth <= 0 or self.demote_bandwidth <= 0:
            raise ValueError(f"migration bandwidths must be positive: {self.name}")
        if self.compute_throughput <= 0:
            raise ValueError(f"compute throughput must be positive: {self.name}")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError(f"page size must be a positive power of two: {self.name}")

    def with_fast_capacity(self, capacity: int) -> "Platform":
        """This platform with the fast tier resized (sensitivity sweeps)."""
        if capacity <= 0:
            raise ValueError(f"fast capacity must be positive, got {capacity!r}")
        return replace(self, fast=self.fast.with_capacity(capacity))

    def with_slow_capacity(self, capacity: int) -> "Platform":
        """This platform with the slow tier resized."""
        if capacity <= 0:
            raise ValueError(f"slow capacity must be positive, got {capacity!r}")
        return replace(self, slow=self.slow.with_capacity(capacity))


#: DDR4 + Intel Optane DC PMM, App-Direct mode, two NUMA nodes (paper Table II).
OPTANE_HM = Platform(
    name="optane-hm",
    fast=DeviceSpec(
        name="DDR4",
        capacity=128 * GIB,
        # Effective bandwidth under training access patterns (mixed
        # read/write, many threads), not the sequential peak.
        read_bandwidth=40e9,
        write_bandwidth=30e9,
        latency=80e-9,
    ),
    slow=DeviceSpec(
        name="Optane-PMM",
        capacity=1024 * GIB,
        # Optane degrades far more than DRAM under mixed access: ~4 GB/s
        # effective reads, under 2 GB/s effective writes (vs 13/4.6
        # sequential) — the source of the 4-8x slow-only penalty.
        read_bandwidth=4.0e9,
        write_bandwidth=1.8e9,
        latency=300e-9,
    ),
    # The migration helper threads stream whole pages sequentially and so
    # see the devices' sequential bandwidth, unlike op-level accesses.
    promote_bandwidth=8.0e9,
    demote_bandwidth=4.6e9,
    migration_latency=4e-6,
    fault_cost=1.5e-6,
    compute_throughput=0.25e12,
    residency_required=False,
)

#: NVIDIA V100 (16 GB HBM2) + host DRAM over PCIe 3.0 x16 (paper Table II).
GPU_HM = Platform(
    name="gpu-hm",
    fast=DeviceSpec(
        name="HBM2",
        capacity=16 * GIB,
        read_bandwidth=700e9,
        write_bandwidth=700e9,
        latency=1e-6,
    ),
    slow=DeviceSpec(
        name="Host-DRAM",
        capacity=384 * GIB,
        read_bandwidth=40e9,
        write_bandwidth=30e9,
        latency=80e-9,
    ),
    promote_bandwidth=12e9,
    demote_bandwidth=12e9,
    migration_latency=10e-6,
    fault_cost=20e-6,
    compute_throughput=10e12,
    residency_required=True,
)


#: CXL-attached memory expander as the slow tier — the post-Optane
#: incarnation of capacity-tier heterogeneous memory.  Reads are faster
#: and writes far less asymmetric than Optane's, but latency is higher
#: than local DRAM; migration moves over the same CXL link.
CXL_HM = Platform(
    name="cxl-hm",
    fast=DeviceSpec(
        name="DDR5",
        capacity=128 * GIB,
        read_bandwidth=52e9,
        write_bandwidth=40e9,
        latency=90e-9,
    ),
    slow=DeviceSpec(
        name="CXL-DRAM",
        capacity=1024 * GIB,
        # Effective bandwidth through the CXL.mem protocol overhead.
        read_bandwidth=14e9,
        write_bandwidth=11e9,
        latency=350e-9,
    ),
    promote_bandwidth=20e9,
    demote_bandwidth=16e9,
    migration_latency=3e-6,
    fault_cost=1.5e-6,
    compute_throughput=0.25e12,
    residency_required=False,
)


#: A100-class accelerator: more device memory, faster HBM, PCIe 4.0 link.
#: Used to check that the GPU results generalize beyond the paper's V100.
GPU_A100_HM = Platform(
    name="gpu-a100-hm",
    fast=DeviceSpec(
        name="HBM2e",
        capacity=40 * GIB,
        read_bandwidth=1200e9,
        write_bandwidth=1200e9,
        latency=1e-6,
    ),
    slow=DeviceSpec(
        name="Host-DRAM",
        capacity=1024 * GIB,
        read_bandwidth=40e9,
        write_bandwidth=30e9,
        latency=80e-9,
    ),
    promote_bandwidth=24e9,
    demote_bandwidth=24e9,
    migration_latency=10e-6,
    fault_cost=20e-6,
    compute_throughput=19e12,
    residency_required=True,
)
