"""Memory RAS: error injection, scrubbing, page retirement, and recovery.

Sentinel keeps most tensors on a cheap, dense slow tier — exactly the
media (Optane-class NVM, CXL-attached DRAM) where correctable and
uncorrectable memory errors live.  This module models that failure class
end to end:

* **Error model** — seeded CE/UE arrivals per device at per-byte·second
  rates (slow tier ≫ fast via :attr:`RASConfig.fast_rate_scale`), plus a
  wear model: a page whose corrected-error count crosses
  :attr:`RASConfig.ce_storm_threshold` escalates further errors to UEs
  (a CE storm predicting media failure).
* **Detection** — three paths.  Demand accesses machine-check latent
  errors on the touched tensor's pages (:meth:`RasEngine.check_access`).
  A patrol scrubber sweeps each device's mapped bytes at a configured
  bandwidth; the scrub cursor is analytic (a due-time per latent CE,
  drawn inside the current sweep period) so no engine process is needed
  and serving loops never block on a perpetual scrubber.  Migrations are
  checksum-verified: corruption in transit is detected before commit and
  the transfer is retransmitted (:meth:`RasEngine.transit_gate`), and a
  committed migration's read pass corrects any latent CEs it carried
  (:meth:`RasEngine.on_migration_commit`).
* **Containment** — a UE retires the struck frame: the page-table run is
  split around the dead page and unmapped, the frame is permanently
  withheld from allocation via the device's ``reserve()`` mechanism, and
  the vpn lands on the per-device badblock list.  The pressure governor
  (when attached) sees the capacity loss immediately.
* **Recovery** — a ladder, in order: a page that was never initialized
  costs nothing to lose; read-only preallocated data (weights/inputs)
  is re-fetched from its master copy over the demand channel; volatile
  tensors (activations, gradients, temporaries) are **rematerialized**
  by re-running their producer op, costed as real compute time on the
  critical path.  When the ladder is exhausted the engine raises
  :class:`repro.errors.UncorrectableMemoryError`, which the serving
  layer absorbs per job (against its restart budget) while the machine
  stays online.

Terminology note: the profiling "poison" bit on
:class:`repro.mem.page.PageTableEntry` is Sentinel's *access counting*
mechanism and has nothing to do with data loss.  This module never
touches it; RAS state is keyed by vpn in the engine itself, and uses
UE/CE/retired vocabulary throughout, so profiling-poisoned runs
interoperate with error injection without ambiguity.

Determinism: all draws come from per-concern ``random.Random`` streams
seeded ``f"{seed}:ras:{concern}"``, the same idiom as
:class:`repro.chaos.FaultInjector`.  With the config disabled no
``RasEngine`` is built at all and every run is byte-identical to a
pre-RAS build.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import UncorrectableMemoryError
from repro.mem.devices import DeviceKind, MemoryDevice

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.dnn.alloc import Allocator, TensorMapping
    from repro.dnn.graph import Op
    from repro.dnn.tensor import Tensor
    from repro.mem.machine import Machine
    from repro.mem.migration import MigrationRecord
    from repro.mem.page import PageTableEntry
    from repro.sim.channel import BandwidthChannel

__all__ = ["RECOVERY_POLICIES", "RASConfig", "RasEngine"]

#: Recovery ladders, weakest to strongest.  Every policy includes the
#: rungs of the ones before it: ``refetch`` adds the clean-copy re-fetch
#: to ``none``'s raise, and ``remat`` adds producer-op rematerialization.
RECOVERY_POLICIES = ("none", "refetch", "remat")


@dataclass(frozen=True)
class RASConfig:
    """Configuration for the memory RAS layer.

    Rates are per byte·second of *used* memory on the slow tier; the fast
    tier (DRAM-class) scales them by :attr:`fast_rate_scale`.  The default
    config is fully disabled: a machine built with it (or with ``None``)
    carries no :class:`RasEngine` and is byte-identical to a pre-RAS build.

    Attributes:
        seed: base seed for the per-concern random streams.
        ue_rate: uncorrectable-error arrivals per byte·second (slow tier).
        ce_rate: correctable-error arrivals per byte·second (slow tier).
        fast_rate_scale: multiplier on both rates for the fast tier
            (DRAM-class media is orders of magnitude more reliable).
        scrub_bandwidth: patrol-scrubber sweep rate in bytes/second;
            ``0`` disables scrubbing.  A latent CE is found by the scrubber
            at a uniform offset within the sweep period
            ``device.used / scrub_bandwidth`` after injection — if a demand
            access or a migration doesn't reach it first.
        ce_storm_threshold: corrected-error count at which a page's wear
            escalates further errors on it to UEs.
        transit_corruption_rate: probability that one migration transfer is
            corrupted in flight; checksum verification detects it before
            commit and the transfer is retransmitted (the burned channel
            time is the cost).
        recovery: recovery-ladder policy, one of
            :data:`RECOVERY_POLICIES`.
        retire_on_ue: whether a UE permanently retires the struck frame
            (capacity shrinks via ``reserve()``, vpn joins the badblock
            list).
    """

    seed: int = 0
    ue_rate: float = 0.0
    ce_rate: float = 0.0
    fast_rate_scale: float = 0.01
    scrub_bandwidth: float = 0.0
    ce_storm_threshold: int = 4
    transit_corruption_rate: float = 0.0
    recovery: str = "remat"
    retire_on_ue: bool = True

    def __post_init__(self) -> None:
        for field in ("ue_rate", "ce_rate", "fast_rate_scale",
                      "scrub_bandwidth", "transit_corruption_rate"):
            value = getattr(self, field)
            if value < 0:
                raise ValueError(f"{field} must be >= 0, got {value!r}")
        if not 0.0 <= self.transit_corruption_rate < 1.0:
            raise ValueError(
                f"transit_corruption_rate must be in [0, 1), got "
                f"{self.transit_corruption_rate!r}"
            )
        if self.ce_storm_threshold < 1:
            raise ValueError(
                f"ce_storm_threshold must be >= 1, got {self.ce_storm_threshold!r}"
            )
        if self.recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"unknown recovery policy {self.recovery!r} "
                f"(one of {', '.join(RECOVERY_POLICIES)})"
            )

    @property
    def enabled(self) -> bool:
        """Whether this config injects anything at all."""
        return (
            self.ue_rate > 0
            or self.ce_rate > 0
            or self.transit_corruption_rate > 0
        )

    def reseeded(self, seed: int) -> "RASConfig":
        """A copy with a different seed (per-grid-point reseeding)."""
        return replace(self, seed=seed)


class RasEngine:
    """Live RAS state for one machine: latent errors, wear, badblocks.

    Built by :class:`repro.mem.machine.Machine` only when the config is
    enabled; all hook sites elsewhere are single ``is None`` checks.

    The engine is clockless — callers pass ``now`` — and keeps all state
    keyed by vpn.  Virtual page numbers are stable across migration (the
    run keeps its vpn, only its device changes), so latent errors travel
    with the data without any relocation bookkeeping at commit time.
    """

    def __init__(self, config: RASConfig, machine: "Machine") -> None:
        self.config = config
        self.machine = machine
        self._error_rng = random.Random(f"{config.seed}:ras:errors")
        self._transit_rng = random.Random(f"{config.seed}:ras:transit")
        #: latent, not-yet-detected errors: vpn -> "ce" | "ue".
        self._latent: Dict[int, str] = {}
        #: corrected-error count per page (wear model input).
        self._ce_wear: Dict[int, int] = {}
        #: permanently retired frames, per device name.
        self.badblocks: Dict[str, List[int]] = {}
        #: scrub schedule: (due_time, seq, vpn) heap, drained lazily.
        self._scrub_due: List[Tuple[float, int, int]] = []
        self._scrub_seq = 0
        self.counts: Dict[str, int] = {
            "ras.errors_injected": 0,
            "ras.ce_corrected": 0,
            "ras.ce_scrubbed": 0,
            "ras.ce_migration_corrected": 0,
            "ras.ce_storm_escalations": 0,
            "ras.ue_detected": 0,
            "ras.retired_frames": 0,
            "ras.clean_drops": 0,
            "ras.refetch_events": 0,
            "ras.remat_events": 0,
            "ras.transit_retries": 0,
        }
        self.remat_bytes = 0
        self.remat_time = 0.0
        self.refetch_time = 0.0
        self.scrub_swept_bytes = 0.0

    # ----------------------------------------------------------- observation

    @property
    def latent_errors(self) -> Dict[int, str]:
        """Snapshot of undetected errors (vpn -> kind); for tests/tools."""
        return dict(self._latent)

    @property
    def retired_frames(self) -> int:
        return self.counts["ras.retired_frames"]

    def _trace(self, name: str, ts: float, **args: Any) -> None:
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.instant(name, "ras", ts=ts, track="ras", **args)

    def _trace_span(self, name: str, ts: float, dur: float, **args: Any) -> None:
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.complete(name, "ras", ts=ts, dur=dur, track="ras", **args)

    # --------------------------------------------------------------- arrivals

    def age(self, elapsed: float, now: float) -> None:
        """Advance wall-clock exposure by ``elapsed`` seconds ending at ``now``.

        Called once per executed layer.  First drains scrubber arrivals due
        by ``now`` (latent CEs the patrol sweep reached are corrected
        without ever costing a demand access), then injects new errors:
        the expected count per device is ``used x elapsed x rate``, drawn
        with randomized rounding (the :meth:`repro.chaos.FaultInjector`
        idiom) so fractional expectations accumulate correctly over many
        short layers.
        """
        if elapsed <= 0.0:
            self._drain_scrubber(now)
            return
        self._drain_scrubber(now)
        config = self.config
        total_rate = config.ue_rate + config.ce_rate
        if total_rate <= 0.0:
            return
        ue_share = config.ue_rate / total_rate
        for device, scale in (
            (self.machine.slow, 1.0),
            (self.machine.fast, config.fast_rate_scale),
        ):
            expected = device.used * elapsed * total_rate * scale
            if expected <= 0.0:
                continue
            count = int(expected)
            if self._error_rng.random() < expected - count:
                count += 1
            for _ in range(count):
                self._inject_one(device, ue_share, now)
        if config.scrub_bandwidth > 0.0:
            self.scrub_swept_bytes += elapsed * config.scrub_bandwidth

    def _inject_one(self, device: MemoryDevice, ue_share: float, now: float) -> None:
        """Land one error on a uniformly-chosen mapped page of ``device``."""
        runs = self.machine.page_table.runs_on(device.kind)
        total_pages = sum(run.npages for run in runs)
        if total_pages == 0:
            return
        index = self._error_rng.randrange(total_pages)
        vpn = -1
        for run in runs:
            if index < run.npages:
                vpn = run.vpn + index
                break
            index -= run.npages
        is_ue = self._error_rng.random() < ue_share
        wear = self._ce_wear.get(vpn, 0)
        if not is_ue and wear >= self.config.ce_storm_threshold:
            # CE-storm escalation: this frame's media is failing.
            is_ue = True
            self.counts["ras.ce_storm_escalations"] += 1
        kind = "ue" if is_ue else "ce"
        previous = self._latent.get(vpn)
        if previous != "ue":  # a latent UE is never downgraded
            self._latent[vpn] = kind
        self.counts["ras.errors_injected"] += 1
        self._trace(
            f"latent-{kind}", now, vpn=vpn, device=device.spec.name, wear=wear
        )
        if kind == "ce" and self.config.scrub_bandwidth > 0.0 and device.used > 0:
            sweep_period = device.used / self.config.scrub_bandwidth
            due = now + self._error_rng.random() * sweep_period
            self._scrub_seq += 1
            heapq.heappush(self._scrub_due, (due, self._scrub_seq, vpn))

    def _drain_scrubber(self, now: float) -> None:
        """Retire scrub arrivals due by ``now``; patrol reads correct CEs.

        Hits are stamped at drain time (``ts=now``), not at their analytic
        due time, so the trace stream stays monotone even though the heap
        is drained lazily once per layer.
        """
        while self._scrub_due and self._scrub_due[0][0] <= now:
            _, _, vpn = heapq.heappop(self._scrub_due)
            if self._latent.get(vpn) != "ce":
                continue  # already corrected, escalated, or machine-checked
            del self._latent[vpn]
            self._ce_wear[vpn] = self._ce_wear.get(vpn, 0) + 1
            self.counts["ras.ce_scrubbed"] += 1
            self._trace("scrub-hit", now, vpn=vpn)

    # --------------------------------------------------------- demand checks

    def check_access(
        self,
        tensor: "Tensor",
        mapping: "TensorMapping",
        now: float,
        producer: Optional["Op"],
        allocator: Optional["Allocator"],
    ) -> float:
        """Machine-check ``tensor``'s pages on a demand access.

        Latent CEs on the touched committed runs are corrected in place
        (ECC does its job; the wear counter ticks).  A latent UE delivers
        a machine check: the frame is retired and the recovery ladder
        runs.  Returns the recovery time in seconds — real stall charged
        to the access — or raises :class:`UncorrectableMemoryError` when
        the ladder is exhausted.  In-flight runs are skipped; their
        latent errors surface after the migration commits.
        """
        if not self._latent:
            return 0.0
        total = 0.0
        for share in mapping.shares:
            run = share.run
            if run.in_flight:
                continue
            lo, hi = run.vpn, run.vpn + run.npages
            hits = sorted(v for v in self._latent if lo <= v < hi)
            for vpn in hits:
                kind = self._latent.pop(vpn)
                if kind == "ce":
                    self._ce_wear[vpn] = self._ce_wear.get(vpn, 0) + 1
                    self.counts["ras.ce_corrected"] += 1
                    self._trace("ce-corrected", now + total, vpn=vpn)
                else:
                    total += self._machine_check(
                        run, vpn, tensor, now + total, producer, allocator
                    )
        return total

    def _machine_check(
        self,
        run: "PageTableEntry",
        vpn: int,
        tensor: "Tensor",
        now: float,
        producer: Optional["Op"],
        allocator: Optional["Allocator"],
    ) -> float:
        """Deliver a UE on ``vpn`` of ``run``: contain, then recover."""
        # An earlier machine check on the same access may have split the
        # share's run; retire against the entry that covers ``vpn`` *now*.
        covering = self.machine.page_table.run_containing(vpn)
        if covering is not None and not covering.in_flight:
            run = covering
        config = self.config
        device = self.machine.device(run.device)
        initialized = run.initialized
        self.counts["ras.ue_detected"] += 1
        self._trace(
            "machine-check",
            now,
            vpn=vpn,
            device=device.spec.name,
            tensor=tensor.tid,
        )
        if config.retire_on_ue:
            self._retire(run, vpn, device, now, allocator)
        if config.recovery == "none":
            raise UncorrectableMemoryError(
                vpn, device.spec.name, tensor=tensor.tid,
                detail="recovery disabled",
            )
        if not initialized:
            # Nothing was ever written here: the page held no data yet, so
            # losing the frame costs nothing beyond the retired capacity.
            self.counts["ras.clean_drops"] += 1
            self._trace("clean-drop", now, vpn=vpn, tensor=tensor.tid)
            return 0.0
        if tensor.preallocated:
            # A master copy exists off-machine (checkpointed weights, the
            # input pipeline): re-fetch one page over the demand channel.
            transfer = self.machine.demand_channel.submit(
                self.machine.page_size, now, tag="ras-refetch"
            )
            stall = max(0.0, transfer.finish - now)
            self.counts["ras.refetch_events"] += 1
            self.refetch_time += stall
            self._trace_span(
                "refetch", now, stall, vpn=vpn, tensor=tensor.tid,
                nbytes=self.machine.page_size,
            )
            return stall
        if config.recovery == "remat" and producer is not None:
            # Volatile data (activation, gradient, temp): re-run the
            # producer op.  Real compute time on the critical path.
            cost = producer.flops / self.machine.platform.compute_throughput
            self.counts["ras.remat_events"] += 1
            self.remat_bytes += tensor.nbytes
            self.remat_time += cost
            self._trace_span(
                "remat", now, cost, vpn=vpn, tensor=tensor.tid,
                op=producer.name, flops=producer.flops,
            )
            return cost
        raise UncorrectableMemoryError(
            vpn,
            device.spec.name,
            tensor=tensor.tid,
            detail=(
                f"recovery={config.recovery}, "
                f"producer={'none' if producer is None else producer.name}"
            ),
        )

    def _retire(
        self,
        run: "PageTableEntry",
        vpn: int,
        device: MemoryDevice,
        now: float,
        allocator: Optional["Allocator"],
    ) -> None:
        """Permanently retire the frame backing ``vpn``.

        The allocator (when one manages the run) splits the run around the
        dead page and unmaps it, returning the page's bytes to the device;
        the frame is then withheld forever via ``reserve()`` — the same
        mechanism transient capacity loss uses, so the invariant auditor's
        capacity partition keeps balancing — and the vpn joins the
        badblock list.
        """
        unmapped = False
        if allocator is not None:
            unmapped = allocator.retire_page(run, vpn, now)
        granted = device.reserve(self.machine.page_size)
        self.badblocks.setdefault(device.spec.name, []).append(vpn)
        self.counts["ras.retired_frames"] += 1
        self._trace(
            "page-retired",
            now,
            vpn=vpn,
            device=device.spec.name,
            unmapped=unmapped,
            withheld=granted,
        )
        if self.machine.pressure is not None:
            self.machine.pressure.note_usage(now)

    # ------------------------------------------------------- migration hooks

    def transit_gate(
        self,
        channel: "BandwidthChannel",
        nbytes: int,
        now: float,
        tag: Any,
    ) -> float:
        """Checksum-verify a migration submission; retransmit on corruption.

        Called by the migration engine just before it submits a transfer.
        Corruption in flight is detected by the checksum at commit time;
        since completion times are analytic at submission, the cost is
        modeled here: each corrupted attempt burns a full channel pass
        (an ``aborted`` transfer) and the payload goes again.  Returns the
        (possibly later) time at which the verified submission should be
        issued.
        """
        rate = self.config.transit_corruption_rate
        if rate <= 0.0:
            return now
        while self._transit_rng.random() < rate:
            wreck = channel.submit(nbytes, now, tag=tag, aborted=True)
            self.counts["ras.transit_retries"] += 1
            self._trace_span(
                "checksum-retry",
                wreck.start,
                wreck.finish - wreck.start,
                nbytes=nbytes,
                channel=channel.name,
            )
            now = wreck.finish
        return now

    def on_migration_commit(self, record: "MigrationRecord") -> None:
        """A migration committed: its read pass corrected latent CEs.

        Moving a page reads every byte through the checksum path, which
        corrects correctable errors as a side effect — the same physics as
        a scrub pass.  Latent UEs travel with the data (the copy engine
        forwards the poison) and machine-check on the next demand access.
        """
        if not self._latent:
            return
        finish = record.transfer.finish
        for run in record.runs:
            lo, hi = run.vpn, run.vpn + run.npages
            hits = [v for v in self._latent if lo <= v < hi]
            for vpn in hits:
                if self._latent[vpn] != "ce":
                    continue
                del self._latent[vpn]
                self._ce_wear[vpn] = self._ce_wear.get(vpn, 0) + 1
                self.counts["ras.ce_migration_corrected"] += 1
                self._trace("migration-scrub", finish, vpn=vpn)
