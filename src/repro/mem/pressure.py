"""Memory-pressure governor: watermarks, reserve pool, spill accounting.

Sentinel's premise is working sets that exceed fast memory, so fast-tier
exhaustion is the *normal operating point*, not an error.  This module is
the kswapd of the reproduction: a :class:`PressureGovernor` watches the
fast device's used fraction against two watermarks and turns capacity
exhaustion into graceful degradation instead of failure:

* **high watermark** — background (prefetch) promotions are refused while
  usage sits above it, exactly as kswapd stops ``numa_migrate`` promotion
  when a node is past ``high``; the urgent demand lane is never refused.
* **low watermark** — crossing it wakes proactive reclaim: unpinned
  fast-resident runs are demoted through the ordinary migration engine
  (paying real channel time) until projected usage is back under ``low``.
* **reserve pool** — a fixed number of fast frames, reserved at the
  governor level, that only the urgent demand lane may consume.  Ordinary
  promotions and fresh allocations see ``free - reserve``, so a demand
  miss can always land even when prefetch has filled the tier.
* **spill-to-slow** — a fresh allocation that does not fit in the
  non-reserved portion of fast memory is placed on the slow tier and
  counted (``pressure.spills``), instead of raising
  :class:`~repro.errors.DeviceFullError`.

Like chaos and tracing before it, the governor is strictly opt-in: the
default config (watermarks at 100%, zero reserve) reports
``enabled == False``, no governor is constructed, and every run stays
byte-identical to a machine built before this module existed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional

from repro import accel
from repro.mem.devices import DeviceKind
from repro.mem.page import PageTableEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.mem.machine import Machine

__all__ = ["PressureConfig", "PressureGovernor"]


@dataclass(frozen=True)
class PressureConfig:
    """Watermarks and pool sizing for a :class:`PressureGovernor`.

    Attributes:
        low_watermark: fast-tier used fraction above which proactive
            reclaim starts demoting cold runs.  1.0 (the default) never
            triggers.
        high_watermark: used fraction above which background promotions
            are refused outright.  Must be >= ``low_watermark``.
        reserve_frames: fast frames held back for the urgent demand lane;
            background promotions and fresh allocations can never consume
            them.
        spill_to_slow: whether a fast allocation that does not fit in the
            non-reserved space lands on slow memory instead of raising.
        compact_fragmentation_threshold: external-fragmentation fraction
            of the arena's free bytes above which a step-end compaction
            pass runs (only while usage is above the low watermark).
        max_compaction_moves: tenant relocations one compaction pass may
            perform — compaction is bounded, like kcompactd's scan budget.
    """

    low_watermark: float = 1.0
    high_watermark: float = 1.0
    reserve_frames: int = 0
    spill_to_slow: bool = True
    compact_fragmentation_threshold: float = 0.5
    max_compaction_moves: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.low_watermark <= 1.0:
            raise ValueError(
                f"low_watermark must be in (0, 1], got {self.low_watermark!r}"
            )
        if not self.low_watermark <= self.high_watermark <= 1.0:
            raise ValueError(
                f"high_watermark must be in [low_watermark, 1], got "
                f"{self.high_watermark!r} (low={self.low_watermark!r})"
            )
        if self.reserve_frames < 0:
            raise ValueError(
                f"reserve_frames must be >= 0, got {self.reserve_frames!r}"
            )
        if not 0.0 <= self.compact_fragmentation_threshold <= 1.0:
            raise ValueError(
                f"compact_fragmentation_threshold must be in [0, 1], got "
                f"{self.compact_fragmentation_threshold!r}"
            )
        if self.max_compaction_moves < 0:
            raise ValueError(
                f"max_compaction_moves must be >= 0, got "
                f"{self.max_compaction_moves!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether the governor does anything at all.

        Watermarks at 100% with an empty reserve never gate an admission
        and never spill (nothing can exceed free space without raising
        first), so the machine skips constructing a governor entirely.
        """
        return (
            self.low_watermark < 1.0
            or self.high_watermark < 1.0
            or self.reserve_frames > 0
        )

    @classmethod
    def watermarks(
        cls, low: float, high: float, reserve_frames: int = 0, **overrides
    ) -> "PressureConfig":
        """The common construction: just the kswapd-style knobs."""
        config = cls(
            low_watermark=low, high_watermark=high, reserve_frames=reserve_frames
        )
        return replace(config, **overrides) if overrides else config


class PressureGovernor:
    """Watermark admission control over a machine's fast tier.

    Built by :class:`~repro.mem.machine.Machine` when an enabled
    :class:`PressureConfig` is supplied; consulted by the machine on every
    fresh fast allocation, by the migration engine on every background
    promotion, and by the executor at step end (compaction).  All
    counters live under the ``pressure.`` prefix in the machine's stats
    registry, and every decision is mirrored as a ``pressure``-category
    trace event when a tracer is attached.
    """

    def __init__(self, config: PressureConfig, machine: "Machine") -> None:
        self.config = config
        self.machine = machine
        self._above_low = False
        self._above_high = False
        self._reclaiming = False

    def _emit_engine(self, name: str, **payload) -> None:
        """Mirror a governor action as a typed PRESSURE engine event.

        Observation-only: fires synchronously at the current instant so
        engine subscribers (cluster stats) see reclaim/spill activity, and
        changes no simulated state — engine-free runs skip it entirely.
        """
        engine = self.machine.engine
        if engine is not None:
            from repro.sim.engine import EventKind

            engine.emit(EventKind.PRESSURE, name, payload)

    # ------------------------------------------------------------- geometry

    @property
    def reserve_bytes(self) -> int:
        """Bytes of the urgent-lane reserve pool."""
        return self.config.reserve_frames * self.machine.page_size

    def used_fraction(self) -> float:
        """Occupied fraction of the fast tier, counting withheld frames.

        Device-level reservations (the ``capacity_shrink`` chaos fault)
        are unusable space, so they count as pressure: a shrink episode
        moves the watermarks exactly as real usage would.
        """
        fast = self.machine.fast
        if not fast.capacity:
            return 0.0
        return (fast.used + fast.reserved) / fast.capacity

    def available(self, urgent: bool = False) -> int:
        """Fast bytes a request of the given priority may consume.

        The urgent demand lane sees the device's true free space; everyone
        else sees it minus the reserve pool.
        """
        free = self.machine.fast.free
        if urgent:
            return free
        return max(0, free - self.reserve_bytes)

    # ------------------------------------------------------------ admission

    def admit_allocation(self, nbytes: int, now: float) -> bool:
        """Whether a fresh fast-tier run of ``nbytes`` may be placed.

        Mirrors the kernel's zone-watermark check on allocation: a request
        that would push usage past the high watermark — or into the
        urgent-lane reserve — falls back to the far tier.  ``False`` means
        the caller must spill the run to the slow tier (recorded via
        :meth:`record_spill`).  When spilling is disabled in the config,
        admission always succeeds and the device raises as it always did.
        """
        if not self.config.spill_to_slow:
            return True
        if nbytes > self.available(urgent=False):
            return False
        fast = self.machine.fast
        occupied = fast.used + fast.reserved
        return occupied + nbytes <= self.config.high_watermark * fast.capacity

    def record_spill(self, nbytes: int, now: float) -> None:
        """Account one allocation redirected fast -> slow."""
        stats = self.machine.stats
        stats.counter("pressure.spills").add(1)
        stats.counter("pressure.spilled_bytes").add(nbytes)
        self._emit_engine("spill", nbytes=nbytes)
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.instant(
                "spill",
                "pressure",
                ts=now,
                track="pressure",
                nbytes=nbytes,
            )

    def refuse_promotion(self, nbytes: int, now: float) -> bool:
        """Whether a *background* promotion of ``nbytes`` must be refused.

        Above the high watermark every background promotion is refused;
        the check also drives watermark bookkeeping (and hence reclaim),
        since promotions are what push usage up between allocations.
        """
        self.note_usage(now)
        if self.used_fraction() < self.config.high_watermark:
            return False
        stats = self.machine.stats
        stats.counter("pressure.refused_promotions").add(1)
        stats.counter("pressure.refused_bytes").add(nbytes)
        self._emit_engine("refused-promotion", nbytes=nbytes)
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.instant(
                "refused-promotion",
                "pressure",
                ts=now,
                track="pressure",
                nbytes=nbytes,
            )
        return True

    # ------------------------------------------------------------ watermark

    def note_usage(self, now: float) -> None:
        """Record watermark crossings and wake reclaim when appropriate."""
        fraction = self.used_fraction()
        self._note_crossing(
            "high", fraction >= self.config.high_watermark, "_above_high", now
        )
        self._note_crossing(
            "low", fraction >= self.config.low_watermark, "_above_low", now
        )
        if self._above_low:
            self._reclaim(now)

    def _note_crossing(self, label: str, above: bool, attr: str, now: float) -> None:
        if above == getattr(self, attr):
            return
        setattr(self, attr, above)
        if above:
            self.machine.stats.counter(f"pressure.{label}_crossings").add(1)
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.instant(
                f"watermark-{label}-{'enter' if above else 'exit'}",
                "pressure",
                ts=now,
                track="pressure",
                used_fraction=self.used_fraction(),
            )

    # -------------------------------------------------------------- reclaim

    def _reclaim(self, now: float) -> None:
        """Demote cold fast runs until projected usage is under ``low``.

        "Projected" counts demotions already in flight (their frames free
        when the copies land), so back-to-back calls do not over-demote.
        The recursion guard matters: reclaim demotes through the engine,
        whose submission path consults this governor again.
        """
        if self._reclaiming:
            return
        machine = self.machine
        page_size = machine.page_size
        target = int(self.config.low_watermark * machine.fast.capacity)
        if accel.vectorized_enabled():
            inflight = machine.migration.in_flight_demote_bytes()
        else:
            inflight = sum(
                run.npages * page_size
                for run in machine.page_table.entries()
                if run.migrating_to is DeviceKind.SLOW
            )
        excess = machine.fast.used + machine.fast.reserved - inflight - target
        if excess <= 0:
            return
        victims: List[PageTableEntry] = []
        taken = 0
        # Oldest mapping first (lowest vpn): the arena's earliest slabs and
        # the longest-resident promotions are the coldest candidates we can
        # identify without a reference stream.
        for run in sorted(machine.page_table.entries(), key=lambda r: r.vpn):
            if run.device is not DeviceKind.FAST or run.in_flight or run.pinned:
                continue
            if not run.initialized:
                continue  # freshly allocated; demoting it would bounce
            victims.append(run)
            taken += run.npages * page_size
            if taken >= excess:
                break
        if not victims:
            return
        self._reclaiming = True
        try:
            transfer, scheduled = machine.migration.demote(
                victims, now, tag="pressure-reclaim"
            )
        finally:
            self._reclaiming = False
        if not scheduled:
            return
        nbytes = sum(run.npages for run in scheduled) * page_size
        stats = machine.stats
        stats.counter("pressure.reclaims").add(1)
        stats.counter("pressure.reclaimed_bytes").add(nbytes)
        self._emit_engine("reclaim", nbytes=nbytes, runs=len(scheduled))
        if machine.metrics is not None:
            machine.metrics.histogram("pressure.reclaim_bytes").observe(nbytes)
        tracer = machine.tracer
        if tracer is not None:
            tracer.instant(
                "reclaim",
                "pressure",
                ts=now,
                track="pressure",
                nbytes=nbytes,
                runs=len(scheduled),
            )

    # ----------------------------------------------------------- compaction

    def end_step(self, allocator, now: float) -> None:
        """Step-end hook: refresh watermark state, then maybe compact.

        Compaction only makes sense for arena-style allocators (persistent
        slabs with internal free lists); duck-typed so the governor does
        not import :mod:`repro.dnn`.
        """
        self.note_usage(now)
        metrics = self.machine.metrics
        if metrics is not None:
            metrics.series("pressure.used_fraction").sample(
                self.used_fraction(), ts=now
            )
            metrics.gauge("pressure.above_low").set(1.0 if self._above_low else 0.0)
        compact = getattr(allocator, "compact", None)
        if compact is None or not self._above_low:
            return
        fragmentation = getattr(allocator, "external_fragmentation", None)
        if fragmentation is None:
            return
        if fragmentation() > self.config.compact_fragmentation_threshold:
            compact(now, max_moves=self.config.max_compaction_moves)
