"""Asynchronous page migration, modelled on Sentinel's use of ``move_pages()``.

Sentinel runs two helper threads — one migrating pages from slow to fast
memory ("promote"), one in the opposite direction ("demote") — so the two
directions proceed in parallel and overlap with training computation.  Each
direction is a :class:`~repro.sim.channel.BandwidthChannel`; a migration's
completion time is fixed at submission and the run's page-table entry
records the in-flight destination and availability time.

Capacity accounting:

* promote — fast-tier space is reserved at submission (the destination
  frames must exist before the copy starts) and the slow frames are released
  at submission as well; the slow tier is the capacity-rich side, so holding
  its frames for the copy duration would never change an admission decision.
* demote — slow space is reserved at submission, but the *fast* frames are
  only released when the copy completes (committed by :meth:`MigrationEngine.sync`),
  because until then their bytes are still being read out.  This is what
  makes the paper's Case 2 possible: evictions submitted too late do not
  free fast memory in time for the next interval's prefetches.

When a promotion request does not fully fit in fast memory the engine splits
the boundary run and promotes the fitting prefix, so capacity is used down
to page granularity; the skipped remainder is returned to the caller (the
paper's Case 2 signal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.errors import MigrationFailure
from repro.mem.devices import DeviceKind, MemoryDevice
from repro.mem.page import PageTable, PageTableEntry
from repro.obs.metrics import MetricsRegistry
from repro.sim.channel import BandwidthChannel, Transfer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.chaos import FaultInjector
    from repro.mem.admission import AdmissionController
    from repro.mem.pressure import PressureGovernor
    from repro.obs.trace import EventTracer
    from repro.sim.engine import Engine, Event


@dataclass
class MigrationRecord:
    """A scheduled multi-run migration awaiting commit."""

    transfer: Transfer
    runs: List[PageTableEntry]
    direction: DeviceKind  # destination tier


class MigrationEngine:
    """Schedules page-run migrations over the two helper channels.

    With a :class:`repro.chaos.FaultInjector` attached, submissions are
    subject to two injected failure modes, mirroring real ``move_pages()``
    behaviour, and *degrade* instead of raising:

    * transient EBUSY — the submission is retried with exponential backoff
      in simulated time; a background submission that exhausts its retries
      returns its runs as skipped (the paper's leave-in-slow signal), while
      an urgent demand-path submission keeps retrying and is never refused.
    * mid-flight abort — the copy dies partway: the channel time for the
      transferred prefix is burned (an ``aborted`` transfer), but no page
      moves and all capacity reservations are rolled back.
    """

    #: Hard cap on urgent-lane retries: the demand path may never refuse,
    #: so after this many consecutive EBUSYs it proceeds regardless — as on
    #: real hardware, where whatever pin causes the EBUSY eventually drains.
    URGENT_RETRY_CAP = 64

    def __init__(
        self,
        page_table: PageTable,
        fast: MemoryDevice,
        slow: MemoryDevice,
        promote_channel: BandwidthChannel,
        demote_channel: BandwidthChannel,
        stats: Optional[MetricsRegistry] = None,
        demand_channel: Optional[BandwidthChannel] = None,
        injector: Optional["FaultInjector"] = None,
        tracer: Optional["EventTracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.page_table = page_table
        self.fast = fast
        self.slow = slow
        self.promote_channel = promote_channel
        self.demote_channel = demote_channel
        #: priority lane for on-demand (residency-miss) fetches: demand
        #: faults preempt prefetch DMA instead of queueing behind it
        self.demand_channel = (
            demand_channel if demand_channel is not None else promote_channel
        )
        self.stats = stats if stats is not None else MetricsRegistry()
        self.injector = injector
        self.tracer = tracer
        #: optional detailed metrics registry; ``None`` keeps every
        #: histogram site below dormant (same contract as ``tracer``)
        self.metrics = metrics
        #: optional :class:`~repro.mem.pressure.PressureGovernor`, attached
        #: by the machine; gates background promotions at the high
        #: watermark and withholds the urgent-lane reserve from them.
        self.governor: Optional["PressureGovernor"] = None
        #: optional :class:`repro.mem.ras.RasEngine`, attached by the
        #: machine when error injection is enabled: checksum-gates every
        #: submission and scrubs latent CEs on commit.  ``None`` keeps all
        #: RAS hook sites dormant (one ``is None`` check each).
        self.ras = None
        #: optional :class:`repro.obs.insight.InsightCollector`, attached by
        #: the machine: sees every promote/demote submission (for residency
        #: flips at the transfer's landing instant) and every instant
        #: discard/materialize tier change.  ``None`` — the default — keeps
        #: each hook site one ``is None`` check.
        self.insight = None
        #: optional :class:`repro.mem.admission.AdmissionController`,
        #: attached by the machine: screens every non-urgent
        #: promote/demote request (urgent demand migrations bypass it by
        #: contract).  ``None`` keeps both gate sites one ``is None``
        #: check; :class:`~repro.mem.admission.AlwaysAdmit` admits
        #: everything and stays trace-byte-identical to ``None``.
        self.admission: Optional["AdmissionController"] = None
        self._pending: List[MigrationRecord] = []
        self._engine: Optional["Engine"] = None

    # ---------------------------------------------------------------- engine

    def bind_engine(self, engine: "Engine") -> None:
        """Commit migrations event-driven instead of by polling.

        Subscribes to :data:`~repro.sim.engine.EventKind.TRANSFER_DONE`:
        when a channel's last byte lands, :meth:`sync` runs at exactly that
        instant and commits the finished record.  This is observationally
        identical to the legacy lazy commit — ``sync`` is idempotent, every
        capacity-reading path already calls it first, and commit emits no
        trace events — but it means demoted fast frames free at the true
        finish time, which concurrent workloads on the same machine can
        see.
        """
        from repro.sim.engine import EventKind

        self._engine = engine
        engine.subscribe(EventKind.TRANSFER_DONE, self._on_transfer_done)

    def _on_transfer_done(self, event: "Event") -> None:
        self.sync(event.time)

    # ------------------------------------------------------------------ sync

    def sync(self, now: float) -> None:
        """Commit every migration whose copy has finished by ``now``."""
        if not self._pending:
            return
        still_pending: List[MigrationRecord] = []
        for record in self._pending:
            if record.transfer.done_by(now):
                self._commit(record)
                if self.ras is not None:
                    # The committed copy's read pass went through the
                    # checksum path: latent CEs it carried are corrected.
                    self.ras.on_migration_commit(record)
            else:
                still_pending.append(record)
        self._pending = still_pending

    def refresh_availability(self) -> None:
        """Re-stamp in-flight runs from their transfers' current finish times.

        A channel blackout (:meth:`repro.sim.channel.BandwidthChannel.block`)
        suspends in-flight transfers and pushes their ``finish`` back, but
        the availability time cached on each run's page-table entry at
        submission would still claim the copy lands on the original
        schedule — letting ``effective_device`` read destination frames
        mid-outage.  The episode driver calls this right after blocking a
        channel so every cached time matches the delayed transfer.
        """
        for record in self._pending:
            for run in record.runs:
                if run.in_flight:
                    run.available_at = record.transfer.finish

    def _commit(self, record: MigrationRecord) -> None:
        page_size = self.page_table.page_size
        for run in record.runs:
            if run.in_flight:
                run.commit_migration()
                if record.direction is DeviceKind.SLOW:
                    # Demotion: the fast frames are vacated only now.
                    self.fast.release(run.npages * page_size)

    # --------------------------------------------------------------- promote

    def promote(
        self,
        runs: Sequence[PageTableEntry],
        now: float,
        tag: object = None,
        urgent: bool = False,
    ) -> Tuple[Optional[Transfer], List[PageTableEntry], List[PageTableEntry]]:
        """Migrate ``runs`` slow -> fast, as many pages as fit.

        Returns ``(transfer, scheduled, skipped)``.  Runs already on fast or
        already in flight are silently dropped (the request is satisfied);
        pinned runs and pages that do not fit are returned in ``skipped`` in
        request order so the caller can retry — a non-empty ``skipped`` is
        the paper's Case 2 signal.  A run straddling the capacity limit is
        split so the fitting prefix still moves.
        """
        self.sync(now)
        page_size = self.page_table.page_size
        eligible: List[PageTableEntry] = []
        seen: set = set()
        for run in runs:
            if run.vpn in seen:
                continue
            seen.add(run.vpn)
            if run.device is DeviceKind.FAST or run.in_flight:
                continue
            eligible.append(run)
        if eligible and self.governor is not None and not urgent:
            total_req = sum(r.npages for r in eligible) * page_size
            if self.governor.refuse_promotion(total_req, now):
                # Above the high watermark: the whole background request
                # comes back as skipped — the established leave-in-slow
                # (Case 2) signal, so every caller already degrades.
                return None, [], eligible
        if eligible and self.admission is not None and not urgent:
            if not self._screen("promote", eligible, now, tag, self.promote_channel):
                return None, [], eligible
        if eligible and self.injector is not None:
            now, refused = self._admit(now, urgent)
            if refused:
                # Retries exhausted: degrade instead of raising.  The whole
                # request comes back as skipped, which callers already treat
                # as the leave-in-slow (Case 2) signal.
                self.stats.counter("migration.busy_fallbacks").add(1)
                if self.tracer is not None:
                    self.tracer.instant(
                        "busy-fallback",
                        "migration",
                        ts=now,
                        track="migration",
                        direction="promote",
                        runs=len(eligible),
                    )
                return None, [], eligible
        scheduled: List[PageTableEntry] = []
        skipped: List[PageTableEntry] = []
        for run in eligible:
            if run.pinned:
                skipped.append(run)
                continue
            available = self.fast.free
            if self.governor is not None and not urgent:
                # Background promotions may never consume the demand lane's
                # reserve pool.
                available = self.governor.available(urgent=False)
            free_pages = available // page_size
            if free_pages <= 0:
                skipped.append(run)
                continue
            if run.npages > free_pages:
                tail = self.page_table.split(run.vpn, free_pages)
                skipped.append(tail)
            nbytes = run.npages * page_size
            self.fast.allocate(nbytes)
            self.slow.release(nbytes)
            scheduled.append(run)
        if not scheduled:
            return None, scheduled, skipped
        total = sum(r.npages for r in scheduled) * page_size
        channel = self.demand_channel if urgent else self.promote_channel
        if self.injector is not None:
            now, died = self._survive_aborts(channel, total, now, tag, urgent)
            if died:
                # The copy was lost mid-flight; roll the reservations back
                # and report the runs as skipped.  Page state never changed,
                # so the source copies remain the valid mapping throughout.
                for run in scheduled:
                    nbytes = run.npages * page_size
                    self.fast.release(nbytes)
                    self.slow.allocate(nbytes)
                return None, [], skipped + scheduled
        if self.ras is not None:
            now = self.ras.transit_gate(channel, total, now, tag)
        transfer = channel.submit(total, now, tag=tag)
        for run in scheduled:
            run.begin_migration(DeviceKind.FAST, transfer.finish)
        self._pending.append(
            MigrationRecord(transfer=transfer, runs=scheduled, direction=DeviceKind.FAST)
        )
        self.stats.counter("migration.promoted_bytes").add(total)
        self.stats.timeline("migration.promote_bw").record_span(
            transfer.start, transfer.finish, total
        )
        if self.metrics is not None:
            self.metrics.histogram("migration.promote_bytes").observe(total)
            self.metrics.histogram("migration.promote_exposed").observe(
                max(0.0, transfer.finish - now)
            )
        if self.governor is not None:
            # Promotions are what push usage across the watermarks between
            # allocations; let the governor see each one land.
            self.governor.note_usage(now)
        if self.tracer is not None:
            self.tracer.complete(
                "promote",
                "migration",
                ts=transfer.start,
                dur=transfer.duration,
                track="migration",
                nbytes=total,
                runs=len(scheduled),
                skipped=len(skipped),
                src="slow",
                dst="fast",
                urgent=urgent,
                tag=None if tag is None else str(tag),
            )
        if self.insight is not None:
            self.insight.on_migration(
                "promote", scheduled, transfer, page_size, tag, urgent, now
            )
        return transfer, scheduled, skipped

    # ---------------------------------------------------------------- demote

    def demote(
        self,
        runs: Sequence[PageTableEntry],
        now: float,
        tag: object = None,
        urgent: bool = False,
    ) -> Tuple[Optional[Transfer], List[PageTableEntry]]:
        """Migrate ``runs`` fast -> slow; returns ``(transfer, scheduled)``.

        The slow tier is assumed large enough for the whole model (as on the
        paper's platforms); if it is not, the device raises and surfaces the
        misconfiguration rather than silently dropping pages.  ``urgent``
        marks a capacity-critical eviction (demand-miss path): like urgent
        promotions it is never refused by injected transient faults.
        """
        self.sync(now)
        page_size = self.page_table.page_size
        eligible: List[PageTableEntry] = []
        seen: set = set()
        for run in runs:
            if run.vpn in seen:
                continue
            seen.add(run.vpn)
            if run.device is DeviceKind.SLOW or run.in_flight or run.pinned:
                continue
            eligible.append(run)
        if not eligible:
            return None, eligible
        if self.admission is not None and not urgent:
            if not self._screen("demote", eligible, now, tag, self.demote_channel):
                # The runs simply stay on fast memory, as with an injected
                # refusal: the caller's next capacity check sees no room.
                return None, []
        if self.injector is not None:
            now, refused = self._admit(now, urgent)
            if refused:
                # Eviction refused: the runs simply stay on fast memory and
                # the caller's next capacity check sees no room was made.
                self.stats.counter("migration.busy_fallbacks").add(1)
                if self.tracer is not None:
                    self.tracer.instant(
                        "busy-fallback",
                        "migration",
                        ts=now,
                        track="migration",
                        direction="demote",
                        runs=len(eligible),
                    )
                return None, []
        scheduled: List[PageTableEntry] = []
        for run in eligible:
            self.slow.allocate(run.npages * page_size)
            scheduled.append(run)
        total = sum(r.npages for r in scheduled) * page_size
        if self.injector is not None:
            now, died = self._survive_aborts(
                self.demote_channel, total, now, tag, urgent
            )
            if died:
                for run in scheduled:
                    self.slow.release(run.npages * page_size)
                return None, []
        if self.ras is not None:
            now = self.ras.transit_gate(self.demote_channel, total, now, tag)
        transfer = self.demote_channel.submit(total, now, tag=tag)
        for run in scheduled:
            run.begin_migration(DeviceKind.SLOW, transfer.finish)
        self._pending.append(
            MigrationRecord(transfer=transfer, runs=scheduled, direction=DeviceKind.SLOW)
        )
        self.stats.counter("migration.demoted_bytes").add(total)
        self.stats.timeline("migration.demote_bw").record_span(
            transfer.start, transfer.finish, total
        )
        if self.metrics is not None:
            self.metrics.histogram("migration.demote_bytes").observe(total)
        if self.tracer is not None:
            self.tracer.complete(
                "demote",
                "migration",
                ts=transfer.start,
                dur=transfer.duration,
                track="migration",
                nbytes=total,
                runs=len(scheduled),
                skipped=0,
                src="fast",
                dst="slow",
                urgent=urgent,
                tag=None if tag is None else str(tag),
            )
        if self.insight is not None:
            self.insight.on_migration(
                "demote", scheduled, transfer, page_size, tag, urgent, now
            )
        return transfer, scheduled

    # ------------------------------------------------------------ admission

    def _screen(
        self,
        kind: str,
        eligible: List[PageTableEntry],
        now: float,
        tag: object,
        channel: BandwidthChannel,
    ) -> bool:
        """Admission-controller gate for one background request.

        Builds the typed :class:`~repro.mem.admission.MigrationRequest`
        from state the engine already holds (profiling counts on the page
        table, channel backlog, pending records), so no call site had to
        learn new plumbing.  Admitted requests bump counters only; denied
        and deferred requests additionally emit an ``admission``-category
        trace instant — which is what keeps ``AlwaysAdmit`` byte-identical
        to no controller at all.
        """
        from repro.mem.admission import DENY, MigrationRequest

        page_size = self.page_table.page_size
        npages = sum(run.npages for run in eligible)
        nbytes = npages * page_size
        request = MigrationRequest(
            kind=kind,
            nbytes=nbytes,
            nruns=len(eligible),
            tag=None if tag is None else str(tag),
            now=now,
            vpns=tuple(run.vpn for run in eligible),
            heat=sum(run.accesses for run in eligible) / max(1, npages),
            in_flight_bytes=self.in_flight_bytes(now),
            backlog=channel.backlog_at(now),
        )
        decision = self.admission.decide(request)
        if decision.admitted:
            self.stats.counter("admission.admitted").add(1)
            self.stats.counter("admission.admitted_bytes").add(nbytes)
            self.admission.on_admitted(request)
            return True
        noun = "denied" if decision.verdict == DENY else "deferred"
        reason_key = f"admission.{noun}.{decision.reason}"
        self.stats.describe(
            reason_key,
            f"Background {kind} requests {noun} by the admission "
            f"controller (reason: {decision.reason}).",
        )
        self.stats.counter(reason_key).add(1)
        self.stats.counter(f"admission.{noun}_bytes").add(nbytes)
        if self.tracer is not None:
            self.tracer.instant(
                f"admission-{decision.verdict}",
                "admission",
                ts=now,
                track="admission",
                kind=kind,
                reason=decision.reason,
                nbytes=nbytes,
                runs=len(eligible),
                tag=None if tag is None else str(tag),
            )
        return False

    # ------------------------------------------------------- fault handling

    def _admit(self, now: float, urgent: bool) -> Tuple[float, bool]:
        """Transient-EBUSY gate; returns ``(submit_time, refused)``.

        Each refused attempt backs off exponentially in simulated time
        before resubmitting.  Background submissions give up after the
        configured ``max_retries``; urgent submissions keep retrying (up to
        :attr:`URGENT_RETRY_CAP`) and are never refused.
        """
        injector = self.injector
        assert injector is not None
        if not injector.migration_busy():
            return now, False
        config = injector.config
        backoff = config.retry_backoff
        retries = self.URGENT_RETRY_CAP if urgent else config.max_retries
        for _ in range(retries):
            self.stats.counter("migration.retries").add(1)
            now += backoff
            backoff *= 2.0
            if not injector.migration_busy():
                return now, False
        return now, not urgent

    def _survive_aborts(
        self,
        channel: BandwidthChannel,
        nbytes: int,
        now: float,
        tag: object,
        urgent: bool,
    ) -> Tuple[float, bool]:
        """Mid-flight-abort gate; returns ``(submit_time, copy_lost)``.

        Every abort burns channel time for the fraction of the payload that
        crossed before the copy died.  A background submission is lost on
        the first abort (``copy_lost=True`` — the caller rolls back);
        urgent submissions resubmit after each wreck until one survives.
        """
        injector = self.injector
        assert injector is not None
        attempts = self.URGENT_RETRY_CAP if urgent else 1
        for _ in range(attempts):
            if not injector.migration_abort():
                return now, False
            partial = int(nbytes * injector.config.abort_fraction)
            wreck = channel.submit(partial, now, tag=tag, aborted=True)
            self.stats.counter("migration.aborted_bytes").add(partial)
            if self.tracer is not None:
                # The chaos-lane twin of the wrecked channel span: capacity
                # reservations for the payload are rolled back by the caller,
                # so tests can pair this event with balanced accounting.
                self.tracer.complete(
                    "abort",
                    "chaos",
                    ts=wreck.start,
                    dur=wreck.duration,
                    track="chaos",
                    nbytes=partial,
                    channel=channel.name,
                    urgent=urgent,
                    tag=None if tag is None else str(tag),
                )
            now = wreck.finish
            if not urgent:
                return now, True
        return now, False

    # ------------------------------------------------------------- per-run

    def _submit_each(
        self,
        kind: str,
        runs: Sequence[PageTableEntry],
        now: float,
        tag: object,
        urgent: bool,
    ) -> List[Transfer]:
        """Shared per-run submission loop behind the ``*_each`` helpers.

        Each run gets its own submission — and therefore its own
        completion time, admission decision, and injected-fault draws — so
        an access racing the queue waits only for *its* data; batching
        would make it wait for the whole convoy.
        """
        submit = self.promote if kind == "promote" else self.demote
        transfers: List[Transfer] = []
        for run in runs:
            transfer = submit([run], now, tag=tag, urgent=urgent)[0]
            if transfer is not None:
                transfers.append(transfer)
        return transfers

    def promote_each(
        self,
        runs: Sequence[PageTableEntry],
        now: float,
        tag: object = None,
        urgent: bool = False,
    ) -> List[Transfer]:
        """Promote runs as individual submissions (see :meth:`_submit_each`)."""
        return self._submit_each("promote", runs, now, tag, urgent)

    def demote_each(
        self,
        runs: Sequence[PageTableEntry],
        now: float,
        tag: object = None,
        urgent: bool = False,
    ) -> List[Transfer]:
        """Demote runs as individual submissions (see :meth:`_submit_each`)."""
        return self._submit_each("demote", runs, now, tag, urgent)

    # ------------------------------------------------------------ relocation

    def relocate(self, nbytes: int, now: float, tag: object = None) -> Transfer:
        """Charge channel time for an intra-tier copy (arena compaction).

        Compaction moves live chunks between same-tier page runs; no page
        table state changes and no capacity is reserved, but the copy is
        real — it rides the demote channel (the direction with spare
        bandwidth during pressure, since promotions are being refused) and
        delays everything queued behind it.
        """
        transfer = self.demote_channel.submit(nbytes, now, tag=tag)
        self.stats.counter("migration.relocated_bytes").add(nbytes)
        return transfer

    # ------------------------------------------------- discard / materialize

    def discard(self, run: PageTableEntry, now: float) -> None:
        """Drop a fast-resident run's contents without copying it out.

        Used by recomputation schemes (Capuchin): the data is deleted, so
        no migration bandwidth is spent and the fast frames free instantly;
        the run's backing moves to the slow tier's accounting (it will be
        re-materialized by recomputation, whose cost the caller charges).
        """
        self.sync(now)
        page_size = self.page_table.page_size
        if run.in_flight:
            raise MigrationFailure(f"cannot discard in-flight run {run.vpn}")
        if run.device is not DeviceKind.FAST:
            return
        nbytes = run.npages * page_size
        self.slow.allocate(nbytes)
        self.fast.release(nbytes)
        run.device = DeviceKind.SLOW
        self.stats.counter("migration.discarded_bytes").add(nbytes)
        if self.insight is not None:
            self.insight.on_instant_flip("discard", run, nbytes, now)

    def materialize(self, run: PageTableEntry, now: float) -> bool:
        """Recreate a discarded run in fast memory without a copy.

        Returns False if fast memory cannot hold it (the caller must evict
        first).  The compute cost of recomputation is the caller's to
        charge; only capacity accounting happens here.
        """
        self.sync(now)
        page_size = self.page_table.page_size
        if run.in_flight:
            raise MigrationFailure(f"cannot materialize in-flight run {run.vpn}")
        if run.device is DeviceKind.FAST:
            return True
        nbytes = run.npages * page_size
        if not self.fast.fits(nbytes):
            return False
        self.fast.allocate(nbytes)
        self.slow.release(nbytes)
        run.device = DeviceKind.FAST
        self.stats.counter("migration.materialized_bytes").add(nbytes)
        if self.insight is not None:
            self.insight.on_instant_flip("materialize", run, nbytes, now)
        return True

    # ------------------------------------------------------------- releasing

    def release_run(self, run: PageTableEntry, now: float) -> None:
        """Account for a run being freed (tensor deallocation).

        An in-flight run is force-committed first — the channel time is
        already spent and the copy's capacity effects must land before the
        frames are returned.
        """
        page_size = self.page_table.page_size
        if run.in_flight:
            target = run.migrating_to
            run.commit_migration()
            if target is DeviceKind.SLOW:
                self.fast.release(run.npages * page_size)
            # Drop the run from its pending record so sync() won't
            # double-commit it.
            for record in self._pending:
                if run in record.runs:
                    record.runs.remove(run)
                    break
        if run.device is DeviceKind.FAST:
            self.fast.release(run.npages * page_size)
        else:
            self.slow.release(run.npages * page_size)

    # ----------------------------------------------------------------- query

    def in_flight_demote_bytes(self) -> int:
        """Fast-tier bytes whose demotion copy is still in flight.

        Answered from the engine's own pending records — O(outstanding
        transfers) — where the equivalent page-table scan walks every
        mapped run.  Deliberately does *not* sync: callers (eviction
        sizing, watermark reclaim) want the state as of their own ``now``
        without committing finished copies early, matching the table scan
        they replace.  The per-run flag check keeps runs force-committed
        by :meth:`release_run` out of the sum, exactly as the scan would.
        """
        page_size = self.page_table.page_size
        return page_size * sum(
            run.npages
            for record in self._pending
            if record.direction is DeviceKind.SLOW
            for run in record.runs
            if run.migrating_to is DeviceKind.SLOW
        )

    def in_flight_bytes(self, now: float) -> int:
        """Bytes still being copied at ``now`` (both directions)."""
        self.sync(now)
        page_size = self.page_table.page_size
        return sum(
            sum(r.npages for r in record.runs) * page_size
            for record in self._pending
            if not record.transfer.done_by(now)
        )

    def drain_time(self, now: float) -> float:
        """Time at which every outstanding migration completes."""
        self.sync(now)
        if not self._pending:
            return now
        return max(now, max(r.transfer.finish for r in self._pending))
