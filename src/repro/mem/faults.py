"""Protection-fault handler implementing Sentinel's access counting.

The protocol from the paper (Section III-A):

1. To start tracking a page, set reserved bit 51 in its PTE ("poison" it)
   and flush the translation from the TLB.
2. The next access misses the TLB, walks the page table, sees the reserved
   bit, and takes a protection fault.
3. The customized fault handler counts the access, leaves the PTE poisoned,
   and flushes the TLB entry again so the *next* access also faults.

Every main-memory access to a tracked page therefore costs one fault.  That
is expensive (trap + handler + TLB shootdown) but confined to the single
profiling step; the handler accumulates the overhead so experiments can
report the profiling step's slowdown (paper: up to ~5x for one step).

The page table stores contiguous runs, so one *access pass* over a run
(e.g. an operation streaming through a tensor) faults once per page in the
touched range; the handler accounts those faults arithmetically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.mem.page import PageTable, PageTableEntry
from repro.mem.tlb import TLB

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.chaos import FaultInjector
    from repro.obs.trace import EventTracer


class FaultHandler:
    """Counts main-memory accesses to poisoned page runs.

    Args:
        page_table: the table whose entries carry poison bits and counters.
        tlb: translation cache flushed after every counted access.
        fault_cost: seconds charged per protection fault taken.
        injector: optional :class:`repro.chaos.FaultInjector` that drops a
            fraction of the counted samples (the real handler's ring buffer
            overflows under load, like perf's ``RECORD_LOST``).  Dropped
            samples still cost fault-handling time — the trap happened — but
            never reach the per-run counters, so the profile under-reports.
        tracer: optional :class:`repro.obs.EventTracer`; each counted access
            pass then emits a ``fault``-category instant (timestamped from
            the tracer's bound clock, since the fault path does not carry
            ``now``).  ``None`` records nothing.
    """

    def __init__(
        self,
        page_table: PageTable,
        tlb: TLB,
        fault_cost: float,
        injector: Optional["FaultInjector"] = None,
        tracer: Optional["EventTracer"] = None,
    ) -> None:
        if fault_cost < 0:
            raise ValueError(f"fault cost must be non-negative, got {fault_cost!r}")
        self.page_table = page_table
        self.tlb = tlb
        self.fault_cost = fault_cost
        self.injector = injector
        self.tracer = tracer
        #: optional discrete-event engine; counted access passes then also
        #: fire as typed FAULT engine events (set by ``Machine.bind_engine``)
        self.engine = None
        self.faults_taken = 0
        self.faults_dropped = 0
        self.overhead = 0.0

    def on_access_pass(
        self, entry: PageTableEntry, pages_touched: int, is_write: bool, passes: int = 1
    ) -> float:
        """Record ``passes`` streaming passes over ``pages_touched`` pages.

        Returns the fault-handling time incurred.  Untracked (unpoisoned)
        runs proceed at full speed with no counting — exactly the
        information loss Sentinel's profiling phase exists to avoid.
        """
        if pages_touched < 0:
            raise ValueError(f"cannot touch negative pages {pages_touched!r}")
        if pages_touched > entry.npages:
            raise ValueError(
                f"touching {pages_touched} pages of a {entry.npages}-page run"
            )
        if passes <= 0:
            raise ValueError(f"passes must be >= 1, got {passes!r}")
        if not entry.poisoned or pages_touched == 0:
            return 0.0
        # Each touched page, each pass: TLB miss -> walk -> protection fault
        # -> count, re-poison, flush.  One counter tick per page per pass
        # mirrors the per-page counting of the real handler.
        faults = pages_touched * passes
        counted = faults
        if self.injector is not None:
            dropped = self.injector.drop_faults(faults)
            if dropped:
                counted -= dropped
                self.faults_dropped += dropped
        if is_write:
            entry.writes += counted
        else:
            entry.reads += counted
        self.tlb.flush(entry.vpn)
        self.faults_taken += faults
        cost = faults * self.fault_cost
        self.overhead += cost
        if self.tracer is not None:
            self.tracer.instant(
                "protection-fault",
                "fault",
                track="faults",
                vpn=entry.vpn,
                faults=faults,
                dropped=faults - counted,
                write=is_write,
                cost=cost,
            )
        if self.engine is not None:
            from repro.sim.engine import EventKind

            self.engine.emit(
                EventKind.FAULT,
                "protection-fault",
                {"vpn": entry.vpn, "faults": faults, "cost": cost},
            )
        return cost

    def reset(self) -> None:
        self.faults_taken = 0
        self.faults_dropped = 0
        self.overhead = 0.0
