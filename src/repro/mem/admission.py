"""Pluggable migration admission control.

The migration engine treats every background promotion/demotion request as
worth executing; whether that is *true* depends on the workload.  TierBPF
frames migration admission as its own policy layer — deciding which
migrations are worth their bandwidth — and 10Cache shows resource-aware
scoring beats fixed thresholds.  This module makes that layer swappable:
an :class:`AdmissionController` attached to the engine sees every
non-urgent ``promote``/``demote`` request as a typed
:class:`MigrationRequest` and returns admit/deny/defer with a reason.

Contracts:

* **Urgent bypass** — urgent (demand-path) migrations never reach the
  controller, exactly as they bypass the pressure governor and injected
  EBUSY refusals: a faulting access must be served, whatever the policy
  thinks of its bandwidth cost.
* **Zero overhead when disabled** — the engine's hook site is one
  ``is None`` check; no controller attached means no behaviour change.
* **`AlwaysAdmit` is byte-identical** — it admits everything, consumes no
  randomness, and the engine emits trace events only on deny/defer, so a
  run with ``AlwaysAdmit`` attached produces byte-identical traces and
  metrics to a run with no controller at all (admission counters land in
  run extras only when a controller is attached).

Deny vs defer is advisory taxonomy: both come back to the engine as
"do not submit now" (the caller's established leave-in-slow / Case 2
degradation), but they land in separate counters — ``deny`` means "this
migration is not worth it" (low benefit, ping-pong cooldown), ``defer``
means "not *now*" (channel occupancy, rate limiting) — so tournaments can
tell a controller that starves migration from one that reshapes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Decision verdicts.
ADMIT = "admit"
DENY = "deny"
DEFER = "defer"


@dataclass(frozen=True)
class MigrationRequest:
    """One background migration request, as the controller sees it.

    Everything a controller might score on is carried here so controllers
    never reach back into engine internals (which keeps them trivially
    testable against synthetic traces).
    """

    #: ``"promote"`` or ``"demote"``.
    kind: str
    #: Total payload across the request's page runs.
    nbytes: int
    #: Number of page runs in the request.
    nruns: int
    #: Requester identity — the migration ``tag`` (``"prefetch"``,
    #: ``"on-access"``, ``"evict"``, ``"pressure-reclaim"``, ...).
    tag: Optional[str]
    #: Simulated submission time.
    now: float
    #: Virtual page numbers of the runs (per-tensor cooldown keys).
    vpns: Tuple[int, ...]
    #: Mean profiler touches per page across the request (from the page
    #: table's profiling counts; 0.0 when the pages were never profiled).
    heat: float
    #: Bytes still in flight on the machine, both directions.
    in_flight_bytes: int
    #: Seconds of queued work on the direction's channel at ``now``.
    backlog: float


@dataclass(frozen=True)
class AdmissionDecision:
    """Verdict plus the reason that lands in counters and trace events."""

    verdict: str
    reason: str = "ok"

    @property
    def admitted(self) -> bool:
        return self.verdict == ADMIT


#: Shared singletons for the hot verdicts.
_ADMITTED = AdmissionDecision(ADMIT)


def admit() -> AdmissionDecision:
    return _ADMITTED


def deny(reason: str) -> AdmissionDecision:
    return AdmissionDecision(DENY, reason)


def defer(reason: str) -> AdmissionDecision:
    return AdmissionDecision(DEFER, reason)


class AdmissionController:
    """Base controller: the three hooks the engine calls.

    Controllers are per-run stateful objects — build a fresh one per
    simulation (the harness does this from the registered name) rather
    than sharing instances across runs or processes.
    """

    #: Registry name; also what lands in run extras.
    name = "base"

    def decide(self, request: MigrationRequest) -> AdmissionDecision:
        raise NotImplementedError

    def on_admitted(self, request: MigrationRequest) -> None:
        """Called after an admitted request is accepted for submission."""

    def on_step(self, step: int, duration: float, stall: float) -> None:
        """End-of-step feedback: the step's wall time and stall time.

        ``stall / duration`` is the online per-step proxy for the
        critical-path ``migration_stall`` share that
        :func:`repro.obs.critpath.attribute` computes offline.
        """


class AlwaysAdmit(AdmissionController):
    """The byte-identical default: admit everything, observe nothing."""

    name = "always"

    def decide(self, request: MigrationRequest) -> AdmissionDecision:
        return _ADMITTED


class BenefitCostController(AdmissionController):
    """Score expected stall savings against channel occupancy.

    Benefit is the request's profiler heat (mean touches per page — the
    stall a resident copy would have saved), floored at ``heat_floor`` so
    unprofiled pages (fresh per-step allocations, baseline policies) are
    judged on occupancy alone.  A run that just moved the *other* way
    within ``pingpong_window`` has its benefit divided by
    ``pingpong_penalty`` — the insight layer's thrash signal, computed
    online from this controller's own admitted history.  Cost grows with
    the machine's in-flight load relative to the payload, so the
    controller effectively bounds queue depth: an idle channel admits
    freely, a backed-up one defers.
    """

    name = "benefit-cost"

    def __init__(
        self,
        min_benefit: float = 0.5,
        heat_floor: float = 1.0,
        occupancy_weight: float = 1.0,
        pingpong_window: float = 0.05,
        pingpong_penalty: float = 4.0,
    ) -> None:
        if min_benefit <= 0:
            raise ValueError(f"min_benefit must be positive: {min_benefit!r}")
        if pingpong_penalty < 1.0:
            raise ValueError(
                f"pingpong_penalty must be >= 1: {pingpong_penalty!r}"
            )
        self.min_benefit = min_benefit
        self.heat_floor = heat_floor
        self.occupancy_weight = occupancy_weight
        self.pingpong_window = pingpong_window
        self.pingpong_penalty = pingpong_penalty
        #: vpn -> (kind, time) of the last admitted migration touching it.
        self._last: Dict[int, Tuple[str, float]] = {}

    def _thrashing(self, request: MigrationRequest) -> bool:
        opposite = "demote" if request.kind == "promote" else "promote"
        for vpn in request.vpns:
            last = self._last.get(vpn)
            if (
                last is not None
                and last[0] == opposite
                and request.now - last[1] <= self.pingpong_window
            ):
                return True
        return False

    def decide(self, request: MigrationRequest) -> AdmissionDecision:
        if request.kind == "demote":
            # Demotions free fast memory; refusing them under pressure
            # only deepens the shortage.
            return _ADMITTED
        benefit = max(self.heat_floor, request.heat)
        if self._thrashing(request):
            benefit /= self.pingpong_penalty
        cost = 1.0 + self.occupancy_weight * (
            request.in_flight_bytes / max(1, request.nbytes)
        )
        if benefit / cost >= self.min_benefit:
            return _ADMITTED
        if request.in_flight_bytes > 0 or request.backlog > 0.0:
            return defer("occupancy")
        return deny("low-benefit")

    def on_admitted(self, request: MigrationRequest) -> None:
        stamp = (request.kind, request.now)
        for vpn in request.vpns:
            self._last[vpn] = stamp


class FeedbackController(AdmissionController):
    """Online hysteresis driven by the run's own stall share.

    Three mechanisms, all deterministic in simulated time:

    * **Stall-share throttle** — an EWMA of each step's
      ``stall / duration`` (the online proxy for the critical path's
      ``migration_stall`` share) trips a throttle above ``stall_target``
      and releases it below ``stall_target * release`` — hysteresis, so
      the gate does not chatter around the target.  While throttled,
      background promotions are denied (``stall-share``).
    * **Per-tensor cooldown** — a vpn demoted within the last
      ``cooldown`` seconds is denied re-promotion (``cooldown``): the
      direct counter to promote→demote→promote ping-pong.
    * **Rate limiting** — with ``rate_bytes_per_s > 0``, admitted
      promotion bytes may not exceed ``burst_bytes`` plus the rate
      integrated since the first request; excess is deferred
      (``rate-limit``).  Off by default.

    Demotions are always admitted (see :class:`BenefitCostController`).
    """

    name = "feedback"

    def __init__(
        self,
        stall_target: float = 0.05,
        release: float = 0.5,
        smoothing: float = 0.5,
        cooldown: float = 0.05,
        rate_bytes_per_s: float = 0.0,
        burst_bytes: int = 32 * 1024 * 1024,
    ) -> None:
        if not 0.0 < stall_target < 1.0:
            raise ValueError(f"stall_target must be in (0, 1): {stall_target!r}")
        if not 0.0 <= release <= 1.0:
            raise ValueError(f"release must be in [0, 1]: {release!r}")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1]: {smoothing!r}")
        self.stall_target = stall_target
        self.release = release
        self.smoothing = smoothing
        self.cooldown = cooldown
        self.rate_bytes_per_s = rate_bytes_per_s
        self.burst_bytes = burst_bytes
        self._stall_share: Optional[float] = None  # EWMA, None until a step
        self._throttled = False
        self._last_demote: Dict[int, float] = {}  # vpn -> demote time
        self._rate_epoch: Optional[float] = None
        self._admitted_bytes = 0

    @property
    def throttled(self) -> bool:
        return self._throttled

    def decide(self, request: MigrationRequest) -> AdmissionDecision:
        if request.kind == "demote":
            return _ADMITTED
        if self.cooldown > 0.0:
            for vpn in request.vpns:
                demoted = self._last_demote.get(vpn)
                if demoted is not None and request.now - demoted < self.cooldown:
                    return deny("cooldown")
        if self._throttled:
            return deny("stall-share")
        if self.rate_bytes_per_s > 0.0:
            if self._rate_epoch is None:
                self._rate_epoch = request.now
            allowed = self.burst_bytes + self.rate_bytes_per_s * (
                request.now - self._rate_epoch
            )
            if self._admitted_bytes + request.nbytes > allowed:
                return defer("rate-limit")
        return _ADMITTED

    def on_admitted(self, request: MigrationRequest) -> None:
        if request.kind == "demote":
            for vpn in request.vpns:
                self._last_demote[vpn] = request.now
        else:
            self._admitted_bytes += request.nbytes

    def on_step(self, step: int, duration: float, stall: float) -> None:
        if duration <= 0.0:
            return
        share = max(0.0, stall) / duration
        if self._stall_share is None:
            self._stall_share = share
        else:
            self._stall_share += self.smoothing * (share - self._stall_share)
        if self._stall_share > self.stall_target:
            self._throttled = True
        elif self._stall_share < self.stall_target * self.release:
            self._throttled = False


#: Registered controllers, by CLI/tournament name.
CONTROLLERS = {
    AlwaysAdmit.name: AlwaysAdmit,
    BenefitCostController.name: BenefitCostController,
    FeedbackController.name: FeedbackController,
}


def make_admission(name: str, **kwargs) -> AdmissionController:
    """Build a fresh controller by registered name."""
    try:
        cls = CONTROLLERS[name]
    except KeyError:
        raise ValueError(
            f"unknown admission controller {name!r}; "
            f"available: {sorted(CONTROLLERS)}"
        ) from None
    return cls(**kwargs)


def parse_admission_args(text: Optional[str]) -> Dict[str, object]:
    """Parse ``"key=value,key=value"`` controller arguments from the CLI.

    Values are coerced ``int`` -> ``float`` -> ``bool`` -> ``str`` in that
    order, matching the controllers' numeric-heavy signatures.
    """
    args: Dict[str, object] = {}
    if not text:
        return args
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad admission argument {part!r} (expected key=value)"
            )
        key, raw = part.split("=", 1)
        key = key.strip().replace("-", "_")
        raw = raw.strip()
        value: object
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                lowered = raw.lower()
                if lowered in ("true", "false"):
                    value = lowered == "true"
                else:
                    value = raw
        args[key] = value
    return args


def describe_counters(registry) -> None:
    """Attach ``# HELP`` text for the static admission counter names.

    Per-reason counters (``admission.denied.<reason>`` /
    ``admission.deferred.<reason>``) are described at creation by the
    engine, since reasons are controller-defined.
    """
    registry.describe(
        "admission.admitted",
        "Background migration requests admitted by the admission controller.",
    )
    registry.describe(
        "admission.admitted_bytes",
        "Payload bytes of admitted background migration requests.",
    )
    registry.describe(
        "admission.denied_bytes",
        "Payload bytes of denied background migration requests.",
    )
    registry.describe(
        "admission.deferred_bytes",
        "Payload bytes of deferred background migration requests.",
    )
