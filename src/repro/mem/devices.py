"""Memory device models.

A :class:`MemoryDevice` is a capacity-tracked store with asymmetric read and
write bandwidths and a fixed access latency.  Timing is a simple linear
model — ``latency + bytes / bandwidth`` — which is what matters for
reproducing the paper's results: the *ratio* between fast and slow memory
bandwidth determines who wins and by how much.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import AccountingError, DeviceFullError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.chaos import FaultInjector

__all__ = [
    "AccountingError",
    "DeviceKind",
    "DeviceSpec",
    "DeviceFullError",
    "MemoryDevice",
]


class DeviceKind(enum.Enum):
    """Which tier of the heterogeneous memory a page lives on."""

    FAST = "fast"
    SLOW = "slow"

    def other(self) -> "DeviceKind":
        return DeviceKind.SLOW if self is DeviceKind.FAST else DeviceKind.FAST


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a memory device.

    Attributes:
        name: human-readable label ("DDR4", "Optane PMM", "HBM2"...).
        capacity: size in bytes.
        read_bandwidth: sustained read bandwidth, bytes/second.
        write_bandwidth: sustained write bandwidth, bytes/second.
        latency: fixed per-access latency in seconds.
    """

    name: str
    capacity: int
    read_bandwidth: float
    write_bandwidth: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"device capacity must be positive, got {self.capacity!r}")
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError(f"device bandwidths must be positive: {self!r}")
        if self.latency < 0:
            raise ValueError(f"device latency must be non-negative: {self!r}")

    def with_capacity(self, capacity: int) -> "DeviceSpec":
        """A copy of this spec with a different capacity.

        Experiments size fast memory as a fraction of each model's peak
        consumption, so capacity is the one field that changes per run.
        """
        return DeviceSpec(
            name=self.name,
            capacity=int(capacity),
            read_bandwidth=self.read_bandwidth,
            write_bandwidth=self.write_bandwidth,
            latency=self.latency,
        )


class MemoryDevice:
    """A capacity-tracked memory device instance.

    Args:
        spec: static device description.
        kind: tier this device serves.
        injector: optional :class:`repro.chaos.FaultInjector` whose
            bandwidth-degradation episodes (Optane write throttling) stretch
            individual access times.  ``None`` keeps the exact linear model.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        kind: DeviceKind,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.spec = spec
        self.kind = kind
        self.injector = injector
        self._used = 0
        self._peak_used = 0
        self._reserved = 0

    @property
    def capacity(self) -> int:
        return self.spec.capacity

    @property
    def used(self) -> int:
        """Bytes currently allocated on the device."""
        return self._used

    @property
    def peak_used(self) -> int:
        """High-water mark of :attr:`used`."""
        return self._peak_used

    @property
    def reserved(self) -> int:
        """Bytes withheld from allocation (transient capacity loss)."""
        return self._reserved

    @property
    def free(self) -> int:
        return self.spec.capacity - self._used - self._reserved

    def allocate(self, nbytes: int) -> None:
        """Reserve ``nbytes``; raises :class:`DeviceFullError` if it doesn't fit."""
        if nbytes < 0:
            raise ValueError(f"cannot allocate negative bytes {nbytes!r}")
        if self._used + nbytes > self.spec.capacity - self._reserved:
            detail = f"({self._used}/{self.spec.capacity} used"
            if self._reserved:
                detail += f", {self._reserved} reserved"
            detail += ")"
            raise DeviceFullError(
                f"{self.spec.name}: allocation of {nbytes} bytes exceeds capacity "
                f"{detail}"
            )
        self._used += nbytes
        self._peak_used = max(self._peak_used, self._used)

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the device; over-release is a bookkeeping bug."""
        if nbytes < 0:
            raise ValueError(f"cannot release negative bytes {nbytes!r}")
        if nbytes > self._used:
            raise AccountingError(
                self.spec.name,
                "used",
                f"releasing {nbytes} bytes but only {self._used} allocated",
            )
        self._used -= nbytes

    def fits(self, nbytes: int) -> bool:
        return self._used + nbytes <= self.spec.capacity - self._reserved

    def reserve(self, nbytes: int) -> int:
        """Withhold up to ``nbytes`` from allocation; returns bytes granted.

        Models a transient capacity loss (the chaos ``capacity_shrink``
        fault): reserved bytes behave as if the frames do not exist, but
        allocations already resident are untouched — the grant is clamped
        to current free space, never forcing an eviction.
        """
        if nbytes < 0:
            raise ValueError(f"cannot reserve negative bytes {nbytes!r}")
        granted = min(nbytes, self.free)
        self._reserved += granted
        return granted

    def unreserve(self, nbytes: int) -> None:
        """Return withheld bytes; over-return is a bookkeeping bug."""
        if nbytes < 0:
            raise ValueError(f"cannot unreserve negative bytes {nbytes!r}")
        if nbytes > self._reserved:
            raise AccountingError(
                self.spec.name,
                "reserved",
                f"unreserving {nbytes} bytes but only {self._reserved} reserved",
            )
        self._reserved -= nbytes

    def access_time(self, nbytes: int, is_write: bool) -> float:
        """Time to move ``nbytes`` to/from the device, latency included."""
        if nbytes < 0:
            raise ValueError(f"cannot access negative bytes {nbytes!r}")
        bandwidth = self.spec.write_bandwidth if is_write else self.spec.read_bandwidth
        time = self.spec.latency + nbytes / bandwidth
        if self.injector is not None:
            # An active throttling episode (Optane under write pressure)
            # stretches this access; the neutral return is exactly 1.0 so a
            # zero-rate injector leaves the linear model bit-identical.
            time *= self.injector.device_slowdown(self.kind, is_write)
        return time

    def reset_peak(self) -> None:
        self._peak_used = self._used

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryDevice({self.spec.name!r}, kind={self.kind.value}, "
            f"used={self._used}/{self.spec.capacity})"
        )
