"""The assembled heterogeneous-memory machine.

:class:`Machine` wires a :class:`~repro.mem.platforms.Platform` description
into live components — two devices, a page table, a TLB, the profiling fault
handler, and the two-channel migration engine — and offers the composite
operations (run mapping/unmapping, access-time lookup) the executor and
placement policies need.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.mem.admission import AdmissionController
from repro.mem.admission import describe_counters as describe_admission_counters
from repro.mem.cache import DRAMCache
from repro.mem.devices import DeviceKind, MemoryDevice
from repro.mem.faults import FaultHandler
from repro.mem.migration import MigrationEngine
from repro.mem.page import PageTable, PageTableEntry
from repro.mem.platforms import Platform
from repro.mem.pressure import PressureConfig, PressureGovernor
from repro.mem.ras import RASConfig, RasEngine
from repro.mem.tlb import TLB
from repro.obs.metrics import MetricsRegistry
from repro.sim.channel import BandwidthChannel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.chaos import FaultInjector
    from repro.obs.insight import InsightCollector
    from repro.obs.trace import EventTracer
    from repro.sim.engine import Engine


class Machine:
    """A live instance of a heterogeneous-memory platform.

    Args:
        platform: static platform description to instantiate.
        injector: optional :class:`repro.chaos.FaultInjector` threaded into
            every fallible component (devices, fault handler, migration
            engine).  ``None`` — the default — leaves all fault-free code
            paths byte-identical to a machine built before chaos existed.
        tracer: optional :class:`repro.obs.EventTracer` threaded into every
            event-emitting component (channels, migration engine, fault
            handler, and the injector if one is attached).  ``None`` — the
            default — records nothing: every instrumentation site is one
            ``is None`` check, so untraced runs stay bit-identical.
        pressure: optional :class:`~repro.mem.pressure.PressureConfig`;
            when enabled, a :class:`~repro.mem.pressure.PressureGovernor`
            gates background promotions at the high watermark, reclaims
            above the low watermark, and spills over-capacity fast
            allocations to the slow tier.  ``None`` or a disabled config
            (the defaults: watermarks at 100%, zero reserve) leaves every
            run byte-identical to a governor-free machine.
        metrics: optional :class:`repro.obs.metrics.MetricsRegistry`.  When
            attached it *becomes* the machine's stats registry (so the
            established ``migration.*`` / ``pressure.*`` counters land in
            it) and additionally unlocks the detailed sampling sites —
            histograms of transfer sizes and queueing delays, occupancy
            time series — in the executor, channels, migration engine,
            pressure governor, and Sentinel runtime.  ``None`` — the
            default — keeps every detailed site dormant behind one
            ``is not None`` check, so un-metered runs stay byte-identical.
        ras: optional :class:`~repro.mem.ras.RASConfig`; when enabled, a
            :class:`~repro.mem.ras.RasEngine` injects seeded CE/UE memory
            errors, patrol-scrubs them, retires frames struck by UEs, and
            drives the tensor-recovery ladder.  ``None`` or a disabled
            config (the default: all rates zero) builds no engine and
            leaves every run byte-identical to a pre-RAS machine.
        insight: optional :class:`repro.obs.insight.InsightCollector`.
            When attached the migration engine notifies it of every
            promote/demote/discard/materialize so per-tensor residency
            timelines and churn analytics can be derived; the collector
            emits no events and touches no counters, so traced/metered
            output stays byte-identical.  ``None`` — the default — keeps
            every hook site dormant behind one ``is None`` check.
        admission: optional
            :class:`repro.mem.admission.AdmissionController`.  When
            attached, every non-urgent promote/demote request is screened
            before submission (urgent demand migrations bypass it by
            contract).  ``None`` — the default — keeps both gate sites
            dormant; :class:`~repro.mem.admission.AlwaysAdmit` admits
            everything and stays trace-byte-identical to ``None``.
    """

    def __init__(
        self,
        platform: Platform,
        injector: Optional["FaultInjector"] = None,
        tracer: Optional["EventTracer"] = None,
        pressure: Optional[PressureConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        ras: Optional[RASConfig] = None,
        insight: Optional["InsightCollector"] = None,
        admission: Optional["AdmissionController"] = None,
    ) -> None:
        self.platform = platform
        self.injector = injector
        self.tracer = tracer
        self.metrics = metrics
        if injector is not None and tracer is not None:
            injector.tracer = tracer
        self.fast = MemoryDevice(platform.fast, DeviceKind.FAST, injector=injector)
        self.slow = MemoryDevice(platform.slow, DeviceKind.SLOW, injector=injector)
        self.page_table = PageTable(page_size=platform.page_size)
        self.tlb = TLB()
        self.fault_handler = FaultHandler(
            self.page_table,
            self.tlb,
            fault_cost=platform.fault_cost,
            injector=injector,
            tracer=tracer,
        )
        self.stats = metrics if metrics is not None else MetricsRegistry()
        self.promote_channel = BandwidthChannel(
            platform.promote_bandwidth,
            name="promote",
            latency=platform.migration_latency,
            tracer=tracer,
            metrics=metrics,
        )
        self.demote_channel = BandwidthChannel(
            platform.demote_bandwidth,
            name="demote",
            latency=platform.migration_latency,
            tracer=tracer,
            metrics=metrics,
        )
        self.demand_channel = BandwidthChannel(
            platform.promote_bandwidth,
            name="demand-promote",
            latency=platform.migration_latency,
            tracer=tracer,
            metrics=metrics,
        )
        self.migration = MigrationEngine(
            self.page_table,
            self.fast,
            self.slow,
            self.promote_channel,
            self.demote_channel,
            stats=self.stats,
            demand_channel=self.demand_channel,
            injector=injector,
            tracer=tracer,
            metrics=metrics,
        )
        self.pressure: Optional[PressureGovernor] = None
        if pressure is not None and pressure.enabled:
            self.pressure = PressureGovernor(pressure, self)
            self.migration.governor = self.pressure
        self.ras: Optional[RasEngine] = None
        if ras is not None and ras.enabled:
            self.ras = RasEngine(ras, self)
            self.migration.ras = self.ras
        self.insight: Optional["InsightCollector"] = insight
        if insight is not None:
            insight.bind(self)
            self.migration.insight = insight
        self.admission: Optional["AdmissionController"] = admission
        if admission is not None:
            self.migration.admission = admission
            describe_admission_counters(self.stats)
        self._dram_cache: Optional[DRAMCache] = None
        self.engine: Optional["Engine"] = None
        #: whether the machine is currently serving work.  Failure episodes
        #: (:class:`repro.chaos.EpisodeDriver`) flip this; the serving layer
        #: checks it before dispatching jobs and interrupts in-flight ones
        #: when it goes down.  Plain simulation paths never read it.
        self.online = True

    def set_online(self, online: bool, now: float) -> None:
        """Flip machine availability (failure-episode support).

        Emits a ``chaos``-category trace instant on transitions so outage
        windows are visible in the timeline; idempotent repeats are silent.
        """
        if online == self.online:
            return
        self.online = online
        if self.tracer is not None:
            self.tracer.instant(
                "machine-online" if online else "machine-offline",
                "chaos",
                ts=now,
                track="chaos",
            )

    def bind_engine(self, engine: "Engine") -> None:
        """Attach the machine's components to a discrete-event engine.

        Channels schedule :data:`~repro.sim.engine.EventKind.TRANSFER_DONE`
        events at their analytic finish times, and the migration engine
        subscribes to them so commits happen at the true completion instant
        instead of the next lazy ``sync``.  Idempotent per engine; binding
        a *different* engine mid-run is a scheduling bug and raises.
        """
        if self.engine is engine:
            return
        if self.engine is not None:
            raise RuntimeError("machine is already bound to a different engine")
        self.engine = engine
        self.promote_channel.bind_engine(engine)
        self.demote_channel.bind_engine(engine)
        self.demand_channel.bind_engine(engine)
        self.migration.bind_engine(engine)
        self.fault_handler.engine = engine
        if self.injector is not None:
            self.injector.engine = engine

    @classmethod
    def for_platform(
        cls,
        platform: Platform,
        fast_capacity: Optional[int] = None,
        injector: Optional["FaultInjector"] = None,
        tracer: Optional["EventTracer"] = None,
        pressure: Optional[PressureConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        ras: Optional[RASConfig] = None,
        insight: Optional["InsightCollector"] = None,
        admission: Optional[AdmissionController] = None,
    ) -> "Machine":
        """Build a machine, optionally resizing the fast tier.

        Experiments size fast memory as a fraction of each model's peak
        consumption (the paper's 20%-of-peak setting), so this is the common
        entry point.
        """
        if fast_capacity is not None:
            platform = platform.with_fast_capacity(fast_capacity)
        return cls(
            platform,
            injector=injector,
            tracer=tracer,
            pressure=pressure,
            metrics=metrics,
            ras=ras,
            insight=insight,
            admission=admission,
        )

    @property
    def page_size(self) -> int:
        return self.page_table.page_size

    def device(self, kind: DeviceKind) -> MemoryDevice:
        return self.fast if kind is DeviceKind.FAST else self.slow

    # ------------------------------------------------------------ allocation

    def map_run(self, npages: int, kind: DeviceKind, now: float = 0.0) -> PageTableEntry:
        """Map a fresh run of ``npages`` on tier ``kind``, charging capacity.

        With a pressure governor attached, a fast-tier request that does
        not fit in the non-reserved portion of fast memory spills to the
        slow tier (recorded as ``pressure.spill``) instead of raising.
        """
        nbytes = npages * self.page_size
        if (
            kind is DeviceKind.FAST
            and self.pressure is not None
            and not self.pressure.admit_allocation(nbytes, now)
        ):
            kind = DeviceKind.SLOW
            self.pressure.record_spill(nbytes, now)
        self.device(kind).allocate(nbytes)
        run = self.page_table.map_run(npages, kind)
        if self.pressure is not None:
            self.pressure.note_usage(now)
        return run

    def unmap_run(self, run: PageTableEntry, now: float) -> None:
        """Free a run, settling any in-flight migration first."""
        self.migration.release_run(run, now)
        self.tlb.flush(run.vpn)
        self.page_table.unmap(run.vpn)

    def unmap_runs(self, runs: Sequence[PageTableEntry], now: float) -> None:
        """Free a batch of runs in one pass (multi-run tensor teardown).

        Equivalent to :meth:`unmap_run` per run — release accounting is
        per-run independent, so settling them all, then one batched TLB
        shootdown, then the table updates reorders nothing observable —
        while paying the shootdown entry cost once.
        """
        for run in runs:
            self.migration.release_run(run, now)
        self.tlb.flush_many(run.vpn for run in runs)
        for run in runs:
            self.page_table.unmap(run.vpn)

    # ---------------------------------------------------------------- timing

    def access_time(self, kind: DeviceKind, nbytes: int, is_write: bool) -> float:
        return self.device(kind).access_time(nbytes, is_write)

    @property
    def dram_cache(self) -> DRAMCache:
        """Lazily-built Memory Mode cache (only the memory-mode policy uses it)."""
        if self._dram_cache is None:
            self._dram_cache = DRAMCache(
                self.fast,
                self.slow,
                self.page_size,
                fill_bandwidth=self.platform.promote_bandwidth,
                writeback_bandwidth=self.platform.demote_bandwidth,
            )
        return self._dram_cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine({self.platform.name!r}, fast={self.fast.used}/"
            f"{self.fast.capacity}, slow={self.slow.used}/{self.slow.capacity})"
        )
