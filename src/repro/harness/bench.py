"""Perf-regression benchmark harness over the attribution engine.

Runs traced end-to-end policy runs per model, attributes every step via
:mod:`repro.obs.critpath`, and emits two JSON artifacts:

* ``BENCH_step_time.json`` — per-model steady-state step times (the
  gating surface: median simulated step time, deterministic by
  construction, so CI can fail on >5% regressions without wall-clock
  noise);
* ``BENCH_attribution.json`` — the full component breakdown and what-if
  answers per model (the perf trajectory record: future policy PRs justify
  themselves against this file's history).

Both artifacts are byte-stable for a given tree: they contain only
simulated-time quantities, never wall-clock timings or dates, so
regenerating them on an unchanged tree produces an identical file and the
committed baselines never churn.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro import accel
from repro.harness.runner import (
    EXPERIMENT_WARMUP_STEPS,
    STEADY_STEPS,
    run_policy,
)
from repro.obs.critpath import Attribution, attribute
from repro.obs.trace import EventTracer

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_BENCH_MODELS",
    "attribution_benchmark",
    "step_time_payload",
    "write_bench",
    "load_bench",
    "check_regression",
    "wallclock_benchmark",
    "check_wallclock_regression",
]

#: Schema version stamped into both artifacts; bump on shape changes.
BENCH_SCHEMA = 1

#: The CI smoke set: small models that exercise the full Sentinel lifecycle.
DEFAULT_BENCH_MODELS = ("dcgan", "lstm")


def attribution_benchmark(
    models: Sequence[str] = DEFAULT_BENCH_MODELS,
    policy: str = "sentinel",
    fast_fraction: float = 0.2,
    steady_steps: int = STEADY_STEPS,
) -> Dict:
    """Run the attribution benchmark and return the full payload.

    Each model runs traced under ``policy`` with fast memory sized to
    ``fast_fraction`` of its peak; every step is attributed, and the
    steady-state tail (the last ``steady_steps`` steps, past warmup and
    profiling) yields the gated median step time.
    """
    out: Dict = {
        "schema": BENCH_SCHEMA,
        "policy": policy,
        "fast_fraction": fast_fraction,
        "steady_steps": steady_steps,
        "models": {},
    }
    for model in models:
        tracer = EventTracer()
        run_policy(
            policy,
            model=model,
            fast_fraction=fast_fraction,
            steady_steps=steady_steps,
            tracer=tracer,
        )
        attribution = attribute(tracer.events, tracer.dropped)
        out["models"][model] = _model_entry(attribution, steady_steps)
    return out


def _model_entry(attribution: Attribution, steady_steps: int) -> Dict:
    steady = attribution.steps[-steady_steps:]
    totals = {key: round(value, 9) for key, value in attribution.totals().items()}
    return {
        "steps": len(attribution),
        "step_times": [round(step.duration, 9) for step in attribution],
        "median_step_time": round(
            attribution.median_step_time(last=steady_steps), 9
        ),
        "attribution_totals": totals,
        "steady_attribution": {
            key: round(sum(step.components()[key] for step in steady), 9)
            for key in totals
        },
        "what_if_free_migration": round(
            attribution.what_if_free_migration(last=steady_steps), 9
        ),
        "what_if_2x_bandwidth": round(
            attribution.what_if_bandwidth_scale(2.0, last=steady_steps), 9
        ),
    }


def step_time_payload(payload: Dict) -> Dict:
    """Project the gating subset (``BENCH_step_time.json``) out of the
    full attribution payload — only what the regression check compares."""
    return {
        "schema": payload["schema"],
        "policy": payload["policy"],
        "fast_fraction": payload["fast_fraction"],
        "models": {
            model: {
                "median_step_time": entry["median_step_time"],
                "step_times": entry["step_times"],
            }
            for model, entry in sorted(payload["models"].items())
        },
    }


def write_bench(payload: Dict, path: Path) -> None:
    """Write a benchmark artifact as canonical JSON (sorted keys)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_bench(path: Path) -> Optional[Dict]:
    """Load a benchmark artifact, or ``None`` when it does not exist."""
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def check_regression(
    baseline: Dict, current: Dict, threshold: float = 0.05
) -> List[str]:
    """Compare two step-time payloads; return regression descriptions.

    A model regresses when its median simulated step time grows more than
    ``threshold`` relative to the baseline.  Models present on only one
    side are reported too (a silently vanished benchmark is not a pass);
    improvements are never failures.
    """
    if threshold < 0.0:
        raise ValueError(f"threshold must be non-negative, got {threshold!r}")
    problems: List[str] = []
    base_models = baseline.get("models", {})
    cur_models = current.get("models", {})
    for model in sorted(base_models):
        if model not in cur_models:
            problems.append(f"{model}: missing from current benchmark run")
            continue
        base = base_models[model]["median_step_time"]
        cur = cur_models[model]["median_step_time"]
        if base <= 0.0:
            continue
        growth = (cur - base) / base
        if growth > threshold:
            problems.append(
                f"{model}: median step time regressed {growth * 100.0:.1f}% "
                f"({base:.6f}s -> {cur:.6f}s, threshold {threshold * 100.0:.0f}%)"
            )
    for model in sorted(cur_models):
        if model not in base_models:
            problems.append(
                f"{model}: not in baseline — regenerate the baseline to adopt it"
            )
    return problems


# --------------------------------------------------------------- wall clock
#
# Unlike the simulated-time artifacts above, wall-clock throughput depends
# on the machine running the benchmark.  The gated quantity is therefore
# the *ratio* of vectorized to scalar throughput on the same machine in the
# same process (``speedup_vs_scalar``) — machine speed divides out — while
# the raw steps/sec figures are recorded for trend reading only.

#: Schema version for ``BENCH_wallclock.json``.
WALLCLOCK_SCHEMA = 1

#: Repeats per (model, path) measurement; the slowest ``WALLCLOCK_TRIM``
#: are dropped before taking the median, which discards GC pauses and
#: CI-runner noise spikes without rewarding lucky fast outliers.
WALLCLOCK_REPEATS = 5
WALLCLOCK_TRIM = 1


def _trimmed_median(samples: Sequence[float], trim: int) -> float:
    """Median after dropping the ``trim`` largest samples.

    Wall-clock noise on shared runners is one-sided (preemption only makes
    runs slower), so only the slow tail is trimmed.
    """
    if not samples:
        raise ValueError("need at least one sample")
    kept = sorted(samples)[: max(1, len(samples) - trim)]
    mid = len(kept) // 2
    if len(kept) % 2:
        return kept[mid]
    return (kept[mid - 1] + kept[mid]) / 2.0


def _simulated_steps(policy: str, steady_steps: int) -> int:
    """Steps one ``run_policy`` call executes (mirrors the runner's count)."""
    total = steady_steps
    if policy.startswith("sentinel"):
        total += EXPERIMENT_WARMUP_STEPS + 1
    return total


def _measure_steps_per_sec(
    model: str,
    policy: str,
    fast_fraction: float,
    steady_steps: int,
    repeats: int,
    trim: int,
) -> float:
    steps = _simulated_steps(policy, steady_steps)
    seconds: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        run_policy(
            policy,
            model=model,
            fast_fraction=fast_fraction,
            steady_steps=steady_steps,
        )
        seconds.append(time.perf_counter() - start)
    return steps / _trimmed_median(seconds, trim)


def wallclock_benchmark(
    models: Sequence[str] = DEFAULT_BENCH_MODELS,
    policy: str = "sentinel",
    fast_fraction: float = 0.2,
    steady_steps: int = STEADY_STEPS,
    repeats: int = WALLCLOCK_REPEATS,
    trim: int = WALLCLOCK_TRIM,
) -> Dict:
    """Measure wall-clock throughput (simulated steps per second).

    Each model is measured ``repeats`` times on both accounting paths;
    each measurement's slow tail is trimmed and the median taken.  The
    per-model ``speedup_vs_scalar`` ratio is the CI-gated quantity; the
    absolute steps/sec figures are machine-dependent context.  The
    caller's scalar/vectorized flag is restored on exit.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats!r}")
    out: Dict = {
        "schema": WALLCLOCK_SCHEMA,
        "policy": policy,
        "fast_fraction": fast_fraction,
        "steady_steps": steady_steps,
        "repeats": repeats,
        "trim": trim,
        "models": {},
    }
    was_scalar = accel.scalar_enabled()
    try:
        for model in models:
            accel.set_scalar_path(False)
            vec = _measure_steps_per_sec(
                model, policy, fast_fraction, steady_steps, repeats, trim
            )
            accel.set_scalar_path(True)
            scalar = _measure_steps_per_sec(
                model, policy, fast_fraction, steady_steps, repeats, trim
            )
            out["models"][model] = {
                "steps_per_sec": round(vec, 3),
                "scalar_steps_per_sec": round(scalar, 3),
                "speedup_vs_scalar": round(vec / scalar, 4),
            }
    finally:
        accel.set_scalar_path(was_scalar)
    return out


def check_wallclock_regression(
    baseline: Dict, current: Dict, band: float = 0.25
) -> List[str]:
    """Gate the vectorized-vs-scalar speedup within a tolerance band.

    A model fails when its current ``speedup_vs_scalar`` falls more than
    ``band`` (relative) below the committed baseline's — i.e. the
    vectorized path lost its edge over the scalar reference.  The band is
    deliberately wide: the ratio cancels machine speed but not all
    scheduling noise.  Absolute steps/sec is never gated (different CI
    hardware would fail spuriously); speedups above baseline always pass.
    """
    if band < 0.0:
        raise ValueError(f"band must be non-negative, got {band!r}")
    problems: List[str] = []
    base_models = baseline.get("models", {})
    cur_models = current.get("models", {})
    for model in sorted(base_models):
        if model not in cur_models:
            problems.append(f"{model}: missing from current wallclock run")
            continue
        base = base_models[model]["speedup_vs_scalar"]
        cur = cur_models[model]["speedup_vs_scalar"]
        if base <= 0.0:
            continue
        if cur < base * (1.0 - band):
            problems.append(
                f"{model}: vectorized speedup fell {100.0 * (base - cur) / base:.1f}% "
                f"below baseline ({base:.2f}x -> {cur:.2f}x, band {band * 100.0:.0f}%)"
            )
    for model in sorted(cur_models):
        if model not in base_models:
            problems.append(
                f"{model}: not in wallclock baseline — regenerate to adopt it"
            )
    return problems
