"""Policy tournament: rank {model x policy x admission x governor} combos.

The admission layer (:mod:`repro.mem.admission`) makes "which migrations
are worth their bandwidth" a swappable policy; this harness answers the
follow-up question — *which combination wins* — by running the full grid
of zoo models x placement policies x admission controllers x pressure
governor on/off and emitting a ranked leaderboard.

Every cell is one :func:`~repro.harness.runner.run_policy` simulation with
a fresh :class:`~repro.obs.insight.InsightCollector` (for ping-pong rates)
and a fresh admission controller (they are stateful).  Slowdown is
measured against a per-model ``fast-only`` baseline run in the same
tournament, so the artifact is self-contained.  Cells are enumerated in
deterministic serial order and merged back by index when pooled, and the
JSON artifact is canonical (sorted keys, fixed separators) — reruns are
byte-identical, which CI checks with ``cmp``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.vdnn import UnsupportedModelError
from repro.harness.report import format_table
from repro.harness.runner import OOM_ERRORS, run_policy
from repro.mem.platforms import OPTANE_HM, Platform
from repro.mem.pressure import PressureConfig
from repro.obs.insight import InsightCollector

#: Artifact schema tag; bump on incompatible layout changes.
TOURNAMENT_SCHEMA = "tournament/v1"

#: Default grids: every registered admission controller across four zoo
#: models and the three migration-heavy placement policies.
DEFAULT_MODELS = ("dcgan", "lstm", "mobilenet", "resnet32")
DEFAULT_POLICIES = ("sentinel", "ial", "autotm")
DEFAULT_ADMISSIONS = ("always", "benefit-cost", "feedback")

#: Governor-on cells run under these watermarks — aggressive enough to
#: interact with admission (refused promotions, reclaim demotions) at the
#: constrained fractions tournaments use.
TOURNAMENT_PRESSURE = PressureConfig(
    low_watermark=0.75, high_watermark=0.9, reserve_frames=32
)


@dataclass(frozen=True)
class _CellSpec:
    """One tournament cell, picklable for the worker pool.

    ``index`` is the cell's position in deterministic enumeration order;
    the pooled runner merges by it, so results are byte-identical
    whatever order workers finish in.  ``admission is None`` encodes the
    per-model ``fast-only`` baseline cell.
    """

    index: int
    model: str
    policy: str
    admission: Optional[str]
    admission_args: Optional[Dict[str, object]]
    governor: bool
    fast_fraction: Optional[float]
    platform: Platform


def _enumerate_cells(
    models: Sequence[str],
    policies: Sequence[str],
    admissions: Sequence[str],
    governors: Sequence[bool],
    fast_fraction: float,
    platform: Platform,
    admission_args: Optional[Dict[str, Dict[str, object]]],
) -> List[_CellSpec]:
    """Baselines first, then the grid — a pure function of the inputs."""
    specs: List[_CellSpec] = []
    for model in models:
        specs.append(
            _CellSpec(
                index=len(specs),
                model=model,
                policy="fast-only",
                admission=None,
                admission_args=None,
                governor=False,
                fast_fraction=None,
                platform=platform,
            )
        )
    args = admission_args or {}
    for model in models:
        for policy in policies:
            for admission in admissions:
                for governor in governors:
                    specs.append(
                        _CellSpec(
                            index=len(specs),
                            model=model,
                            policy=policy,
                            admission=admission,
                            admission_args=args.get(admission),
                            governor=governor,
                            fast_fraction=fast_fraction,
                            platform=platform,
                        )
                    )
    return specs


def _run_cell(spec: _CellSpec) -> Dict[str, object]:
    """Execute one cell; failures become recorded cells, not exceptions."""
    cell: Dict[str, object] = {
        "model": spec.model,
        "policy": spec.policy,
        "admission": spec.admission,
        "governor": spec.governor,
        "fast_fraction": spec.fast_fraction,
    }
    collector = InsightCollector()
    try:
        metrics = run_policy(
            spec.policy,
            model=spec.model,
            platform=spec.platform,
            fast_fraction=spec.fast_fraction,
            pressure=TOURNAMENT_PRESSURE if spec.governor else None,
            admission=spec.admission,
            admission_args=spec.admission_args,
            insight=collector,
        )
    except UnsupportedModelError:
        cell["failure"] = "unsupported"
        return cell
    except OOM_ERRORS:
        cell["failure"] = "oom"
        return cell
    summary = collector.summary()
    migrations = summary["insight.migration_events"]
    cell.update(
        {
            "failure": None,
            "step_time": metrics.step_time,
            "stall_share": (
                metrics.stall_time / metrics.step_time
                if metrics.step_time > 0
                else 0.0
            ),
            "migrated_bytes": metrics.migrated_bytes,
            "pingpong_rate": (
                summary["insight.pingpong_events"] / migrations
                if migrations > 0
                else 0.0
            ),
            "admission_counters": {
                key: value
                for key, value in sorted(metrics.extras.items())
                if key.startswith("admission.") and key != "admission.controller"
            },
        }
    )
    return cell


def _run_cell_indexed(spec: _CellSpec) -> Tuple[int, Dict[str, object]]:
    return spec.index, _run_cell(spec)


def _leaderboard(cells: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Aggregate cells into ranked (policy, admission, governor) entries.

    Rank is by mean slowdown over the models a combo completed, ties
    broken lexicographically so the order never depends on enumeration.
    """
    combos: Dict[Tuple[str, str, bool], List[Dict[str, object]]] = {}
    for cell in cells:
        if cell.get("failure") is not None:
            continue
        key = (cell["policy"], cell["admission"], cell["governor"])
        combos.setdefault(key, []).append(cell)
    entries: List[Dict[str, object]] = []
    for (policy, admission, governor), members in combos.items():
        count = len(members)
        entries.append(
            {
                "policy": policy,
                "admission": admission,
                "governor": governor,
                "models_ok": count,
                "mean_slowdown": sum(c["slowdown"] for c in members) / count,
                "mean_stall_share": sum(c["stall_share"] for c in members) / count,
                "mean_pingpong_rate": (
                    sum(c["pingpong_rate"] for c in members) / count
                ),
                "total_migrated_bytes": sum(c["migrated_bytes"] for c in members),
            }
        )
    entries.sort(
        key=lambda e: (
            -e["models_ok"],
            e["mean_slowdown"],
            e["policy"],
            e["admission"],
            e["governor"],
        )
    )
    for rank, entry in enumerate(entries, start=1):
        entry["rank"] = rank
    return entries


def run_tournament(
    models: Sequence[str] = DEFAULT_MODELS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    admissions: Sequence[str] = DEFAULT_ADMISSIONS,
    governors: Sequence[bool] = (False, True),
    fast_fraction: float = 0.2,
    platform: Platform = OPTANE_HM,
    admission_args: Optional[Dict[str, Dict[str, object]]] = None,
    workers: int = 1,
) -> Dict[str, object]:
    """Run the full tournament grid and build the leaderboard artifact.

    Returns a dict with ``schema``, the run ``config``, per-model
    ``baselines`` (fast-only step times), all ``cells`` in enumeration
    order, and the ranked ``leaderboard``.  ``admission_args`` maps a
    controller name to constructor kwargs for its cells.  With
    ``workers > 1`` cells run on a multiprocessing pool and are merged
    back by index — byte-identical to serial.
    """
    if not models or not policies or not admissions or not governors:
        raise ValueError("need at least one model, policy, admission, governor")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    unknown = [g for g in governors if not isinstance(g, bool)]
    if unknown:
        raise ValueError(f"governors must be booleans, got {unknown!r}")
    specs = _enumerate_cells(
        models, policies, admissions, governors,
        fast_fraction, platform, admission_args,
    )
    if workers == 1 or len(specs) == 1:
        cells = [_run_cell(spec) for spec in specs]
    else:
        import multiprocessing

        from repro import accel
        from repro.harness.sweeps import _init_worker

        merged: List[Optional[Dict[str, object]]] = [None] * len(specs)
        ctx = multiprocessing.get_context()
        with ctx.Pool(
            processes=min(workers, len(specs)),
            initializer=_init_worker,
            initargs=(accel.scalar_enabled(),),
        ) as pool:
            for index, cell in pool.imap_unordered(_run_cell_indexed, specs):
                merged[index] = cell
        assert all(cell is not None for cell in merged)
        cells = merged  # type: ignore[assignment]

    nbase = len(models)
    baselines: Dict[str, float] = {}
    for cell in cells[:nbase]:
        if cell.get("failure") is None:
            baselines[cell["model"]] = cell["step_time"]
    grid: List[Dict[str, object]] = []
    for cell in cells[nbase:]:
        baseline = baselines.get(cell["model"])
        if cell.get("failure") is None:
            cell["slowdown"] = (
                cell["step_time"] / baseline
                if baseline is not None and baseline > 0
                else None
            )
        grid.append(cell)
    return {
        "schema": TOURNAMENT_SCHEMA,
        "config": {
            "models": list(models),
            "policies": list(policies),
            "admissions": list(admissions),
            "governors": list(governors),
            "fast_fraction": fast_fraction,
            "platform": platform.name,
        },
        "baselines": baselines,
        "cells": grid,
        "leaderboard": _leaderboard(grid),
    }


def tournament_json(result: Dict[str, object]) -> str:
    """Canonical byte-stable JSON for the artifact (``cmp``-comparable)."""
    return json.dumps(result, sort_keys=True, separators=(",", ":")) + "\n"


def format_leaderboard(result: Dict[str, object]) -> str:
    """Human-readable ranked table of the leaderboard."""
    rows = []
    for entry in result["leaderboard"]:
        rows.append(
            (
                entry["rank"],
                entry["policy"],
                entry["admission"],
                "on" if entry["governor"] else "off",
                f"{entry['mean_slowdown']:.4f}",
                f"{entry['mean_stall_share']:.4f}",
                f"{entry['mean_pingpong_rate']:.4f}",
                f"{entry['total_migrated_bytes'] / 1024.0 ** 2:.1f}",
                entry["models_ok"],
            )
        )
    return format_table(
        (
            "rank", "policy", "admission", "governor",
            "slowdown", "stall", "pingpong", "migrated MiB", "models",
        ),
        rows,
        title="tournament leaderboard",
    )
