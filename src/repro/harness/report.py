"""Plain-text rendering of experiment results.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, points: Sequence[Tuple[object, float]], unit: str = ""
) -> str:
    """Render an (x, y) series as the figure data it regenerates."""
    lines = [f"{name}{f' ({unit})' if unit else ''}:"]
    for x, y in points:
        lines.append(f"  {_cell(x):>12} -> {y:.4g}")
    return "\n".join(lines)


def format_bars(
    name: str,
    points: Sequence[Tuple[object, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render an (label, value) series as a horizontal ASCII bar chart.

    The figure-regenerating benchmarks use this for quick visual shape
    checks in the saved text outputs.
    """
    if not points:
        return f"{name}: (no data)"
    peak = max(value for _, value in points)
    scale = (width / peak) if peak > 0 else 0.0
    label_width = max(len(_cell(label)) for label, _ in points)
    lines = [f"{name}{f' ({unit})' if unit else ''}:"]
    for label, value in points:
        bar = "#" * max(0, round(value * scale))
        lines.append(f"  {_cell(label):>{label_width}} | {bar} {value:.4g}")
    return "\n".join(lines)


def format_counters(
    counters: "dict[str, float]", title: str = "counters", indent: int = 2
) -> str:
    """Render a counter snapshot (e.g. retry/fallback/chaos counts).

    Keys are sorted so the output is stable across runs; integral values
    print without a decimal point.
    """
    pad = " " * indent
    lines = [f"{title}:"]
    if not counters:
        lines.append(f"{pad}(none)")
        return "\n".join(lines)
    width = max(len(name) for name in counters)
    for name in sorted(counters):
        value = counters[name]
        if isinstance(value, float) and value.is_integer():
            rendered = str(int(value))
        else:
            rendered = _cell(value)
        lines.append(f"{pad}{name.ljust(width)} = {rendered}")
    return "\n".join(lines)


def format_trace_summary(events, title: str = "trace summary", dropped: int = 0) -> str:
    """Render a per-category digest of a structured event trace.

    One row per :mod:`repro.obs` category present in ``events``: event
    count, closed span count, total busy (span) time, and total ``nbytes``
    moved by that category's events — the at-a-glance companion to loading
    the full Chrome export in Perfetto.

    ``dropped`` is the tracer's ring-overwrite count; nonzero appends an
    explicit truncation warning, since every aggregate below then covers
    only the surviving window.
    """
    from repro.obs.query import TraceQuery

    events = list(events)
    query = TraceQuery(events)
    rows = []
    for cat in sorted(query.categories()):
        sub = query.filter(cat=cat)
        spans = query.spans(cat=cat)
        busy = sum(span.duration for span in spans)
        moved = TraceQuery(sub).sum_arg("nbytes")
        rows.append(
            (
                cat,
                len(sub),
                len(spans),
                f"{busy:.4g}",
                f"{mib(moved):.4g}" if moved else "0",
            )
        )
    if not rows:
        return f"{title}: (no events)"
    table = format_table(
        ("category", "events", "spans", "busy (s)", "moved (MiB)"),
        rows,
        title=title,
    )
    tracks = ", ".join(sorted(query.tracks()))
    out = f"{table}\ntracks: {tracks}"
    if dropped:
        out += (
            f"\nWARNING: ring buffer dropped {dropped} events — "
            f"window truncated, attribution may be partial"
        )
    return out


def format_attribution(attribution, title: str = "step attribution") -> str:
    """Render a :class:`repro.obs.critpath.Attribution` as the Figure 13
    style breakdown: one row per step with the exclusive components,
    a totals row, and the two headline what-if answers.
    """
    headers = (
        "step",
        "duration (s)",
        "compute",
        "mig stall",
        "contention",
        "fault",
        "reclaim",
        "ras",
        "idle",
    )
    rows = []
    for step in attribution:
        comp = step.components()
        rows.append(
            (
                step.step,
                f"{step.duration:.4f}",
                f"{comp['compute']:.4f}",
                f"{comp['migration_stall']:.4f}",
                f"{comp['channel_contention']:.4f}",
                f"{comp['fault']:.4f}",
                f"{comp['pressure_reclaim']:.4f}",
                f"{comp['ras_recovery']:.4f}",
                f"{comp['idle']:.4f}",
            )
        )
    totals = attribution.totals()
    duration_total = sum(step.duration for step in attribution)
    rows.append(
        (
            "total",
            f"{duration_total:.4f}",
            f"{totals['compute']:.4f}",
            f"{totals['migration_stall']:.4f}",
            f"{totals['channel_contention']:.4f}",
            f"{totals['fault']:.4f}",
            f"{totals['pressure_reclaim']:.4f}",
            f"{totals['ras_recovery']:.4f}",
            f"{totals['idle']:.4f}",
        )
    )
    table = format_table(headers, rows, title=title)
    if not len(attribution):
        return table
    measured = attribution.median_step_time()
    free = attribution.what_if_free_migration()
    doubled = attribution.what_if_bandwidth_scale(2.0)
    lines = [
        table,
        f"median step time        = {measured:.4f} s",
        f"what-if free migration  = {free:.4f} s"
        f" ({_speedup(measured, free)})",
        f"what-if 2x bandwidth    = {doubled:.4f} s"
        f" ({_speedup(measured, doubled)})",
    ]
    return "\n".join(lines)


def _speedup(measured: float, hypothetical: float) -> str:
    if hypothetical <= 0.0:
        return "inf speedup"
    return f"{measured / hypothetical:.2f}x speedup"


def format_pressure(extras: "dict[str, float]", title: str = "pressure") -> str:
    """Render the pressure governor's counter section of a run summary.

    Takes a run's extras (or a raw ``pressure.*`` counter snapshot) and
    prints the spill / refused-promotion / reclaim / compaction story with
    a stable shape: every headline counter appears even when zero, so runs
    can be diffed line by line.
    """
    headline = (
        ("spills", "pressure.spills", "count"),
        ("spilled", "pressure.spilled_bytes", "mib"),
        ("refused promotions", "pressure.refused_promotions", "count"),
        ("refused", "pressure.refused_bytes", "mib"),
        ("reclaims", "pressure.reclaims", "count"),
        ("reclaimed", "pressure.reclaimed_bytes", "mib"),
        ("compaction moves", "pressure.compaction_moves", "count"),
        ("compaction moved", "pressure.compaction_bytes", "mib"),
        ("compaction freed", "pressure.compaction_freed_bytes", "mib"),
        ("high-watermark crossings", "pressure.high_crossings", "count"),
    )
    width = max(len(label) for label, _, _ in headline)
    lines = [f"{title}:"]
    for label, key, kind in headline:
        value = extras.get(key, 0)
        if kind == "mib":
            rendered = f"{mib(value):.4g} MiB"
        else:
            rendered = str(int(value))
        lines.append(f"  {label.ljust(width)} = {rendered}")
    return "\n".join(lines)


def format_admission(extras: "dict[str, float]", title: str = "admission") -> str:
    """Render the migration admission controller's section of a run summary.

    Headline admit/deny/defer totals first (printed even when zero, so
    runs diff line by line), then every per-reason counter
    (``admission.denied.<reason>`` / ``admission.deferred.<reason>``) in
    sorted order.
    """
    headline = (
        ("admitted", "admission.admitted", "count"),
        ("admitted bytes", "admission.admitted_bytes", "mib"),
        ("denied bytes", "admission.denied_bytes", "mib"),
        ("deferred bytes", "admission.deferred_bytes", "mib"),
    )
    controller = extras.get("admission.controller")
    lines = [f"{title}:" if controller is None else f"{title} ({controller}):"]
    width = max(len(label) for label, _, _ in headline)
    for label, key, kind in headline:
        value = extras.get(key, 0)
        if kind == "mib":
            rendered = f"{mib(value):.4g} MiB"
        else:
            rendered = str(int(value))
        lines.append(f"  {label.ljust(width)} = {rendered}")
    reasons = sorted(
        key
        for key in extras
        if key.startswith(("admission.denied.", "admission.deferred."))
    )
    for key in reasons:
        lines.append(f"  {key.removeprefix('admission.')} = {int(extras[key])}")
    return "\n".join(lines)


def format_serve(report, title: str = "serving report") -> str:
    """Render a :class:`repro.serve.ServeReport` as a stable text block.

    Headline latency/goodput/SLO figures first, then every lifecycle
    counter in sorted order — zero-valued headline counters are printed
    too, so reports diff line by line across runs.
    """
    headline = [
        ("jobs", str(report.total_jobs)),
        ("completed", str(report.completed)),
        ("SLO met", str(report.slo_met)),
        ("SLO attainment", f"{report.slo_attainment:.1%}"),
        ("goodput (jobs/s)", f"{report.goodput:.4f}"),
        ("latency p50 (s)", f"{report.p50:.4f}"),
        ("latency p95 (s)", f"{report.p95:.4f}"),
        ("latency p99 (s)", f"{report.p99:.4f}"),
        ("latency mean (s)", f"{report.mean_latency:.4f}"),
        ("makespan (s)", f"{report.makespan:.4f}"),
        ("failure episodes", str(report.episodes)),
    ]
    always = (
        "serve.arrivals",
        "serve.admitted",
        "serve.shed",
        "serve.retry",
        "serve.expired",
        "serve.timeout",
        "serve.restart",
        "serve.failed",
    )
    counters = {key: report.counts.get(key, 0) for key in always}
    counters.update(report.counts)
    rows = headline + [
        (key, str(value)) for key, value in sorted(counters.items())
    ]
    return format_table(("metric", "value"), rows, title=title)


def format_insight(report, top: int = 10, title: str = "tensor insight") -> str:
    """Render an insight artifact dict as a stable text block.

    Headline totals first (episodes, migration traffic, ping-pong and
    wasted-prefetch damage), then the top-``top`` tensors by migrated
    bytes — the text twin of :func:`repro.obs.render_insight_html`.
    """
    tensors = report.get("tensors", [])
    totals = report.get("totals", {})
    pingpong_events = sum(row["pingpong"] for row in tensors)
    pingpong_tensors = sum(1 for row in tensors if row["pingpong"])
    wasted = sum(row["wasted_prefetch_bytes"] for row in tensors)
    stalled = sum(row.get("stall", 0.0) for row in tensors)
    headline = [
        ("tensor episodes", str(len(tensors))),
        ("occupancy samples", str(len(report.get("occupancy", [])))),
        ("migration events", str(len(report.get("migrations", [])))),
        ("promoted (MiB)", f"{mib(totals.get('promote_bytes', 0)):.4g}"),
        ("demoted (MiB)", f"{mib(totals.get('demote_bytes', 0)):.4g}"),
        ("ping-pong events", str(pingpong_events)),
        ("ping-pong tensors", str(pingpong_tensors)),
        ("wasted prefetch (MiB)", f"{mib(wasted):.4g}"),
    ]
    if stalled:
        headline.append(("attributed stall (s)", f"{stalled:.4f}"))
    parts = [format_table(("metric", "value"), headline, title=title)]
    ranked = sorted(
        tensors,
        key=lambda row: (
            -row["migrated_bytes"],
            -row["bytes_touched"],
            row["scope"],
            row["tid"],
            row["episode"],
        ),
    )[:top]
    if ranked:
        rows = []
        for row in ranked:
            label = f"{row['name']}#{row['tid']}"
            if row["episode"]:
                label += f".{row['episode']}"
            if row["scope"] != "main":
                label = f"{row['scope']}/{label}"
            rows.append(
                (
                    label,
                    f"{mib(row['nbytes']):.4g}",
                    str(row["accesses"]),
                    f"{mib(row['migrated_bytes']):.4g}",
                    f"{row['thrash']:.3g}",
                    str(row["pingpong"]),
                    f"{mib(row['wasted_prefetch_bytes']):.4g}",
                )
            )
        parts.append(
            format_table(
                (
                    "tensor",
                    "size (MiB)",
                    "accesses",
                    "migrated (MiB)",
                    "thrash",
                    "pingpong",
                    "wasted (MiB)",
                ),
                rows,
                title=f"top {len(ranked)} tensors by migrated bytes",
            )
        )
    serve = report.get("serve")
    if serve is not None:
        rows = [
            (
                f"{window['t0']:.3f}-{window['t1']:.3f}",
                str(window["jobs"]),
                str(window["ok"]),
                "-" if window["attainment"] is None else f"{window['attainment']:.1%}",
                "-" if window["burn"] is None else f"{window['burn']:.2f}",
                "ALERT" if window["alert"] else "",
            )
            for window in serve["windows"]
        ]
        parts.append(
            format_table(
                ("window (s)", "jobs", "ok", "attainment", "burn", "alert"),
                rows,
                title=f"SLO burn (objective {serve['objective']:.0%})",
            )
        )
    return "\n\n".join(parts)


def format_summary(metrics) -> str:
    """Render one run's headline metrics, with a pressure section when
    the run carried a governor (``pressure.*`` keys in its extras) and an
    admission section when it carried a migration admission controller
    (``admission.*`` keys)."""
    rows = [
        ("model", metrics.model),
        ("policy", metrics.policy),
        ("batch size", metrics.batch_size),
        ("fast capacity (MiB)", f"{mib(metrics.fast_capacity):.1f}"),
        ("step time (s)", f"{metrics.step_time:.4f}"),
        ("throughput (samples/s)", f"{metrics.throughput:.2f}"),
        ("compute time (s)", f"{metrics.compute_time:.4f}"),
        ("memory time (s)", f"{metrics.mem_time:.4f}"),
        ("stall time (s)", f"{metrics.stall_time:.4f}"),
        ("fault time (s)", f"{metrics.fault_time:.4f}"),
        ("promoted (MiB)", f"{mib(metrics.promoted_bytes):.1f}"),
        ("demoted (MiB)", f"{mib(metrics.demoted_bytes):.1f}"),
        ("peak fast (MiB)", f"{mib(metrics.peak_fast):.1f}"),
        ("peak slow (MiB)", f"{mib(metrics.peak_slow):.1f}"),
    ]
    parts = [format_table(("metric", "value"), rows)]
    if any(key.startswith("pressure.") for key in metrics.extras):
        parts.append(format_pressure(metrics.extras))
    if any(key.startswith("admission.") for key in metrics.extras):
        parts.append(format_admission(metrics.extras))
    return "\n\n".join(parts)


def jsonable(value: object):
    """Recursively convert experiment results to JSON-serializable data.

    Dataclasses become dicts, tuples become lists, non-string dict keys are
    stringified, and anything exotic (profiles, graphs) falls back to repr.
    """
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def mib(nbytes: float) -> float:
    """Bytes to MiB, for table cells."""
    return nbytes / (1024.0**2)


def gib(nbytes: float) -> float:
    """Bytes to GiB, for table cells."""
    return nbytes / (1024.0**3)
