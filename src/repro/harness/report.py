"""Plain-text rendering of experiment results.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, points: Sequence[Tuple[object, float]], unit: str = ""
) -> str:
    """Render an (x, y) series as the figure data it regenerates."""
    lines = [f"{name}{f' ({unit})' if unit else ''}:"]
    for x, y in points:
        lines.append(f"  {_cell(x):>12} -> {y:.4g}")
    return "\n".join(lines)


def format_bars(
    name: str,
    points: Sequence[Tuple[object, float]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render an (label, value) series as a horizontal ASCII bar chart.

    The figure-regenerating benchmarks use this for quick visual shape
    checks in the saved text outputs.
    """
    if not points:
        return f"{name}: (no data)"
    peak = max(value for _, value in points)
    scale = (width / peak) if peak > 0 else 0.0
    label_width = max(len(_cell(label)) for label, _ in points)
    lines = [f"{name}{f' ({unit})' if unit else ''}:"]
    for label, value in points:
        bar = "#" * max(0, round(value * scale))
        lines.append(f"  {_cell(label):>{label_width}} | {bar} {value:.4g}")
    return "\n".join(lines)


def format_counters(
    counters: "dict[str, float]", title: str = "counters", indent: int = 2
) -> str:
    """Render a counter snapshot (e.g. retry/fallback/chaos counts).

    Keys are sorted so the output is stable across runs; integral values
    print without a decimal point.
    """
    pad = " " * indent
    lines = [f"{title}:"]
    if not counters:
        lines.append(f"{pad}(none)")
        return "\n".join(lines)
    width = max(len(name) for name in counters)
    for name in sorted(counters):
        value = counters[name]
        if isinstance(value, float) and value.is_integer():
            rendered = str(int(value))
        else:
            rendered = _cell(value)
        lines.append(f"{pad}{name.ljust(width)} = {rendered}")
    return "\n".join(lines)


def format_trace_summary(events, title: str = "trace summary") -> str:
    """Render a per-category digest of a structured event trace.

    One row per :mod:`repro.obs` category present in ``events``: event
    count, closed span count, total busy (span) time, and total ``nbytes``
    moved by that category's events — the at-a-glance companion to loading
    the full Chrome export in Perfetto.
    """
    from repro.obs.query import TraceQuery

    events = list(events)
    query = TraceQuery(events)
    rows = []
    for cat in sorted(query.categories()):
        sub = query.filter(cat=cat)
        spans = query.spans(cat=cat)
        busy = sum(span.duration for span in spans)
        moved = TraceQuery(sub).sum_arg("nbytes")
        rows.append(
            (
                cat,
                len(sub),
                len(spans),
                f"{busy:.4g}",
                f"{mib(moved):.4g}" if moved else "0",
            )
        )
    if not rows:
        return f"{title}: (no events)"
    table = format_table(
        ("category", "events", "spans", "busy (s)", "moved (MiB)"),
        rows,
        title=title,
    )
    tracks = ", ".join(sorted(query.tracks()))
    return f"{table}\ntracks: {tracks}"


def jsonable(value: object):
    """Recursively convert experiment results to JSON-serializable data.

    Dataclasses become dicts, tuples become lists, non-string dict keys are
    stringified, and anything exotic (profiles, graphs) falls back to repr.
    """
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def mib(nbytes: float) -> float:
    """Bytes to MiB, for table cells."""
    return nbytes / (1024.0**2)


def gib(nbytes: float) -> float:
    """Bytes to GiB, for table cells."""
    return nbytes / (1024.0**3)
