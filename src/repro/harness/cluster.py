"""Multi-workload co-scheduling on one heterogeneous-memory machine.

The single-workload harness (:func:`repro.harness.runner.run_policy`) is
exact but solitary: one executor owns the clock, so nothing else can
compete for the machine.  This module co-schedules N training workloads on
*one* :class:`~repro.mem.machine.Machine` via the discrete-event engine:
every executor's step body runs as an engine process on a shared timeline,
so the workloads contend for the same promote/demote/demand channels
(FIFO queueing pushes each other's transfers back) and the same fast-tier
capacity (guarded by a pressure governor so co-tenants spill instead of
crashing).

Contention is emergent, not modelled: a transfer submitted while another
workload's copy occupies the channel simply starts later
(``start = max(now, next_free)``), which lengthens prefetch arrival times,
Case-3 waits, and demand stalls exactly the way a shared PCIe link or
migration thread would.

Known attribution artifacts of sharing one machine (documented, asserted
in tests, and the reason the cluster report carries machine-global
aggregates):

* per-step ``promoted_bytes``/``demoted_bytes`` in each workload's
  :class:`~repro.dnn.executor.StepResult` are deltas of machine-global
  counters, so traffic from a co-tenant active during the step is
  attributed to it too;
* two Sentinel instances profiling in overlapping steps poison PTEs
  machine-wide, so profiling-phase fault counts can include cross-tenant
  noise — stagger profiling (different ``warmup_steps``) when that
  matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.runtime import SentinelConfig, SentinelPolicy
from repro.dnn.executor import Executor, StepResult
from repro.dnn.graph import Graph
from repro.harness.runner import STEADY_STEPS, _sentinel_config, make_policy
from repro.mem.machine import Machine
from repro.mem.platforms import Platform
from repro.mem.pressure import PressureConfig
from repro.models.zoo import build_model
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import EventTracer

__all__ = ["WorkloadSpec", "WorkloadReport", "ClusterReport", "run_concurrent"]

#: Default governor for machines built by :func:`run_concurrent`: shared
#: capacity makes fast-tier exhaustion the normal operating point, so
#: co-tenants must spill to slow memory instead of raising DeviceFullError.
DEFAULT_CLUSTER_PRESSURE = PressureConfig.watermarks(low=0.85, high=0.95)

#: Sentinel marker for "caller did not pass pressure=".
_UNSET = object()


@dataclass
class WorkloadSpec:
    """One tenant of a concurrent run.

    Exactly one of ``model`` or ``graph`` must be given.  ``steps`` counts
    *steady* steps; Sentinel policies additionally run their warm-up and
    profiling steps first, mirroring the single-workload harness.
    """

    name: str
    model: Optional[str] = None
    graph: Optional[Graph] = None
    policy: str = "sentinel"
    batch_size: Optional[int] = None
    scale: str = "small"
    steps: int = STEADY_STEPS
    sentinel_config: Optional[SentinelConfig] = None

    def __post_init__(self) -> None:
        if (self.graph is None) == (self.model is None):
            raise ValueError(
                f"workload {self.name!r}: provide exactly one of model= or graph="
            )
        if self.steps <= 0:
            raise ValueError(
                f"workload {self.name!r}: steps must be positive, got {self.steps!r}"
            )

    def build_graph(self) -> Graph:
        if self.graph is not None:
            return self.graph
        return build_model(self.model, batch_size=self.batch_size, scale=self.scale)


@dataclass
class WorkloadReport:
    """Per-workload outcome of a concurrent run."""

    name: str
    policy: str
    results: List[StepResult] = field(default_factory=list)

    @property
    def steps(self) -> int:
        return len(self.results)

    @property
    def total_time(self) -> float:
        """Wall-span from this workload's first step start to last step end."""
        if not self.results:
            return 0.0
        return self.results[-1].end_time - self.results[0].start_time

    @property
    def mean_step_time(self) -> float:
        return self.total_time / len(self.results) if self.results else 0.0

    @property
    def steady_step_time(self) -> float:
        """Duration of the final step (managed-phase steady state)."""
        return self.results[-1].duration if self.results else 0.0

    @property
    def steps_per_second(self) -> float:
        return len(self.results) / self.total_time if self.total_time > 0 else 0.0


@dataclass
class ClusterReport:
    """Aggregate outcome of a concurrent run."""

    workloads: List[WorkloadReport]
    makespan: float
    #: machine-global migration traffic across the whole run
    promoted_bytes: int
    demoted_bytes: int
    #: per-channel busy seconds and mean queueing delay — the direct
    #: evidence of contention (isolated runs queue ~0 behind themselves)
    channel_busy: Dict[str, float]
    channel_queue_delay: Dict[str, float]

    @property
    def aggregate_steps_per_second(self) -> float:
        """Total step throughput of the machine."""
        if self.makespan <= 0:
            return 0.0
        return sum(w.steps for w in self.workloads) / self.makespan

    @property
    def fairness(self) -> float:
        """Jain's fairness index over per-workload step rates.

        1.0 means every tenant progressed at the same steps/second; 1/N is
        total starvation of all but one.
        """
        rates = [w.steps_per_second for w in self.workloads]
        total = sum(rates)
        if total <= 0:
            return 0.0
        square_sum = sum(r * r for r in rates)
        return (total * total) / (len(rates) * square_sum)

    def workload(self, name: str) -> WorkloadReport:
        for report in self.workloads:
            if report.name == name:
                return report
        raise KeyError(f"no workload named {name!r}")


def _total_steps(spec: WorkloadSpec, policy) -> int:
    steps = spec.steps
    if isinstance(policy, SentinelPolicy):
        steps += policy.config.warmup_steps + 1
    return steps


def _drive(
    executor: Executor,
    steps: int,
    report: WorkloadReport,
    tracer: Optional["EventTracer"],
):
    """Workload driver process: run ``steps`` training steps back to back."""
    for _ in range(steps):
        result = yield from executor.step_process()
        report.results.append(result)
        if tracer is not None:
            tracer.instant(
                "workload-step",
                "cluster",
                ts=result.end_time,
                track=report.name,
                step=result.step,
                duration=result.duration,
            )


def run_concurrent(
    workloads: Sequence[WorkloadSpec],
    machine: Optional[Machine] = None,
    platform: Optional[Platform] = None,
    fast_fraction: Optional[float] = None,
    fast_capacity: Optional[int] = None,
    pressure=_UNSET,
    tracer: Optional["EventTracer"] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> ClusterReport:
    """Co-schedule ``workloads`` on one machine and return the outcome.

    Args:
        workloads: two or more (one is legal — it degenerates to the
            single-workload engine path) tenant specs with unique names.
        machine: run on an existing machine; otherwise one is built from
            ``platform`` (default: the Optane platform).
        fast_fraction: size fast memory as this fraction of the *combined*
            peak packed consumption of all workload graphs — the shared
            pool analogue of the paper's 20%-of-peak convention.
        fast_capacity: explicit fast-tier bytes (wins over the fraction).
        pressure: a :class:`~repro.mem.pressure.PressureConfig` for the
            built machine.  Defaults to :data:`DEFAULT_CLUSTER_PRESSURE`
            (spill-to-slow watermarks) because co-tenants sharing a small
            fast tier would otherwise die on ``DeviceFullError``; pass
            ``None`` explicitly for a governor-free machine.  Ignored when
            ``machine`` is supplied.
        tracer: optional event tracer; workload step/layer spans land on
            per-workload tracks and each step completion emits a
            ``cluster``-category instant.
        metrics: optional metrics registry for the built machine.

    Returns:
        A :class:`ClusterReport` with per-workload
        :class:`~repro.dnn.executor.StepResult` streams and machine-wide
        contention/fairness aggregates.
    """
    specs = list(workloads)
    if not specs:
        raise ValueError("run_concurrent needs at least one workload")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(
            f"workload names must be unique, got duplicates {duplicates!r} "
            f"in {names!r} — give each WorkloadSpec its own name"
        )
    for spec in specs:
        # WorkloadSpec is mutable; re-check here so a spec edited after
        # construction still fails loudly instead of hanging the engine.
        if spec.steps <= 0:
            raise ValueError(
                f"workload {spec.name!r}: steps must be positive, got "
                f"{spec.steps!r}"
            )

    graphs = [spec.build_graph() for spec in specs]
    for spec, graph in zip(specs, graphs):
        if not graph.layers:
            raise ValueError(
                f"workload {spec.name!r}: graph has no layers — nothing to "
                f"execute (build_model output or a hand-built Graph must "
                f"contain at least one layer)"
            )
    if machine is None:
        if platform is None:
            from repro.mem.platforms import OPTANE_HM

            platform = OPTANE_HM
        if fast_capacity is None and fast_fraction is not None:
            if fast_fraction <= 0:
                raise ValueError(
                    f"fast fraction must be positive: {fast_fraction!r}"
                )
            combined_peak = sum(graph.peak_memory_bytes() for graph in graphs)
            fast_capacity = max(
                platform.page_size, int(combined_peak * fast_fraction)
            )
        config = DEFAULT_CLUSTER_PRESSURE if pressure is _UNSET else pressure
        machine = Machine.for_platform(
            platform,
            fast_capacity=fast_capacity,
            tracer=tracer,
            pressure=config,
            metrics=metrics,
        )
    elif tracer is not None and machine.tracer is None:
        raise ValueError(
            "pass the tracer to the Machine when supplying one explicitly"
        )

    engine = Engine()
    promoted0 = machine.stats.counter("migration.promoted_bytes").value
    demoted0 = machine.stats.counter("migration.demoted_bytes").value

    reports: List[WorkloadReport] = []
    start = engine.now
    for spec, graph in zip(specs, graphs):
        policy = make_policy(
            spec.policy, sentinel_config=_sentinel_config(spec.sentinel_config)
        )
        executor = Executor(
            graph, machine, policy, engine=engine, track=spec.name
        )
        report = WorkloadReport(name=spec.name, policy=spec.policy)
        reports.append(report)
        engine.process(
            _drive(executor, _total_steps(spec, policy), report, machine.tracer),
            name=spec.name,
        )
    engine.run()
    engine.ensure_quiescent()

    channels = (
        machine.promote_channel,
        machine.demote_channel,
        machine.demand_channel,
    )
    channel_busy = {ch.name: ch.busy_time for ch in channels}
    channel_queue_delay = {}
    for ch in channels:
        delays = [t.start - t.submitted for t in ch.history]
        channel_queue_delay[ch.name] = (
            sum(delays) / len(delays) if delays else 0.0
        )

    return ClusterReport(
        workloads=reports,
        makespan=engine.now - start,
        promoted_bytes=int(
            machine.stats.counter("migration.promoted_bytes").value - promoted0
        ),
        demoted_bytes=int(
            machine.stats.counter("migration.demoted_bytes").value - demoted0
        ),
        channel_busy=channel_busy,
        channel_queue_delay=channel_queue_delay,
    )
