"""Single-experiment orchestration.

:func:`run_policy` is the workhorse: build a machine sized for the
experiment (the paper's "fast memory = X% of the model's peak consumption"),
attach a policy, run enough steps to pass Sentinel's warm-up/profiling/trial
phases, and measure the steady state.

:func:`max_batch_size` reproduces Table V's methodology: largest batch a
policy can train given fixed device memory, found by exponential probe +
binary search on "does a training step complete without running out of
memory".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.baselines.registry import make_policy
from repro.baselines.vdnn import UnsupportedModelError
from repro.chaos import CapacityShrinker, ChaosConfig, FaultInjector, InvariantAuditor
from repro.core.runtime import SentinelConfig, SentinelPolicy
from repro.dnn.executor import Executor
from repro.dnn.graph import Graph
from repro.errors import MemoryPressureError
from repro.mem.admission import make_admission
from repro.mem.machine import Machine
from repro.mem.platforms import Platform
from repro.mem.pressure import PressureConfig
from repro.mem.ras import RASConfig
from repro.models.zoo import build_model

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.insight import InsightCollector
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import EventTracer

#: Warm-up steps for experiments: Sentinel's behaviour before profiling is
#: policy-free (slow placement), so two steps are enough to exercise the
#: phase machinery without inflating simulation time.  The paper's 10 are
#: TensorFlow hardware-detection steps with no memory-management role.
EXPERIMENT_WARMUP_STEPS = 2

#: Steps run after the managed phase begins, the last of which is measured.
STEADY_STEPS = 4


@dataclass
class RunMetrics:
    """Steady-state measurements of one (model, policy, machine) run."""

    model: str
    policy: str
    batch_size: int
    fast_capacity: int
    step_time: float
    throughput: float  # samples / second
    compute_time: float
    mem_time: float
    stall_time: float
    fault_time: float
    promoted_bytes: int
    demoted_bytes: int
    bytes_fast: int
    bytes_slow: int
    peak_fast: int
    peak_slow: int
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def migrated_bytes(self) -> int:
        return self.promoted_bytes + self.demoted_bytes


def _sentinel_config(overrides: Optional[SentinelConfig]) -> SentinelConfig:
    if overrides is not None:
        return overrides
    return SentinelConfig(warmup_steps=EXPERIMENT_WARMUP_STEPS)


def run_policy(
    policy_name: str,
    graph: Optional[Graph] = None,
    model: Optional[str] = None,
    batch_size: Optional[int] = None,
    scale: str = "small",
    platform: Optional[Platform] = None,
    fast_fraction: Optional[float] = None,
    fast_capacity: Optional[int] = None,
    steady_steps: int = STEADY_STEPS,
    sentinel_config: Optional[SentinelConfig] = None,
    chaos: Optional[ChaosConfig] = None,
    audit: bool = False,
    tracer: Optional["EventTracer"] = None,
    pressure: Optional[PressureConfig] = None,
    metrics: Optional["MetricsRegistry"] = None,
    ras: Optional[RASConfig] = None,
    insight: Optional["InsightCollector"] = None,
    admission: Optional[object] = None,
    admission_args: Optional[Dict[str, object]] = None,
) -> RunMetrics:
    """Run one policy on one workload and return steady-state metrics.

    Exactly one of ``graph`` or ``model`` must be given.  Fast memory is
    sized by ``fast_capacity`` (bytes), ``fast_fraction`` (of the graph's
    peak packed consumption — the paper's convention), or left at the
    platform's full size.

    ``chaos`` attaches a seeded :class:`~repro.chaos.FaultInjector` to the
    machine (deterministic fault injection; ``None`` leaves the fault-free
    code paths untouched).  ``audit`` adds the per-step
    :class:`~repro.chaos.InvariantAuditor`, which raises
    :class:`~repro.errors.ConsistencyError` the moment memory accounting
    stops balancing.

    ``tracer`` attaches a :class:`repro.obs.EventTracer` to the machine so
    the whole run lands in a structured event trace; ``None`` (the default)
    keeps every traced code path dormant and the metrics bit-identical to
    untraced runs.

    ``pressure`` attaches a :class:`~repro.mem.pressure.PressureGovernor`
    (watermark admission control, spill-to-slow, arena compaction); the
    default ``None`` — or a config with watermarks at 100% and no reserve —
    leaves the run byte-identical to a governor-free machine.

    ``metrics`` attaches a :class:`repro.obs.metrics.MetricsRegistry` as
    the machine's stats registry, unlocking the detailed sampling sites
    (histograms, occupancy series) across the substrate; the default
    ``None`` keeps them dormant and the run byte-identical to un-metered
    builds.

    ``ras`` attaches a :class:`~repro.mem.ras.RasEngine` (seeded CE/UE
    injection, patrol scrubbing, page retirement, tensor recovery); the
    default ``None`` — or a config with all rates zero — leaves the run
    byte-identical to a pre-RAS machine.

    ``insight`` attaches a :class:`repro.obs.insight.InsightCollector`
    (per-tensor residency timelines, heat/churn analytics); the run
    finalizes the collector so :meth:`~repro.obs.insight.InsightCollector.report`
    is ready afterwards.  The default ``None`` keeps every hook dormant and
    the run — including any attached tracer/metrics — byte-identical to an
    insight-free build.

    ``admission`` attaches a migration admission controller to the
    machine: either a registered name (``"always"``, ``"benefit-cost"``,
    ``"feedback"``) built fresh per run with ``admission_args`` as
    constructor kwargs, or an already-constructed
    :class:`~repro.mem.admission.AdmissionController` instance.  The
    default ``None`` keeps both engine gate sites dormant; ``"always"``
    admits everything and leaves traces and metrics byte-identical to
    ``None`` (admission counters land in extras only when a controller is
    attached).
    """
    if (graph is None) == (model is None):
        raise ValueError("provide exactly one of graph= or model=")
    if graph is None:
        graph = build_model(model, batch_size=batch_size, scale=scale)
    if platform is None:
        from repro.mem.platforms import OPTANE_HM

        platform = OPTANE_HM
    if fast_capacity is None and fast_fraction is not None:
        if not 0 < fast_fraction:
            raise ValueError(f"fast fraction must be positive: {fast_fraction!r}")
        fast_capacity = max(
            platform.page_size, int(graph.peak_memory_bytes() * fast_fraction)
        )
    controller = admission
    if isinstance(admission, str):
        controller = make_admission(admission, **(admission_args or {}))
    elif admission_args:
        raise ValueError("admission_args= requires admission= to be a name")
    injector = FaultInjector(chaos) if chaos is not None else None
    machine = Machine.for_platform(
        platform,
        fast_capacity=fast_capacity,
        injector=injector,
        tracer=tracer,
        pressure=pressure,
        metrics=metrics,
        ras=ras,
        insight=insight,
        admission=controller,
    )

    policy = make_policy(policy_name, sentinel_config=_sentinel_config(sentinel_config))
    observers = []
    if injector is not None and chaos.capacity_shrink_rate > 0.0:
        observers.append(CapacityShrinker(machine, injector))
    if audit:
        observers.append(InvariantAuditor(machine))
    insight_scope = None
    if insight is not None:
        insight_scope = insight.scope("main")
        observers.append(insight_scope)
    executor = Executor(
        graph, machine, policy, observers=observers, tracer=insight_scope
    )

    total_steps = steady_steps
    if isinstance(policy, SentinelPolicy):
        total_steps += policy.config.warmup_steps + 1
    results = executor.run_steps(total_steps)
    last = results[-1]
    if insight is not None:
        insight.finalize(executor.clock.now)

    extras: Dict[str, float] = {}
    if isinstance(policy, SentinelPolicy):
        extras["profiling_steps"] = policy.profiling_steps_used
        extras["trial_steps"] = policy.trial_steps_used
        extras["case2"] = policy.case2_occurrences
        extras["case3"] = policy.case3_occurrences
        extras["prefetch_landed_bytes"] = policy.prefetch_landed_bytes
        if chaos is not None:
            extras["reprofile_steps"] = policy.reprofile_steps_used
            extras["case3_fallbacks"] = policy.case3_fallbacks
        if policy.plan is not None:
            extras["interval_length"] = policy.plan.interval_length
            extras["reserved_short_bytes"] = policy.plan.reserved_short_bytes
        if policy.profile is not None:
            extras["profiling_step_time"] = results[
                policy.config.warmup_steps
            ].duration
            extras["memory_overhead"] = policy.profile.memory_overhead
    recompute = getattr(policy, "recompute_time", None)
    if recompute is not None:
        extras["recompute_time"] = recompute
    if chaos is not None:
        # Surface the degradation machinery's counters next to the injected
        # event counts.  Only when chaos is active: a chaos-free run's
        # metrics stay bit-identical to runs predating fault injection.
        extras["migration_retries"] = machine.stats.counter(
            "migration.retries"
        ).value
        extras["busy_fallbacks"] = machine.stats.counter(
            "migration.busy_fallbacks"
        ).value
        extras["aborted_bytes"] = machine.stats.counter(
            "migration.aborted_bytes"
        ).value
        extras["faults_dropped"] = machine.fault_handler.faults_dropped
        for key, count in sorted(injector.counts.items()):
            extras[key] = count
    if machine.pressure is not None:
        # Only with an enabled governor: pressure-free runs keep metrics
        # bit-identical to runs predating the governor.
        for key, value in sorted(machine.stats.counters("pressure.").items()):
            extras[key] = value
        extras["migration.relocated_bytes"] = machine.stats.counter(
            "migration.relocated_bytes"
        ).value
    if machine.ras is not None:
        # Only with an enabled RAS engine: RAS-free runs keep metrics
        # bit-identical to runs predating the subsystem.
        for key, count in sorted(machine.ras.counts.items()):
            extras[key] = count
        extras["ras.remat_bytes"] = machine.ras.remat_bytes
        extras["ras.remat_time"] = machine.ras.remat_time
        extras["ras.refetch_time"] = machine.ras.refetch_time
        extras["ras.scrub_swept_bytes"] = machine.ras.scrub_swept_bytes
    if machine.admission is not None:
        # Only with a controller attached: admission-free runs keep metrics
        # bit-identical to runs predating the subsystem.
        extras["admission.controller"] = machine.admission.name
        for key, value in sorted(machine.stats.counters("admission.").items()):
            extras[key] = value
    if insight is not None:
        # Only with a collector attached: insight-free runs keep metrics
        # bit-identical to runs predating the subsystem.
        extras.update(insight.summary())

    return RunMetrics(
        model=graph.name,
        policy=policy_name,
        batch_size=graph.batch_size,
        fast_capacity=machine.fast.capacity,
        step_time=last.duration,
        throughput=graph.batch_size / last.duration if last.duration > 0 else 0.0,
        compute_time=last.compute_time,
        mem_time=last.mem_time,
        stall_time=last.stall_time,
        fault_time=last.fault_time,
        promoted_bytes=last.promoted_bytes,
        demoted_bytes=last.demoted_bytes,
        bytes_fast=last.bytes_fast,
        bytes_slow=last.bytes_slow,
        peak_fast=last.peak_fast,
        peak_slow=last.peak_slow,
        extras=extras,
    )


#: The "ran out of memory" branch of the exception hierarchy: feasibility
#: probes treat it as infeasible-not-broken.  One base class instead of an
#: enumerated tuple, so new capacity-wall errors are covered automatically.
OOM_ERRORS = (MemoryPressureError,)


def batch_feasible(
    policy_name: str,
    model: str,
    batch_size: int,
    platform: Platform,
    sentinel_config: Optional[SentinelConfig] = None,
) -> bool:
    """Whether one training step completes without running out of memory."""
    try:
        run_policy(
            policy_name,
            model=model,
            batch_size=batch_size,
            platform=platform,
            steady_steps=1,
            sentinel_config=sentinel_config,
        )
        return True
    except OOM_ERRORS:
        return False


def max_batch_size(
    policy_name: str,
    model: str,
    platform: Platform,
    start: int = 1,
    limit: int = 1 << 16,
    sentinel_config: Optional[SentinelConfig] = None,
) -> int:
    """Largest feasible batch size (Table V's metric); 0 if even ``start``
    fails, raising :class:`UnsupportedModelError` through for policies whose
    domain knowledge rejects the model outright (vDNN on recurrent graphs).
    """
    if not batch_feasible(policy_name, model, start, platform, sentinel_config):
        return 0
    low = start
    high = start
    while high < limit and batch_feasible(
        policy_name, model, high * 2, platform, sentinel_config
    ):
        low = high * 2
        high = low
    high = min(limit, high * 2)
    # Binary search in (low, high): low is feasible, high is not (or limit).
    while low + 1 < high:
        mid = (low + high) // 2
        if batch_feasible(policy_name, model, mid, platform, sentinel_config):
            low = mid
        else:
            high = mid
    return low
