"""Experiment harness: run (model x policy x platform) and report.

* :mod:`repro.harness.runner` — single-run orchestration and the
  maximum-batch-size search.
* :mod:`repro.harness.report` — plain-text tables/series matching the
  paper's figures and tables.
* :mod:`repro.harness.experiments` — one entry point per paper artifact
  (Figure 5..13, Table III..V); the benchmarks are thin wrappers over these.
* :mod:`repro.harness.cluster` — multi-workload co-scheduling on one
  machine via the discrete-event engine.
"""

from repro.harness.runner import RunMetrics, max_batch_size, run_policy
from repro.harness.report import format_bars, format_series, format_table, jsonable
from repro.harness.sweeps import SweepPoint, SweepResult, sweep
from repro.harness.cluster import (
    ClusterReport,
    WorkloadReport,
    WorkloadSpec,
    run_concurrent,
)

__all__ = [
    "RunMetrics",
    "run_policy",
    "max_batch_size",
    "run_concurrent",
    "WorkloadSpec",
    "WorkloadReport",
    "ClusterReport",
    "format_table",
    "format_series",
    "format_bars",
    "jsonable",
    "sweep",
    "SweepResult",
    "SweepPoint",
]
