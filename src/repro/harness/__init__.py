"""Experiment harness: run (model x policy x platform) and report.

* :mod:`repro.harness.runner` — single-run orchestration and the
  maximum-batch-size search.
* :mod:`repro.harness.report` — plain-text tables/series matching the
  paper's figures and tables.
* :mod:`repro.harness.experiments` — one entry point per paper artifact
  (Figure 5..13, Table III..V); the benchmarks are thin wrappers over these.
"""

from repro.harness.runner import RunMetrics, max_batch_size, run_policy
from repro.harness.report import format_bars, format_series, format_table, jsonable
from repro.harness.sweeps import SweepPoint, SweepResult, sweep

__all__ = [
    "RunMetrics",
    "run_policy",
    "max_batch_size",
    "format_table",
    "format_series",
    "format_bars",
    "jsonable",
    "sweep",
    "SweepResult",
    "SweepPoint",
]
