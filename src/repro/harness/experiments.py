"""One entry point per paper artifact (Figures 5-13, Tables III-V, Obs. 1-3).

Each function runs the relevant simulations and returns a plain dict of
rows/series plus a pre-rendered ``text`` block printing the same quantities
the paper reports.  The benchmark suite under ``benchmarks/`` is a thin
wrapper over these, so experiments are equally usable from a notebook, a
script, or pytest.

Absolute numbers come from the simulated platforms and are not expected to
match the authors' testbed; the *shapes* (who wins, by roughly what factor,
where crossovers fall) are the reproduction target.  EXPERIMENTS.md records
paper-vs-measured for every entry here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.vdnn import UnsupportedModelError
from repro.chaos import ChaosConfig
from repro.core.profiler import DynamicProfiler
from repro.core.runtime import SentinelConfig
from repro.dnn.executor import Executor
from repro.dnn.policy import PlacementPolicy
from repro.harness.report import format_series, format_table, gib, mib
from repro.harness.runner import (
    EXPERIMENT_WARMUP_STEPS,
    RunMetrics,
    max_batch_size,
    run_policy,
)
from repro.harness.sweeps import point_seed, sweep
from repro.mem.machine import Machine
from repro.mem.platforms import GPU_HM, OPTANE_HM, Platform
from repro.mem.pressure import PressureConfig
from repro.mem.ras import RASConfig
from repro.models.zoo import MODELS, build_model

#: CPU evaluation sets (paper §VII-B): small batches for Figure 7/10,
#: large batches for Figure 8.
CPU_SMALL_MODELS = ("resnet32", "bert-base", "lstm", "mobilenet", "dcgan")
CPU_LARGE_MODELS = ("resnet200", "bert-large", "lstm", "mobilenet", "dcgan")

#: Fast-memory size for the large-batch CPU runs (Figure 8): a fixed DRAM
#: that the big models' peaks exceed and LSTM's does not, mirroring the
#: paper's fixed-DRAM machine.
FIG8_DRAM_BYTES = 8 * 1024**3

#: GPU evaluation batch triples (Figure 12): smallest fits comfortably in
#: the 16 GB device, the largest exceeds it.
GPU_BATCHES: Dict[str, Tuple[int, int, int]] = {
    "resnet200": (16, 32, 48),
    "bert-large": (8, 16, 24),
    "lstm": (4096, 8192, 12288),
    "mobilenet": (128, 256, 512),
    "dcgan": (1024, 2048, 4096),
}

GPU_MODELS = tuple(GPU_BATCHES)

SENTINEL_CPU = "sentinel"
SENTINEL_GPU = "sentinel-gpu"


def _cfg(**overrides) -> SentinelConfig:
    return SentinelConfig(warmup_steps=EXPERIMENT_WARMUP_STEPS, **overrides)


# ------------------------------------------------------- pooled experiments

#: Marker for grid points whose policy cannot run the model (Table V /
#: Figure 12 record these as misses rather than failing the experiment).
_UNSUPPORTED = "__unsupported__"


def _indexed(func, item):
    index, payload = item
    return index, func(payload)


def _pooled(func, payloads: Sequence, workers: int) -> List:
    """Order-preserving parallel map for the figure experiments.

    Same determinism contract as :func:`repro.harness.sweeps.sweep`:
    every payload is an isolated simulation, workers mirror the parent's
    scalar/vectorized accounting flag, and results merge back in
    enumeration order — so ``workers > 1`` is byte-identical to serial.
    ``func`` must be a module-level function (the pool pickles it).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    payloads = list(payloads)
    if workers == 1 or len(payloads) <= 1:
        return [func(payload) for payload in payloads]

    import multiprocessing
    from functools import partial

    from repro import accel
    from repro.harness.sweeps import _init_worker

    merged: List = [None] * len(payloads)
    ctx = multiprocessing.get_context()
    with ctx.Pool(
        processes=min(workers, len(payloads)),
        initializer=_init_worker,
        initargs=(accel.scalar_enabled(),),
    ) as pool:
        for index, value in pool.imap_unordered(
            partial(_indexed, func), list(enumerate(payloads))
        ):
            merged[index] = value
    return merged


def _run_policy_task(kwargs: Dict) -> object:
    """One :func:`run_policy` call; unsupported combos become a marker."""
    try:
        return run_policy(**kwargs)
    except UnsupportedModelError:
        return _UNSUPPORTED


def _max_batch_task(kwargs: Dict) -> object:
    """One :func:`max_batch_size` probe; unsupported combos become a marker."""
    try:
        return max_batch_size(**kwargs)
    except UnsupportedModelError:
        return _UNSUPPORTED


# --------------------------------------------------------------------- E1

def characterization(model: str = "resnet32", batch_size: Optional[int] = None) -> Dict:
    """Observations 1-3 (§III-B): tensor population, hot/cold split, and
    page-level false sharing, measured by the dynamic profiler."""
    graph = build_model(model, batch_size=batch_size)
    profiling = DynamicProfiler(OPTANE_HM).run(graph)
    profile = profiling.profile
    tensors = list(profile.tensors.values())
    page_size = profile.page_size

    # Observation 1: short-lived and small tensors.
    short = [t for t in tensors if t.short_lived]
    small_short = [t for t in short if t.nbytes < page_size]
    short_fraction = len(short) / len(tensors)
    small_of_short = len(small_short) / max(1, len(short))
    peak_short_bytes = max(profile.layer_short_lived_bytes)

    # Observation 2: hot/cold distribution by access count.
    cold = [t for t in tensors if t.total_touches < 10]
    hot = [t for t in tensors if t.total_touches > 100]
    total_bytes = sum(t.nbytes for t in tensors)
    cold_bytes = sum(t.nbytes for t in cold)
    hot_bytes = sum(t.nbytes for t in hot)

    # Observation 3: page-level vs tensor-level classification.  Replay the
    # profiling step on the packed (TensorFlow-default) allocator and
    # classify *runs* by per-page access count: bytes that look hot at page
    # level but whose tensors are cold reveal false sharing.
    false_sharing = _page_level_false_sharing(graph, threshold=10)

    rows = [
        ("tensors", len(tensors)),
        ("short-lived fraction", f"{short_fraction:.1%}"),
        ("small among short-lived", f"{small_of_short:.1%}"),
        ("peak short-lived MiB", f"{mib(peak_short_bytes):.1f}"),
        ("cold (<10 accesses) tensors", f"{len(cold) / len(tensors):.1%}"),
        ("cold tensor bytes", f"{mib(cold_bytes):.1f} MiB ({cold_bytes / total_bytes:.1%})"),
        ("hot (>100 accesses) tensors", len(hot)),
        ("hot tensor bytes", f"{mib(hot_bytes):.2f} MiB ({hot_bytes / total_bytes:.2%})"),
        ("cold bytes at tensor level", f"{mib(false_sharing['tensor_cold_bytes']):.1f} MiB"),
        ("cold bytes at page level", f"{mib(false_sharing['page_cold_bytes']):.1f} MiB"),
        ("bytes misclassified hot by pages", f"{mib(false_sharing['misclassified_bytes']):.1f} MiB"),
        ("profiling faults", profile.fault_count),
        ("profiling memory overhead", f"{profile.memory_overhead:.2%}"),
    ]
    text = format_table(
        ("quantity", "value"), rows, title=f"Characterization — {graph.name}"
    )
    return {
        "model": graph.name,
        "short_fraction": short_fraction,
        "small_of_short": small_of_short,
        "peak_short_bytes": peak_short_bytes,
        "cold_fraction": len(cold) / len(tensors),
        "cold_bytes": cold_bytes,
        "hot_count": len(hot),
        "hot_bytes": hot_bytes,
        "false_sharing": false_sharing,
        "profile": profile,
        "text": text,
    }


def _page_level_false_sharing(graph, threshold: int) -> Dict[str, int]:
    """Bytes cold at tensor level vs at page level (Observation 3).

    Page-level profiling is replayed on the TensorFlow-default arena
    allocator, where false sharing has both a spatial dimension (small
    tensors of different hotness packed into shared slabs) and a temporal
    one (page counters accumulate across successive chunk tenants).  The
    bytes the page-level view counts as hot while their tensors are cold
    are exactly the fast memory a page-guided manager would waste.
    """
    from repro.dnn.arena import ArenaAllocator

    machine = Machine(OPTANE_HM)
    policy = PlacementPolicy()
    policy.bind(machine, graph)
    policy.residency = False
    allocator = ArenaAllocator(machine, policy.place)
    executor = Executor(graph, machine, policy, allocator=allocator)
    machine.page_table.poison_all()
    executor.run_step()  # poisoning also applies to runs mapped mid-step
    for run in machine.page_table.entries():
        run.poisoned = True
        run.reset_counts()
    executor.run_step()  # the measured step, on a warmed arena

    page_cold_bytes = 0
    page_total_bytes = 0
    for run in machine.page_table.entries():
        nbytes = run.npages * machine.page_size
        per_page = run.accesses / max(1, run.npages)
        page_total_bytes += nbytes
        if per_page < threshold:
            page_cold_bytes += nbytes

    # Tensor-level cold bytes from a clean page-aligned profile.
    profile = DynamicProfiler(OPTANE_HM).run(graph).profile
    tensor_cold_bytes = sum(
        t.nbytes for t in profile.tensors.values() if t.total_touches < threshold
    )
    return {
        "tensor_cold_bytes": tensor_cold_bytes,
        "page_cold_bytes": page_cold_bytes,
        "misclassified_bytes": max(0, tensor_cold_bytes - page_cold_bytes),
        "page_total_bytes": page_total_bytes,
    }


# --------------------------------------------------------------------- E2

def table3_models(models: Sequence[str] = CPU_SMALL_MODELS, workers: int = 1) -> Dict:
    """Table III: model configurations and Sentinel's overhead accounting.

    ``workers > 1`` fans the per-model runs over a process pool via
    :func:`_pooled` — byte-identical to serial.
    """
    results = _pooled(
        _run_policy_task,
        [
            {"policy_name": SENTINEL_CPU, "model": name, "fast_fraction": 0.2}
            for name in models
        ],
        workers,
    )
    rows = []
    records = []
    for name, metrics in zip(models, results):
        spec = MODELS[name]
        graph = spec.build(scale="small")
        peak = graph.peak_memory_bytes()
        slowdown = metrics.extras.get("profiling_step_time", 0.0) / metrics.step_time
        record = {
            "model": name,
            "small_batch": spec.small_batch,
            "large_batch": spec.large_batch,
            "peak_bytes": peak,
            "tensors": len(graph.tensors),
            "layers": graph.num_layers,
            "profiling_steps": metrics.extras.get("profiling_steps", 0.0),
            "trial_steps": metrics.extras.get("trial_steps", 0.0),
            "memory_overhead": metrics.extras.get("memory_overhead", 0.0),
            "profiling_slowdown": slowdown,
        }
        records.append(record)
        rows.append(
            (
                name,
                spec.small_batch,
                spec.large_batch,
                f"{gib(peak):.2f}",
                record["tensors"],
                int(record["profiling_steps"] + record["trial_steps"]),
                f"{record['memory_overhead']:.2%}",
                f"{slowdown:.1f}x",
            )
        )
    text = format_table(
        (
            "model",
            "batch(S)",
            "batch(L)",
            "peak GiB",
            "tensors",
            "overhead steps",
            "mem overhead",
            "profiling slowdown",
        ),
        rows,
        title="Table III — models and Sentinel overheads",
    )
    return {"records": records, "text": text}


# --------------------------------------------------------------------- E3

def fig5_interval_sweep(
    model: str = "resnet32",
    fast_fraction: float = 0.2,
    lengths: Sequence[int] = tuple(range(1, 13)),
    workers: int = 1,
) -> Dict:
    """Figure 5: step time as a function of the migration interval length.

    ``workers > 1`` fans the per-length runs over a process pool via
    :func:`_pooled` — byte-identical to serial.
    """
    results = _pooled(
        _run_policy_task,
        [
            {
                "policy_name": SENTINEL_CPU,
                "model": model,
                "fast_fraction": fast_fraction,
                "sentinel_config": _cfg(fixed_interval_length=length),
            }
            for length in lengths
        ],
        workers,
    )
    points: List[Tuple[int, float]] = [
        (length, metrics.step_time) for length, metrics in zip(lengths, results)
    ]
    best = min(points, key=lambda p: p[1])
    worst = max(points, key=lambda p: p[1])
    variance = worst[1] / best[1] - 1.0
    text = format_series(
        f"Figure 5 — {model} step time vs interval length "
        f"(best MIL={best[0]}, {variance:.0%} spread)",
        points,
        unit="s",
    )
    return {"points": points, "best": best, "variance": variance, "text": text}


# --------------------------------------------------------------------- E4

def fig7_speedup(
    models: Sequence[str] = CPU_SMALL_MODELS,
    fast_fraction: float = 0.2,
    workers: int = 1,
) -> Dict:
    """Figure 7: IAL/AutoTM/Sentinel speedup over slow-only at 20% fast.

    The grid runs through :func:`repro.harness.sweeps.sweep`, so
    ``workers > 1`` fans the (model, policy) points over a process pool;
    every point is an isolated simulation merged back in enumeration
    order, so the result is byte-identical to ``workers=1``.
    """
    grid = sweep(
        ("slow-only", "fast-only", "ial", "autotm", SENTINEL_CPU),
        models,
        fast_fractions=(fast_fraction,),
        workers=workers,
    )

    def metrics_of(name: str, policy: str) -> RunMetrics:
        return grid.where(model=name, policy=policy)[0].metrics

    rows = []
    records = {}
    for name in models:
        slow = metrics_of(name, "slow-only")
        fast = metrics_of(name, "fast-only")
        row = {"model": name, "slow_time": slow.step_time, "fast_time": fast.step_time}
        for policy in ("ial", "autotm", SENTINEL_CPU):
            row[policy] = metrics_of(name, policy).step_time
        records[name] = row
        rows.append(
            (
                name,
                f"{slow.step_time / row['ial']:.2f}",
                f"{slow.step_time / row['autotm']:.2f}",
                f"{slow.step_time / row[SENTINEL_CPU]:.2f}",
                f"{slow.step_time / fast.step_time:.2f}",
            )
        )
    text = format_table(
        ("model", "IAL", "AutoTM", "Sentinel", "fast-only (ceiling)"),
        rows,
        title="Figure 7 — speedup over slow-only, fast = 20% of peak",
    )
    return {"records": records, "text": text}


# --------------------------------------------------------------------- E5

def table4_migrated(
    models: Sequence[str] = CPU_SMALL_MODELS,
    fast_fraction: float = 0.2,
    workers: int = 1,
) -> Dict:
    """Table IV: migrated bytes per training step per policy.

    ``workers > 1`` fans the (model, policy) grid over a process pool via
    :func:`_pooled` — byte-identical to serial.
    """
    policies = ("ial", "autotm", SENTINEL_CPU)
    results = _pooled(
        _run_policy_task,
        [
            {"policy_name": policy, "model": name, "fast_fraction": fast_fraction}
            for name in models
            for policy in policies
        ],
        workers,
    )
    rows = []
    records = {}
    grid = iter(results)
    for name in models:
        row = {policy: next(grid).migrated_bytes for policy in policies}
        records[name] = row
        rows.append(
            (
                name,
                f"{mib(row['ial']):.0f}",
                f"{mib(row['autotm']):.0f}",
                f"{mib(row[SENTINEL_CPU]):.0f}",
            )
        )
    text = format_table(
        ("model", "IAL MiB", "AutoTM MiB", "Sentinel MiB"),
        rows,
        title="Table IV — migrated data per training step",
    )
    return {"records": records, "text": text}


# --------------------------------------------------------------------- E6

def fig8_large_batch(
    models: Sequence[str] = CPU_LARGE_MODELS, workers: int = 1
) -> Dict:
    """Figure 8: large-batch training, normalized by first-touch NUMA.

    ``workers > 1`` fans the (model, policy) grid over a process pool via
    :func:`_pooled` — byte-identical to serial.
    """
    policies = ("first-touch", "memory-mode", "autotm", SENTINEL_CPU)
    results = _pooled(
        _run_policy_task,
        [
            {
                "policy_name": policy,
                "model": name,
                "scale": "large",
                "fast_capacity": FIG8_DRAM_BYTES,
            }
            for name in models
            for policy in policies
        ],
        workers,
    )
    rows = []
    records = {}
    grid = iter(results)
    for name in models:
        graph_peak = build_model(name, scale="large").peak_memory_bytes()
        row = {"peak_bytes": graph_peak}
        for policy in policies:
            row[policy] = next(grid).step_time
        records[name] = row
        base = row["first-touch"]
        rows.append(
            (
                name,
                f"{gib(graph_peak):.1f}",
                "1.00",
                f"{base / row['memory-mode']:.2f}",
                f"{base / row['autotm']:.2f}",
                f"{base / row[SENTINEL_CPU]:.2f}",
            )
        )
    text = format_table(
        ("model", "peak GiB", "first-touch", "memory-mode", "autotm", "sentinel"),
        rows,
        title=f"Figure 8 — large batches, DRAM = {gib(FIG8_DRAM_BYTES):.0f} GiB, "
        "normalized by first-touch",
    )
    return {"records": records, "text": text}


# --------------------------------------------------------------------- E7

def fig9_bandwidth(model: str = "resnet32", fast_fraction: float = 0.2) -> Dict:
    """Figure 9: fast/slow-memory traffic during training, IAL vs Sentinel."""
    records = {}
    for policy in ("ial", SENTINEL_CPU):
        metrics = run_policy(policy, model=model, fast_fraction=fast_fraction)
        records[policy] = {
            "bytes_fast": metrics.bytes_fast,
            "bytes_slow": metrics.bytes_slow,
            "step_time": metrics.step_time,
            "fast_bw": metrics.bytes_fast / metrics.step_time,
            "slow_bw": metrics.bytes_slow / metrics.step_time,
        }
    ratio_fast = records[SENTINEL_CPU]["fast_bw"] / max(1.0, records["ial"]["fast_bw"])
    rows = [
        (
            policy,
            f"{records[policy]['fast_bw'] / 1e9:.1f}",
            f"{records[policy]['slow_bw'] / 1e9:.1f}",
        )
        for policy in records
    ]
    text = format_table(
        ("policy", "fast GB/s", "slow GB/s"),
        rows,
        title=f"Figure 9 — {model} average memory bandwidth "
        f"(Sentinel/IAL fast-traffic ratio {ratio_fast:.1f}x)",
    )
    return {"records": records, "fast_ratio": ratio_fast, "text": text}


# --------------------------------------------------------------------- E8

def fig10_sensitivity(
    models: Sequence[str] = CPU_SMALL_MODELS,
    fractions: Sequence[float] = (0.2, 0.3, 0.4, 0.6),
    workers: int = 1,
) -> Dict:
    """Figure 10: Sentinel performance vs fast-memory size.

    Runs through :func:`repro.harness.sweeps.sweep`, so ``workers > 1``
    parallelizes the (model, fraction) grid byte-identically.
    """
    grid = sweep(
        ("fast-only", SENTINEL_CPU),
        models,
        fast_fractions=tuple(fractions),
        workers=workers,
    )
    records: Dict[str, List[Tuple[float, float]]] = {}
    rows = []
    for name in models:
        fast = grid.where(model=name, policy="fast-only")[0].metrics
        series = []
        cells = [name]
        for fraction in fractions:
            metrics = grid.where(
                model=name, policy=SENTINEL_CPU, fast_fraction=fraction
            )[0].metrics
            relative = metrics.step_time / fast.step_time
            series.append((fraction, relative))
            cells.append(f"{relative:.2f}")
        records[name] = series
        rows.append(tuple(cells))
    text = format_table(
        ("model",) + tuple(f"{f:.0%}" for f in fractions),
        rows,
        title="Figure 10 — Sentinel step time relative to fast-only vs "
        "fast-memory size (fraction of peak)",
    )
    return {"records": records, "fractions": tuple(fractions), "text": text}


# --------------------------------------------------------------------- E9

def _fig11_depth_task(spec: Tuple[int, int, float]) -> Dict:
    """One Figure-11 depth: the whole binary search for one ResNet variant.

    The search is sequential by nature (each probe depends on the last),
    so the pooled mode parallelizes across depths, not within one.
    """
    from repro.models.resnet import build_resnet

    depth, batch_size, tolerance = spec
    graph = build_resnet(depth, batch_size)
    peak = graph.peak_memory_bytes()
    fast = run_policy("fast-only", graph=build_resnet(depth, batch_size))
    target = fast.step_time * tolerance

    def ok(fraction: float) -> bool:
        metrics = run_policy(
            SENTINEL_CPU,
            graph=build_resnet(depth, batch_size),
            fast_fraction=fraction,
        )
        return metrics.step_time <= target

    low, high = 0.05, 1.0
    if ok(low):
        high = low
    else:
        while high - low > 0.05:
            mid = (low + high) / 2
            if ok(mid):
                high = mid
            else:
                low = mid
    return {
        "depth": depth,
        "peak_bytes": peak,
        "min_fraction": high,
        "min_fast_bytes": int(peak * high),
    }


def fig11_resnet_scaling(
    depths: Sequence[int] = (20, 32, 44, 56, 110),
    batch_size: int = 1024,
    tolerance: float = 1.10,
    workers: int = 1,
) -> Dict:
    """Figure 11: minimum fast memory for fast-only-parity vs ResNet depth.

    ``workers > 1`` fans the per-depth searches over a process pool via
    :func:`_pooled` — byte-identical to serial.
    """
    found = _pooled(
        _fig11_depth_task,
        [(depth, batch_size, tolerance) for depth in depths],
        workers,
    )
    rows = []
    records = []
    for point in found:
        peak = point["peak_bytes"]
        min_fraction = point["min_fraction"]
        records.append(
            {
                "depth": point["depth"],
                "peak_bytes": peak,
                "min_fast_bytes": point["min_fast_bytes"],
            }
        )
        rows.append(
            (f"resnet{point['depth']}", f"{gib(peak):.2f}",
             f"{gib(peak * min_fraction):.2f}", f"{min_fraction:.0%}")
        )
    text = format_table(
        ("model", "peak GiB", "min fast GiB", "fraction"),
        rows,
        title="Figure 11 — minimum fast memory for parity with fast-only",
    )
    return {"records": records, "text": text}


# -------------------------------------------------------------------- E10

def table5_max_batch(models: Sequence[str] = GPU_MODELS, workers: int = 1) -> Dict:
    """Table V: maximum trainable batch size per policy on the GPU platform.

    ``workers > 1`` fans the (model, policy) probes over a process pool
    via :func:`_pooled` — byte-identical to serial.
    """
    policies = ("fast-only", "vdnn", "autotm", "swapadvisor", "capuchin", SENTINEL_GPU)
    labels = {
        "fast-only": "TensorFlow",
        "vdnn": "vDNN",
        "autotm": "AutoTM",
        "swapadvisor": "SwapAdvisor",
        "capuchin": "Capuchin",
        SENTINEL_GPU: "Sentinel-GPU",
    }
    results = _pooled(
        _max_batch_task,
        [
            {
                "policy_name": policy,
                "model": name,
                "platform": GPU_HM,
                "sentinel_config": _cfg(),
            }
            for name in models
            for policy in policies
        ],
        workers,
    )
    rows = []
    records: Dict[str, Dict[str, object]] = {}
    grid = iter(results)
    for name in models:
        row: Dict[str, object] = {}
        cells = [name]
        for policy in policies:
            batch = next(grid)
            if batch == _UNSUPPORTED:
                row[policy] = None
                cells.append("x")
            else:
                row[policy] = batch
                cells.append(str(batch))
        records[name] = row
        rows.append(tuple(cells))
    text = format_table(
        ("model",) + tuple(labels[p] for p in policies),
        rows,
        title="Table V — maximum batch size on 16 GB GPU memory",
    )
    return {"records": records, "text": text}


# -------------------------------------------------------------------- E11

def fig12_gpu_throughput(
    models: Sequence[str] = GPU_MODELS,
    batches: Optional[Dict[str, Tuple[int, ...]]] = None,
    workers: int = 1,
) -> Dict:
    """Figure 12: training throughput on GPU, normalized by Unified Memory.

    ``workers > 1`` fans the (model, batch, policy) grid over a process
    pool via :func:`_pooled` — byte-identical to serial.
    """
    batches = batches if batches is not None else GPU_BATCHES
    policies = ("unified-memory", "vdnn", "autotm", "swapadvisor", "capuchin", SENTINEL_GPU)
    results = _pooled(
        _run_policy_task,
        [
            {
                "policy_name": policy,
                "model": name,
                "batch_size": batch,
                "platform": GPU_HM,
                "sentinel_config": _cfg(),
            }
            for name in models
            for batch in batches[name]
            for policy in policies
        ],
        workers,
    )
    rows = []
    records: Dict[Tuple[str, int], Dict[str, Optional[float]]] = {}
    grid = iter(results)
    for name in models:
        for batch in batches[name]:
            row: Dict[str, Optional[float]] = {}
            for policy in policies:
                metrics = next(grid)
                row[policy] = (
                    None if metrics == _UNSUPPORTED else metrics.throughput
                )
            records[(name, batch)] = row
            base = row["unified-memory"] or 1.0
            rows.append(
                (f"{name}@{batch}",)
                + tuple(
                    "x" if row[p] is None else f"{row[p] / base:.2f}" for p in policies
                )
            )
    text = format_table(
        ("workload", "UM", "vDNN", "AutoTM", "SwapAdvisor", "Capuchin", "Sentinel-GPU"),
        rows,
        title="Figure 12 — GPU training throughput normalized by Unified Memory",
    )
    return {"records": records, "text": text}


# -------------------------------------------------------------------- E12

def fig13_breakdown(models: Sequence[str] = ("resnet200", "bert-large")) -> Dict:
    """Figure 13: exposed migration + recomputation shares, and the Sentinel
    ablation (direct migration / + determined MI / all)."""
    policies = ("vdnn", "autotm", "swapadvisor", "capuchin")
    ablations = {
        "sentinel (direct)": _cfg(
            interval_opt=False, reserve_short=False, co_allocate=False
        ),
        "sentinel (det. MI)": _cfg(reserve_short=False, co_allocate=False),
        "sentinel (all)": _cfg(),
    }
    from repro.obs import EventTracer
    from repro.obs.critpath import attribute

    rows = []
    records: Dict[str, Dict[str, Dict[str, float]]] = {}
    cross_lines: List[str] = []
    for name in models:
        batch = GPU_BATCHES[name][-1]
        per_model: Dict[str, Dict[str, float]] = {}
        for policy in policies:
            try:
                metrics = run_policy(
                    policy, model=name, batch_size=batch, platform=GPU_HM
                )
            except UnsupportedModelError:
                continue
            per_model[policy] = _breakdown(metrics)
            rows.append(_breakdown_row(name, policy, per_model[policy]))
        for label, config in ablations.items():
            # Trace the full ablation so its breakdown can be cross-checked
            # against the independent critical-path attribution below.
            tracer = EventTracer(capacity=1 << 18) if label == "sentinel (all)" else None
            metrics = run_policy(
                SENTINEL_GPU,
                model=name,
                batch_size=batch,
                platform=GPU_HM,
                sentinel_config=config,
                tracer=tracer,
            )
            per_model[label] = _breakdown(metrics)
            rows.append(_breakdown_row(name, label, per_model[label]))
            if tracer is not None:
                attribution = attribute(tracer.events, dropped=tracer.dropped)
                last = attribution.steps[-1]
                per_model["attribution"] = {
                    "step_time": last.duration,
                    "trace_stall": last.stall,
                    "counter_stall": metrics.stall_time,
                    **last.components(),
                }
                cross_lines.append(
                    f"  {name}: trace stall {last.stall:.4f}s vs counter "
                    f"stall {metrics.stall_time:.4f}s "
                    f"(diff {abs(last.stall - metrics.stall_time):.1e})"
                )
        records[name] = per_model
    text = format_table(
        ("workload", "policy", "step s", "exposed migration", "recompute"),
        rows,
        title="Figure 13 — critical-path breakdown (share of step time)",
    )
    if cross_lines:
        text += (
            "\n\ncross-check — trace-derived attribution of the measured "
            "step (sentinel all):\n" + "\n".join(cross_lines)
        )
    return {"records": records, "text": text}


# ------------------------------------------------------------------ E12b

def step_attribution(
    models: Sequence[str] = ("dcgan", "lstm"),
    policy: str = SENTINEL_CPU,
    fast_fraction: float = 0.2,
) -> Dict:
    """Per-step critical-path attribution (the Figure 13 companion).

    Where each simulated step's time goes — compute, exposed migration
    stall, channel contention, fault handling, pressure reclaim, idle —
    measured from the event trace by :mod:`repro.obs.critpath` rather than
    from the executor's own counters, plus the what-if answers (free
    migration, doubled bandwidth) the paper's speedup claims imply.
    """
    from repro.harness.report import format_attribution
    from repro.obs import EventTracer
    from repro.obs.critpath import attribute

    records: Dict[str, Dict[str, float]] = {}
    sections: List[str] = []
    for name in models:
        tracer = EventTracer(capacity=1 << 18)
        run_policy(
            policy, model=name, fast_fraction=fast_fraction, tracer=tracer
        )
        attribution = attribute(tracer.events, dropped=tracer.dropped)
        records[name] = {
            **attribution.totals(),
            "median_step_time": attribution.median_step_time(),
            "what_if_free_migration": attribution.what_if_free_migration(),
            "what_if_2x_bandwidth": attribution.what_if_bandwidth_scale(2.0),
        }
        sections.append(
            format_attribution(
                attribution, title=f"{name} / {policy} — step attribution"
            )
        )
    return {"records": records, "text": "\n\n".join(sections)}


# -------------------------------------------------------------------- E13

def robustness_degradation(
    model: str = "resnet32",
    policies: Sequence[str] = (SENTINEL_CPU, "ial", "autotm"),
    fault_rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    fast_fraction: float = 0.2,
    chaos_seed: int = 1234,
) -> Dict:
    """Fault-rate sweep: throughput degradation under injected substrate faults.

    Every run gets a deterministic seeded injector (EBUSY migration
    refusals, mid-flight copy aborts, Optane write-throttling episodes,
    lossy profiling) plus the per-step invariant auditor; Sentinel
    additionally runs with a Case-3 patience deadline so a crawling
    prefetch degrades to the leave-in-slow path instead of an unbounded
    stall.  The requirement being demonstrated is *graceful* degradation:
    every policy completes at every rate, throughput decays smoothly with
    the fault rate, and the memory accounting still balances throughout.
    """
    if not policies:
        raise ValueError("need at least one policy")
    slow = run_policy("slow-only", model=model)
    # Patience budget: roughly one slow-tier step.  Waiting longer than that
    # for a prefetch can never beat just running the interval from slow.
    deadline = slow.step_time
    rows = []
    records: Dict[str, List[Dict[str, float]]] = {}
    for policy in policies:
        series: List[Dict[str, float]] = []
        baseline: Optional[float] = None
        for rate in fault_rates:
            # Per-point seeds (not one shared stream) so a point's fault
            # sequence is independent of which other points ran before it.
            chaos = ChaosConfig.uniform(
                rate, seed=point_seed(chaos_seed, policy, model, rate)
            )
            config = (
                _cfg(case3_wait_deadline=deadline)
                if policy in (SENTINEL_CPU, SENTINEL_GPU)
                else None
            )
            metrics = run_policy(
                policy,
                model=model,
                fast_fraction=fast_fraction,
                sentinel_config=config,
                chaos=chaos,
                audit=True,
            )
            if baseline is None:
                baseline = metrics.throughput
            point = {
                "fault_rate": rate,
                "throughput": metrics.throughput,
                "step_time": metrics.step_time,
                "relative": metrics.throughput / baseline if baseline else 0.0,
                "retries": metrics.extras.get("migration_retries", 0.0),
                "busy_fallbacks": metrics.extras.get("busy_fallbacks", 0.0),
                "aborted_bytes": metrics.extras.get("aborted_bytes", 0.0),
                "faults_dropped": metrics.extras.get("faults_dropped", 0.0),
                "reprofile_steps": metrics.extras.get("reprofile_steps", 0.0),
                "case3_fallbacks": metrics.extras.get("case3_fallbacks", 0.0),
            }
            series.append(point)
            rows.append(
                (
                    policy,
                    f"{rate:.0%}",
                    f"{metrics.throughput:.4g}",
                    f"{point['relative']:.2f}",
                    int(point["retries"]),
                    int(point["busy_fallbacks"]),
                    f"{mib(point['aborted_bytes']):.0f}",
                    int(point["faults_dropped"]),
                    int(point["reprofile_steps"] + point["case3_fallbacks"]),
                )
            )
        records[policy] = series
    text = format_table(
        (
            "policy",
            "fault rate",
            "samples/s",
            "vs 0%",
            "retries",
            "refused",
            "aborted MiB",
            "dropped faults",
            "sentinel fallbacks",
        ),
        rows,
        title=f"Robustness — {model} throughput under injected faults "
        f"(chaos seed {chaos_seed})",
    )
    return {
        "model": model,
        "fault_rates": tuple(fault_rates),
        "chaos_seed": chaos_seed,
        "records": records,
        "text": text,
    }


def ras_resilience(
    model: str = "resnet32",
    recoveries: Sequence[str] = ("none", "refetch", "remat"),
    ue_rates: Sequence[float] = (0.0, 2e-10, 1e-9),
    ce_ratio: float = 10.0,
    scrub_bandwidth: float = 256 * 1024**2,
    fast_fraction: float = 0.2,
    ras_seed: int = 4321,
) -> Dict:
    """UE-rate sweep: training resilience under uncorrectable memory errors.

    Every point runs Sentinel under the RAS engine (:mod:`repro.mem.ras`)
    with seeded CE/UE injection at the given per-byte-second UE rate (CEs
    at ``ce_ratio`` times that), a patrol scrubber at ``scrub_bandwidth``
    bytes/s, and the per-step invariant auditor.  The sweep compares
    recovery policies: ``"none"`` turns every UE into a fatal
    :class:`~repro.errors.UncorrectableMemoryError` (recorded as a died
    point, not an exception); ``"refetch"`` re-fetches clean preallocated
    pages but dies on activations; ``"remat"`` additionally re-runs the
    producer op, so training survives UEs on live activations at the cost
    of recovery time — which lands in the ``ras_recovery`` critical-path
    bucket and the counters reported here.

    The rate-0 point per policy is the RAS-disabled baseline (the config
    is dormant, the run byte-identical to a pre-RAS machine); ``relative``
    throughput is measured against it.  Per-point seeds come from
    :func:`point_seed`, so a point's error sequence depends only on its
    own coordinates.
    """
    from repro.errors import UncorrectableMemoryError

    if not recoveries or not ue_rates:
        raise ValueError("need at least one recovery policy and one UE rate")
    rows = []
    records: Dict[str, List[Dict[str, object]]] = {}
    for recovery in recoveries:
        series: List[Dict[str, object]] = []
        baseline: Optional[float] = None
        for rate in ue_rates:
            ras = RASConfig(
                seed=point_seed(ras_seed, recovery, model, rate),
                ue_rate=rate,
                ce_rate=rate * ce_ratio,
                scrub_bandwidth=scrub_bandwidth,
                recovery=recovery,
            )
            try:
                metrics = run_policy(
                    SENTINEL_CPU,
                    model=model,
                    fast_fraction=fast_fraction,
                    ras=ras,
                    audit=True,
                )
            except UncorrectableMemoryError as err:
                series.append(
                    {"ue_rate": rate, "survived": False, "error": str(err)}
                )
                rows.append(
                    (recovery, f"{rate:.1e}", "died", "-", "-", "-", "-", "-", "-")
                )
                continue
            if baseline is None:
                baseline = metrics.throughput
            extras = metrics.extras
            point = {
                "ue_rate": rate,
                "survived": True,
                "step_time": metrics.step_time,
                "throughput": metrics.throughput,
                "relative": metrics.throughput / baseline if baseline else 0.0,
                "errors_injected": extras.get("ras.errors_injected", 0),
                "ce_corrected": extras.get("ras.ce_corrected", 0),
                "ce_scrubbed": extras.get("ras.ce_scrubbed", 0),
                "ue_detected": extras.get("ras.ue_detected", 0),
                "retired_frames": extras.get("ras.retired_frames", 0),
                "clean_drops": extras.get("ras.clean_drops", 0),
                "refetch_events": extras.get("ras.refetch_events", 0),
                "remat_events": extras.get("ras.remat_events", 0),
                "recovery_time": extras.get("ras.remat_time", 0.0)
                + extras.get("ras.refetch_time", 0.0),
            }
            series.append(point)
            rows.append(
                (
                    recovery,
                    f"{rate:.1e}",
                    f"{metrics.step_time:.4f}",
                    f"{point['relative']:.2f}",
                    int(point["errors_injected"]),
                    int(point["ce_scrubbed"]),
                    int(point["ue_detected"]),
                    int(point["retired_frames"]),
                    f"{point['recovery_time']:.4f}",
                )
            )
        records[recovery] = series
    text = format_table(
        (
            "recovery",
            "UE rate",
            "step (s)",
            "vs rate 0",
            "errors",
            "scrubbed",
            "UEs",
            "retired",
            "recovery s",
        ),
        rows,
        title=f"RAS resilience — {model} under CE/UE injection "
        f"(seed {ras_seed}, scrub {mib(scrub_bandwidth):.0f} MiB/s)",
    )
    return {
        "model": model,
        "recoveries": tuple(recoveries),
        "ue_rates": tuple(ue_rates),
        "ras_seed": ras_seed,
        "records": records,
        "text": text,
    }


def pressure_survival(
    models: Sequence[str] = tuple(MODELS),
    policies: Sequence[str] = (SENTINEL_CPU, "ial"),
    fast_fractions: Sequence[float] = (0.1, 0.05),
    watermarks: Tuple[float, float] = (0.75, 0.9),
    reserve_frames: int = 32,
    trace: bool = False,
) -> Dict:
    """Capacity-pressure survival sweep: fast memory down to 5% of peak.

    Every (model, policy, fraction) point runs under the memory-pressure
    governor — watermark admission control, an urgent-lane reserve pool,
    spill-to-slow allocation fallback, and (for the arena-backed IAL
    baseline) bounded compaction — plus the per-step invariant auditor.
    The requirement being demonstrated is *survival*: every point
    completes with balanced accounting and no exception, degrading into
    slow-tier traffic that the spill/refusal/compaction counters make
    visible instead of dying at the capacity wall.

    With ``trace=True`` every point captures its own event trace and the
    result carries ``labeled`` (label, events) pairs ready for
    :func:`repro.obs.combine_chrome`.
    """
    if not models or not policies or not fast_fractions:
        raise ValueError("need at least one model, policy, and fraction")
    low, high = watermarks
    pressure = PressureConfig.watermarks(low, high, reserve_frames=reserve_frames)
    rows = []
    records: Dict[str, List[Dict[str, float]]] = {}
    labeled: List[Tuple[str, Tuple]] = []
    for model in models:
        for policy in policies:
            series = records.setdefault(f"{policy}/{model}", [])
            for fraction in fast_fractions:
                tracer = None
                if trace:
                    from repro.obs import EventTracer

                    tracer = EventTracer()
                metrics = run_policy(
                    policy,
                    model=model,
                    fast_fraction=fraction,
                    pressure=pressure,
                    audit=True,
                    tracer=tracer,
                )
                if tracer is not None:
                    labeled.append(
                        (f"{policy}/{model}/f{fraction:g}", tuple(tracer.events))
                    )
                extras = metrics.extras
                point = {
                    "fast_fraction": fraction,
                    "step_time": metrics.step_time,
                    "throughput": metrics.throughput,
                    "spills": extras.get("pressure.spills", 0.0),
                    "spilled_bytes": extras.get("pressure.spilled_bytes", 0.0),
                    "refused_promotions": extras.get(
                        "pressure.refused_promotions", 0.0
                    ),
                    "reclaims": extras.get("pressure.reclaims", 0.0),
                    "compaction_moves": extras.get(
                        "pressure.compaction_moves", 0.0
                    ),
                    "compaction_bytes": extras.get(
                        "pressure.compaction_bytes", 0.0
                    ),
                }
                series.append(point)
                rows.append(
                    (
                        model,
                        policy,
                        f"{fraction:.0%}",
                        f"{metrics.step_time:.4f}",
                        int(point["spills"]),
                        f"{mib(point['spilled_bytes']):.0f}",
                        int(point["refused_promotions"]),
                        int(point["reclaims"]),
                        int(point["compaction_moves"]),
                    )
                )
    text = format_table(
        (
            "model",
            "policy",
            "fast",
            "step (s)",
            "spills",
            "spilled MiB",
            "refused",
            "reclaims",
            "compaction moves",
        ),
        rows,
        title=f"Pressure survival — watermarks {low:g}/{high:g}, "
        f"reserve {reserve_frames} frames (every point must complete)",
    )
    return {
        "models": tuple(models),
        "policies": tuple(policies),
        "fast_fractions": tuple(fast_fractions),
        "watermarks": (low, high),
        "reserve_frames": reserve_frames,
        "records": records,
        "labeled": labeled,
        "text": text,
    }


def _breakdown(metrics: RunMetrics) -> Dict[str, float]:
    recompute = metrics.extras.get("recompute_time", 0.0)
    return {
        "step_time": metrics.step_time,
        "exposed_migration": max(0.0, metrics.stall_time - recompute),
        "recompute": recompute,
    }


def _breakdown_row(model: str, policy: str, b: Dict[str, float]) -> Tuple:
    step = b["step_time"] or 1.0
    return (
        model,
        policy,
        f"{b['step_time']:.3f}",
        f"{b['exposed_migration'] / step:.1%}",
        f"{b['recompute'] / step:.1%}",
    )


def multi_tenant_contention(
    models: Sequence[str] = ("dcgan", "lstm"),
    policies: Sequence[str] = ("ial", SENTINEL_CPU),
    fast_fraction: float = 0.2,
    trace: bool = False,
) -> Dict:
    """Channel contention between co-scheduled workloads (event engine).

    For each policy, the ``models`` are run twice at *matched* fast
    capacity (the given fraction of their combined peak): once isolated —
    each model alone on a machine of that size — and once co-scheduled on
    one machine through :func:`repro.harness.cluster.run_concurrent`.
    Sharing the promote/demote/demand channels queues each tenant's
    transfers behind the other's, so per-workload step times grow and the
    channel mean queueing delay becomes nonzero; capacity is shared too,
    so a pressure governor keeps co-tenants spilling instead of dying.

    The demonstrated claim is the engine's reason to exist: aggregate
    co-scheduled step time exceeds the isolated sum, while each isolated
    run through the same engine is byte-identical to the legacy lockstep
    loop (the equivalence suite pins that half).
    """
    from repro.harness.cluster import WorkloadSpec, run_concurrent

    if len(models) < 2:
        raise ValueError("contention needs at least two co-scheduled models")
    rows = []
    records: Dict[str, List[Dict[str, float]]] = {}
    labeled: List[Tuple[str, Tuple]] = []
    for policy in policies:
        combined_peak = sum(
            build_model(model, scale="small").peak_memory_bytes()
            for model in models
        )
        cap = max(OPTANE_HM.page_size, int(combined_peak * fast_fraction))
        isolated = {
            model: run_policy(policy, model=model, fast_capacity=cap)
            for model in models
        }
        tracer = None
        if trace:
            from repro.obs import EventTracer

            tracer = EventTracer()
        report = run_concurrent(
            [
                WorkloadSpec(name=f"{model}-{index}", model=model, policy=policy)
                for index, model in enumerate(models)
            ],
            fast_capacity=cap,
            tracer=tracer,
        )
        if tracer is not None:
            labeled.append((f"concurrent/{policy}", tuple(tracer.events)))
        series = records.setdefault(policy, [])
        iso_sum = 0.0
        cluster_sum = 0.0
        for index, model in enumerate(models):
            workload = report.workload(f"{model}-{index}")
            iso = isolated[model].step_time
            shared = workload.steady_step_time
            iso_sum += iso
            cluster_sum += shared
            slowdown = shared / iso if iso > 0 else 0.0
            rows.append(
                (
                    policy,
                    model,
                    f"{iso:.4f}",
                    f"{shared:.4f}",
                    f"{slowdown:.2f}x",
                )
            )
            series.append(
                {
                    "model": model,
                    "isolated_step_time": iso,
                    "concurrent_step_time": shared,
                    "slowdown": slowdown,
                }
            )
        queue_delay = max(report.channel_queue_delay.values())
        rows.append(
            (
                policy,
                "(aggregate)",
                f"{iso_sum:.4f}",
                f"{cluster_sum:.4f}",
                f"fairness {report.fairness:.3f}",
            )
        )
        series.append(
            {
                "model": "(aggregate)",
                "isolated_step_time": iso_sum,
                "concurrent_step_time": cluster_sum,
                "slowdown": cluster_sum / iso_sum if iso_sum > 0 else 0.0,
                "fairness": report.fairness,
                "makespan": report.makespan,
                "max_queue_delay": queue_delay,
            }
        )
    text = format_table(
        ("policy", "model", "isolated (s)", "co-sched (s)", "slowdown"),
        rows,
        title=f"multi-tenant contention — {'+'.join(models)}, "
        f"fast = {fast_fraction:.0%} of combined peak",
    )
    return {
        "models": tuple(models),
        "policies": tuple(policies),
        "fast_fraction": fast_fraction,
        "records": records,
        "labeled": labeled,
        "text": text,
    }


def serving_overload(
    rates: Sequence[float] = (0.3, 0.6, 1.0),
    admissions: Sequence[str] = ("fifo", "edf", "watermark"),
    horizon: float = 30.0,
    slots: int = 2,
    queue_limit: int = 4,
    seed: int = 7,
    fast_fraction: float = 0.5,
) -> Dict:
    """Graceful degradation under open-loop overload (serving harness).

    Sweeps arrival rate × admission policy over a fixed inference-heavy
    traffic mix.  The claim demonstrated: as offered load crosses the
    machine's service capacity, a bounded-queue admission policy degrades
    *gracefully* — tail latency of admitted jobs stays bounded (the queue
    bound caps waiting time) while the excess is shed and reported, instead
    of latency growing without limit.  EDF additionally expires
    already-hopeless jobs at dispatch; watermark shedding refuses work
    earlier, trading completions for headroom.

    Deterministic: the whole sweep is a pure function of ``seed``.
    """
    from repro.serve import JobTemplate, PoissonArrivals, ServeConfig, serve

    mix = (
        JobTemplate(
            name="infer",
            model="mobilenet",
            policy="ial",
            steps=1,
            slo=15.0,
            weight=4.0,
        ),
        JobTemplate(
            name="train", model="dcgan", policy="ial", steps=2, slo=60.0
        ),
    )
    rows = []
    records: Dict[str, List[Dict[str, float]]] = {}
    for admission in admissions:
        series = records.setdefault(admission, [])
        for rate in rates:
            report = serve(
                PoissonArrivals(
                    rate=rate, horizon=horizon, templates=mix, seed=seed
                ),
                ServeConfig(
                    seed=seed,
                    slots=slots,
                    admission=admission,
                    queue_limit=queue_limit,
                    timeout=4.0 * max(t.slo for t in mix),
                ),
                fast_fraction=fast_fraction,
            )
            shed = report.counts.get("serve.shed", 0)
            rows.append(
                (
                    admission,
                    f"{rate:.2f}",
                    report.total_jobs,
                    report.completed,
                    f"{report.slo_attainment:.0%}",
                    f"{report.p50:.2f}",
                    f"{report.p99:.2f}",
                    shed,
                    report.counts.get("serve.expired", 0),
                )
            )
            series.append(
                {
                    "rate": rate,
                    "jobs": report.total_jobs,
                    "completed": report.completed,
                    "slo_attainment": report.slo_attainment,
                    "goodput": report.goodput,
                    "p50": report.p50,
                    "p99": report.p99,
                    "shed": shed,
                    "retries": report.counts.get("serve.retry", 0),
                    "expired": report.counts.get("serve.expired", 0),
                }
            )
    text = format_table(
        (
            "admission",
            "rate (/s)",
            "jobs",
            "done",
            "SLO",
            "p50 (s)",
            "p99 (s)",
            "shed",
            "expired",
        ),
        rows,
        title=f"serving overload — mobilenet+dcgan mix, {slots} slots, "
        f"queue {queue_limit}, horizon {horizon:.0f}s",
    )
    return {
        "rates": tuple(rates),
        "admissions": tuple(admissions),
        "records": records,
        "text": text,
    }
