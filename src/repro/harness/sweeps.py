"""Composable parameter sweeps over (policy, model, machine) space.

The per-figure experiments in :mod:`repro.harness.experiments` are fixed
shapes; research use wants free-form grids: "every policy on these three
models at these fast fractions".  :func:`sweep` runs the cartesian product,
tolerates per-point failures (unsupported models, OOM) by recording them,
and renders comparisons.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.vdnn import UnsupportedModelError
from repro.chaos import ChaosConfig
from repro.harness.report import format_table
from repro.harness.runner import OOM_ERRORS, RunMetrics, run_policy
from repro.mem.platforms import OPTANE_HM, Platform
from repro.mem.pressure import PressureConfig


def point_seed(base_seed: int, *key: object) -> int:
    """Deterministic per-grid-point seed, stable across processes.

    Derived with CRC-32 rather than ``hash()`` (whose value changes per
    interpreter invocation for strings), so a sweep's fault sequence for a
    given point does not depend on grid order or process: adding a policy
    to the sweep leaves every other point's faults unchanged.
    """
    material = ":".join(str(part) for part in (base_seed,) + key)
    return zlib.crc32(material.encode("utf-8"))


@dataclass(frozen=True)
class SweepPoint:
    """One grid point and its outcome."""

    policy: str
    model: str
    batch_size: Optional[int]
    fast_fraction: Optional[float]
    metrics: Optional[RunMetrics]  # None if the point failed
    failure: Optional[str] = None  # "unsupported" | "oom"
    #: captured event trace (``sweep(trace=True)``); failed points keep
    #: whatever was recorded before the failure — often the interesting part.
    events: Optional[Tuple] = None

    @property
    def ok(self) -> bool:
        return self.metrics is not None

    @property
    def label(self) -> str:
        """Stable display label for this point (trace export, tables)."""
        parts = [self.policy, self.model]
        if self.fast_fraction is not None:
            parts.append(f"f{self.fast_fraction:g}")
        return "/".join(parts)


@dataclass
class SweepResult:
    """All grid points, with query and rendering helpers."""

    points: List[SweepPoint]

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def where(self, **criteria) -> List[SweepPoint]:
        """Points matching every given field value."""
        out = []
        for point in self.points:
            if all(getattr(point, key) == value for key, value in criteria.items()):
                out.append(point)
        return out

    def best_policy(self, model: str, fast_fraction: Optional[float] = None) -> str:
        """Fastest successful policy for a model (at one fraction if given)."""
        candidates = [
            p
            for p in self.points
            if p.model == model
            and p.ok
            and (fast_fraction is None or p.fast_fraction == fast_fraction)
        ]
        if not candidates:
            raise ValueError(f"no successful points for model {model!r}")
        return min(candidates, key=lambda p: p.metrics.step_time).policy

    def to_table(self, value: str = "step_time") -> str:
        """Models x policies matrix of a metric (first fraction per pair)."""
        models = sorted({p.model for p in self.points})
        policies = sorted({p.policy for p in self.points})
        rows = []
        for model in models:
            cells: List[object] = [model]
            for policy in policies:
                match = next(
                    (p for p in self.points if p.model == model and p.policy == policy),
                    None,
                )
                if match is None:
                    cells.append("-")
                elif not match.ok:
                    cells.append(match.failure)
                else:
                    cells.append(f"{getattr(match.metrics, value):.4g}")
            rows.append(tuple(cells))
        return format_table(("model",) + tuple(policies), rows, title=f"sweep: {value}")


def sweep(
    policies: Sequence[str],
    models: Sequence[str],
    fast_fractions: Sequence[Optional[float]] = (0.2,),
    batch_sizes: Optional[Dict[str, int]] = None,
    platform: Platform = OPTANE_HM,
    chaos: Optional[ChaosConfig] = None,
    trace: bool = False,
    pressure: Optional[PressureConfig] = None,
) -> SweepResult:
    """Run the cartesian product and collect every outcome.

    Policies named ``slow-only``/``fast-only`` ignore the fraction (their
    machines are unconstrained); failures become recorded points rather
    than exceptions, so a single infeasible corner does not kill a grid.

    With ``chaos`` given, every point runs under fault injection; each
    point's injector is reseeded with :func:`point_seed` so its fault
    sequence depends only on the point's own coordinates (and the base
    seed), never on grid order.

    With ``trace=True`` every point runs with its own fresh
    :class:`repro.obs.EventTracer` and the captured events land on
    :attr:`SweepPoint.events` (each point's timeline starts at 0; use
    :func:`repro.obs.combine_chrome` to view them side by side).

    With ``pressure`` given, every point runs under the same
    :class:`~repro.mem.pressure.PressureConfig` (the governor holds no
    random state, so no per-point reseeding is needed).
    """
    if not policies or not models:
        raise ValueError("need at least one policy and one model")
    points: List[SweepPoint] = []
    for model in models:
        batch = (batch_sizes or {}).get(model)
        for policy in policies:
            for fraction in fast_fractions:
                effective = (
                    None if policy in ("slow-only", "fast-only") else fraction
                )
                point_chaos = chaos
                if chaos is not None:
                    point_chaos = chaos.reseeded(
                        point_seed(chaos.seed, policy, model, batch, effective)
                    )
                tracer = None
                if trace:
                    from repro.obs import EventTracer

                    tracer = EventTracer()

                def captured() -> Optional[Tuple]:
                    return None if tracer is None else tuple(tracer.events)

                try:
                    metrics = run_policy(
                        policy,
                        model=model,
                        batch_size=batch,
                        platform=platform,
                        fast_fraction=effective,
                        chaos=point_chaos,
                        tracer=tracer,
                        pressure=pressure,
                    )
                    points.append(
                        SweepPoint(
                            policy, model, batch, effective, metrics,
                            events=captured(),
                        )
                    )
                except UnsupportedModelError:
                    points.append(
                        SweepPoint(
                            policy, model, batch, effective, None, "unsupported",
                            events=captured(),
                        )
                    )
                except OOM_ERRORS:
                    points.append(
                        SweepPoint(
                            policy, model, batch, effective, None, "oom",
                            events=captured(),
                        )
                    )
                if policy in ("slow-only", "fast-only"):
                    break  # fraction-independent: one point suffices
    return SweepResult(points=points)
