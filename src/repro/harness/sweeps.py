"""Composable parameter sweeps over (policy, model, machine) space.

The per-figure experiments in :mod:`repro.harness.experiments` are fixed
shapes; research use wants free-form grids: "every policy on these three
models at these fast fractions".  :func:`sweep` runs the cartesian product,
tolerates per-point failures (unsupported models, OOM) by recording them,
and renders comparisons.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

from repro import accel
from repro.baselines.vdnn import UnsupportedModelError
from repro.chaos import ChaosConfig
from repro.harness.report import format_table
from repro.harness.runner import OOM_ERRORS, RunMetrics, run_policy
from repro.mem.platforms import OPTANE_HM, Platform
from repro.mem.pressure import PressureConfig


def point_seed(base_seed: int, *key: object) -> int:
    """Deterministic per-grid-point seed, stable across processes.

    Derived with CRC-32 rather than ``hash()`` (whose value changes per
    interpreter invocation for strings), so a sweep's fault sequence for a
    given point does not depend on grid order or process: adding a policy
    to the sweep leaves every other point's faults unchanged.
    """
    material = ":".join(str(part) for part in (base_seed,) + key)
    return zlib.crc32(material.encode("utf-8"))


@dataclass(frozen=True)
class SweepPoint:
    """One grid point and its outcome."""

    policy: str
    model: str
    batch_size: Optional[int]
    fast_fraction: Optional[float]
    metrics: Optional[RunMetrics]  # None if the point failed
    failure: Optional[str] = None  # "unsupported" | "oom"
    #: captured event trace (``sweep(trace=True)``); failed points keep
    #: whatever was recorded before the failure — often the interesting part.
    events: Optional[Tuple] = None
    #: canonical insight artifact dict (``sweep(insight=True)``); ``None``
    #: for insight-free sweeps and for points that failed before finalize.
    insight: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return self.metrics is not None

    @property
    def label(self) -> str:
        """Stable display label for this point (trace export, tables)."""
        parts = [self.policy, self.model]
        if self.fast_fraction is not None:
            parts.append(f"f{self.fast_fraction:g}")
        return "/".join(parts)


@dataclass
class SweepResult:
    """All grid points, with query and rendering helpers."""

    points: List[SweepPoint]

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def where(self, **criteria) -> List[SweepPoint]:
        """Points matching every given field value.

        Unknown criteria names raise :class:`AttributeError` immediately —
        a typo like ``where(modle="lstm")`` used to return ``[]`` for a
        non-empty grid, which reads as "no matches" instead of "bad query".
        """
        known = {field.name for field in fields(SweepPoint)} | {"ok", "label"}
        for key in criteria:
            if key not in known:
                raise AttributeError(
                    f"SweepPoint has no attribute {key!r} "
                    f"(queryable: {', '.join(sorted(known))})"
                )
        out = []
        for point in self.points:
            if all(getattr(point, key) == value for key, value in criteria.items()):
                out.append(point)
        return out

    def best_policy(self, model: str, fast_fraction: Optional[float] = None) -> str:
        """Fastest successful policy for a model (at one fraction if given).

        Ties on step time break lexicographically by policy name, so the
        answer does not depend on grid enumeration order.
        """
        candidates = [
            p
            for p in self.points
            if p.model == model
            and p.ok
            and (fast_fraction is None or p.fast_fraction == fast_fraction)
        ]
        if not candidates:
            raise ValueError(f"no successful points for model {model!r}")
        return min(candidates, key=lambda p: (p.metrics.step_time, p.policy)).policy

    def to_table(self, value: str = "step_time") -> str:
        """Models x policies matrix of a metric (first fraction per pair)."""
        models = sorted({p.model for p in self.points})
        policies = sorted({p.policy for p in self.points})
        rows = []
        for model in models:
            cells: List[object] = [model]
            for policy in policies:
                match = next(
                    (p for p in self.points if p.model == model and p.policy == policy),
                    None,
                )
                if match is None:
                    cells.append("-")
                elif not match.ok:
                    cells.append(match.failure)
                else:
                    cells.append(f"{getattr(match.metrics, value):.4g}")
            rows.append(tuple(cells))
        return format_table(("model",) + tuple(policies), rows, title=f"sweep: {value}")


@dataclass(frozen=True)
class _PointSpec:
    """Everything one grid point needs to run, in any process.

    ``index`` is the point's position in the deterministic serial
    enumeration order; the parallel runner merges by it, so the returned
    :class:`SweepResult` is identical whatever order workers finish in.
    """

    index: int
    policy: str
    model: str
    batch_size: Optional[int]
    fast_fraction: Optional[float]
    chaos: Optional[ChaosConfig]
    platform: Platform
    trace: bool
    pressure: Optional[PressureConfig]
    insight: bool = False
    #: admission controller name (built fresh in the running process —
    #: controllers are stateful, so instances must never cross points).
    admission: Optional[str] = None
    admission_args: Optional[Dict[str, object]] = None


def _enumerate_grid(
    policies: Sequence[str],
    models: Sequence[str],
    fast_fractions: Sequence[Optional[float]],
    batch_sizes: Optional[Dict[str, int]],
    platform: Platform,
    chaos: Optional[ChaosConfig],
    trace: bool,
    pressure: Optional[PressureConfig],
    insight: bool = False,
    admission: Optional[str] = None,
    admission_args: Optional[Dict[str, object]] = None,
) -> List[_PointSpec]:
    """The grid in serial order — a pure function of the sweep arguments.

    Chaos reseeding happens here (from the point's own coordinates via
    :func:`point_seed`), so a spec fully determines its point's fault
    sequence before any process runs anything.
    """
    specs: List[_PointSpec] = []
    for model in models:
        batch = (batch_sizes or {}).get(model)
        for policy in policies:
            for fraction in fast_fractions:
                effective = (
                    None if policy in ("slow-only", "fast-only") else fraction
                )
                point_chaos = chaos
                if chaos is not None:
                    point_chaos = chaos.reseeded(
                        point_seed(chaos.seed, policy, model, batch, effective)
                    )
                specs.append(
                    _PointSpec(
                        index=len(specs),
                        policy=policy,
                        model=model,
                        batch_size=batch,
                        fast_fraction=effective,
                        chaos=point_chaos,
                        platform=platform,
                        trace=trace,
                        pressure=pressure,
                        insight=insight,
                        admission=admission,
                        admission_args=admission_args,
                    )
                )
                if policy in ("slow-only", "fast-only"):
                    break  # fraction-independent: one point suffices
    return specs


def _run_point(spec: _PointSpec) -> SweepPoint:
    """Execute one grid point; failures become recorded points."""
    tracer = None
    if spec.trace:
        from repro.obs import EventTracer

        tracer = EventTracer()
    collector = None
    if spec.insight:
        from repro.obs.insight import InsightCollector

        collector = InsightCollector()

    def captured() -> Optional[Tuple]:
        return None if tracer is None else tuple(tracer.events)

    try:
        metrics = run_policy(
            spec.policy,
            model=spec.model,
            batch_size=spec.batch_size,
            platform=spec.platform,
            fast_fraction=spec.fast_fraction,
            chaos=spec.chaos,
            tracer=tracer,
            pressure=spec.pressure,
            insight=collector,
            admission=spec.admission,
            admission_args=spec.admission_args,
        )
        report = None
        if collector is not None:
            report = collector.report(
                meta={"policy": spec.policy, "model": spec.model}
            )
        return SweepPoint(
            spec.policy, spec.model, spec.batch_size, spec.fast_fraction,
            metrics, events=captured(), insight=report,
        )
    except UnsupportedModelError:
        return SweepPoint(
            spec.policy, spec.model, spec.batch_size, spec.fast_fraction,
            None, "unsupported", events=captured(),
        )
    except OOM_ERRORS:
        return SweepPoint(
            spec.policy, spec.model, spec.batch_size, spec.fast_fraction,
            None, "oom", events=captured(),
        )


def _init_worker(scalar: bool) -> None:
    """Pool initializer: mirror the parent's accounting-path flag.

    The scalar/vectorized switch is process-global state, so a spawned
    worker (which does not inherit the parent's in-memory flag) must be
    told explicitly; under fork this is a harmless re-set.
    """
    accel.set_scalar_path(scalar)


def _run_point_indexed(spec: _PointSpec) -> Tuple[int, SweepPoint]:
    return spec.index, _run_point(spec)


def sweep(
    policies: Sequence[str],
    models: Sequence[str],
    fast_fractions: Sequence[Optional[float]] = (0.2,),
    batch_sizes: Optional[Dict[str, int]] = None,
    platform: Platform = OPTANE_HM,
    chaos: Optional[ChaosConfig] = None,
    trace: bool = False,
    pressure: Optional[PressureConfig] = None,
    workers: int = 1,
    insight: bool = False,
    admission: Optional[str] = None,
    admission_args: Optional[Dict[str, object]] = None,
) -> SweepResult:
    """Run the cartesian product and collect every outcome.

    Policies named ``slow-only``/``fast-only`` ignore the fraction (their
    machines are unconstrained); failures become recorded points rather
    than exceptions, so a single infeasible corner does not kill a grid.

    With ``chaos`` given, every point runs under fault injection; each
    point's injector is reseeded with :func:`point_seed` so its fault
    sequence depends only on the point's own coordinates (and the base
    seed), never on grid order — which is also what makes the parallel
    runner safe to use with chaos.

    With ``trace=True`` every point runs with its own fresh
    :class:`repro.obs.EventTracer` and the captured events land on
    :attr:`SweepPoint.events` (each point's timeline starts at 0; use
    :func:`repro.obs.combine_chrome` to view them side by side).

    With ``pressure`` given, every point runs under the same
    :class:`~repro.mem.pressure.PressureConfig` (the governor holds no
    random state, so no per-point reseeding is needed).

    With ``insight=True`` every point runs with its own fresh
    :class:`repro.obs.InsightCollector` and the finalized canonical
    artifact dict lands on :attr:`SweepPoint.insight` (points that fail
    before finalize keep ``None``).  Timing is unaffected either way —
    insight observes the simulation, it never prices anything.

    With ``admission`` given (a registered controller name, see
    :data:`repro.mem.admission.CONTROLLERS`), every point runs with a
    *fresh* controller built from ``admission_args`` — controllers are
    stateful, so instances are constructed in the running process rather
    than shared across points.

    With ``workers > 1`` the grid points run on a multiprocessing pool.
    Every point is an isolated simulation keyed by its own spec (chaos
    already reseeded per point), so the result is merged back into serial
    enumeration order by spec index and is byte-identical to ``workers=1``
    no matter which worker finishes first.  ``workers=1`` never touches
    multiprocessing.
    """
    if not policies or not models:
        raise ValueError("need at least one policy and one model")
    if not fast_fractions:
        raise ValueError("need at least one fast fraction (use (None,) for default)")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    specs = _enumerate_grid(
        policies, models, fast_fractions, batch_sizes,
        platform, chaos, trace, pressure, insight,
        admission, admission_args,
    )
    if workers == 1 or len(specs) == 1:
        return SweepResult(points=[_run_point(spec) for spec in specs])

    import multiprocessing

    merged: List[Optional[SweepPoint]] = [None] * len(specs)
    ctx = multiprocessing.get_context()
    with ctx.Pool(
        processes=min(workers, len(specs)),
        initializer=_init_worker,
        initargs=(accel.scalar_enabled(),),
    ) as pool:
        for index, point in pool.imap_unordered(_run_point_indexed, specs):
            merged[index] = point
    assert all(point is not None for point in merged)
    return SweepResult(points=merged)  # type: ignore[arg-type]
