"""Serving-scale resilience: open-loop traffic at the cluster boundary.

The training-centric harnesses (:mod:`repro.harness.runner`,
:mod:`repro.harness.cluster`) run a *closed* set of workloads to
completion.  This package adds the serving regime on top of the same
machine and engine: jobs arrive on their own open-loop schedule, pass an
SLO-aware admission policy with a bounded queue, retry with jittered
backoff when shed, survive (or don't) machine-failure episodes via
checkpoint/restart, and land in a latency/goodput/SLO report that is
byte-identical for a fixed seed.

Quickstart::

    from repro.serve import JobTemplate, PoissonArrivals, ServeConfig, serve

    mix = [
        JobTemplate(name="train", model="resnet32", steps=3, slo=2.0),
        JobTemplate(name="infer", model="mobilenet", steps=1, slo=0.5, weight=4.0),
    ]
    report = serve(
        PoissonArrivals(rate=20.0, horizon=1.0, templates=mix, seed=7),
        ServeConfig(seed=7, slots=2, admission="edf", queue_limit=8),
        fast_fraction=0.5,
    )
    print(report.p99, report.slo_attainment)
"""

from repro.serve.admission import (
    ADMISSION_POLICIES,
    AdmissionPolicy,
    EdfAdmission,
    FifoAdmission,
    WatermarkShedding,
    make_admission,
)
from repro.serve.arrivals import (
    Arrival,
    JobTemplate,
    PoissonArrivals,
    TraceArrivals,
)
from repro.serve.server import (
    Job,
    JobTimeout,
    MachineOffline,
    ServeConfig,
    ServeReport,
    Server,
    serve,
)

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionPolicy",
    "Arrival",
    "EdfAdmission",
    "FifoAdmission",
    "Job",
    "JobTemplate",
    "JobTimeout",
    "MachineOffline",
    "PoissonArrivals",
    "ServeConfig",
    "ServeReport",
    "Server",
    "TraceArrivals",
    "WatermarkShedding",
    "make_admission",
    "serve",
]
