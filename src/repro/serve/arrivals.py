"""Open-loop job arrival processes for the serving harness.

A serving system's load is *open loop*: requests arrive on their own
schedule whether or not the machine can absorb them, which is what makes
overload a real operating point instead of an impossibility.  This module
turns a seeded description of traffic — a Poisson rate over a weighted mix
of job templates, or an explicit trace — into a concrete, fully
deterministic arrival schedule that :class:`repro.serve.server.Server`
replays on the discrete-event engine.

Determinism contract: the schedule is precomputed from per-concern
``random.Random`` streams seeded from ``(seed, concern)`` before the engine
runs, so the arrival sequence is a pure function of the config — it cannot
be perturbed by how the simulation interleaves, and the same seed yields a
byte-identical workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.dnn.graph import Graph
from repro.models.zoo import build_model

__all__ = ["JobTemplate", "Arrival", "PoissonArrivals", "TraceArrivals"]


@dataclass(frozen=True)
class JobTemplate:
    """One job class in the traffic mix.

    A template describes everything needed to run one job instance: the
    model (or an explicit graph), the placement policy, how many steady
    steps constitute the job, and its service-level objective.  Short
    ``steps`` with a tight ``slo`` models an inference request; larger
    ``steps`` with a loose ``slo`` models a training job.

    Attributes:
        name: template label; job instances are named ``{name}#{index}``.
        model: zoo model name (exactly one of ``model``/``graph``).
        graph: explicit graph (exactly one of ``model``/``graph``).
        policy: placement policy name (see :data:`repro.baselines.POLICIES`).
        batch_size: optional batch-size override for zoo models.
        scale: zoo scale preset (``"small"``/``"large"``).
        steps: steady training/inference steps per job (> 0); Sentinel
            policies run their warm-up/profiling steps on top.
        slo: deadline in simulated seconds from *arrival* (not dispatch);
            a job finishing later still completes but misses its SLO.
        weight: relative draw weight in a Poisson mix (> 0).
    """

    name: str
    model: Optional[str] = None
    graph: Optional[Graph] = None
    policy: str = "sentinel"
    batch_size: Optional[int] = None
    scale: str = "small"
    steps: int = 1
    slo: float = 1.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if (self.graph is None) == (self.model is None):
            raise ValueError(
                f"template {self.name!r}: provide exactly one of model= or graph="
            )
        if self.steps <= 0:
            raise ValueError(
                f"template {self.name!r}: steps must be positive, got {self.steps!r}"
            )
        if self.slo <= 0.0:
            raise ValueError(
                f"template {self.name!r}: slo must be positive, got {self.slo!r}"
            )
        if self.weight <= 0.0:
            raise ValueError(
                f"template {self.name!r}: weight must be positive, got "
                f"{self.weight!r}"
            )

    def build_graph(self) -> Graph:
        """A fresh graph for one job instance (zoo builds are deterministic)."""
        if self.graph is not None:
            return self.graph
        return build_model(self.model, batch_size=self.batch_size, scale=self.scale)


@dataclass(frozen=True)
class Arrival:
    """One job entering the system: ``template`` arriving at ``time``."""

    time: float
    template: JobTemplate
    index: int

    @property
    def job_name(self) -> str:
        return f"{self.template.name}#{self.index}"


@dataclass(frozen=True)
class PoissonArrivals:
    """Seeded open-loop Poisson traffic over a weighted template mix.

    Inter-arrival gaps are exponential draws at ``rate`` jobs/second from
    the ``(seed, "arrivals")`` stream; each arrival's template is a
    weighted draw from the independent ``(seed, "mix")`` stream, so adding
    a template to the mix never shifts the arrival *times*.

    Attributes:
        rate: mean arrivals per simulated second (> 0).
        horizon: arrivals occur strictly before this time (> 0).
        templates: non-empty traffic mix with unique names.
        seed: RNG seed; the schedule is a pure function of it.
    """

    rate: float
    horizon: float
    templates: Sequence[JobTemplate] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ValueError(f"arrival rate must be positive, got {self.rate!r}")
        if self.horizon <= 0.0:
            raise ValueError(f"horizon must be positive, got {self.horizon!r}")
        if not self.templates:
            raise ValueError("PoissonArrivals needs at least one JobTemplate")
        names = [t.name for t in self.templates]
        if len(set(names)) != len(names):
            raise ValueError(f"template names must be unique, got {names!r}")

    def schedule(self) -> List[Arrival]:
        """The concrete arrival list, sorted by time (deterministic)."""
        gaps = random.Random(f"{self.seed}:arrivals")
        mix = random.Random(f"{self.seed}:mix")
        templates = list(self.templates)
        weights = [t.weight for t in templates]
        total = sum(weights)
        arrivals: List[Arrival] = []
        t = gaps.expovariate(self.rate)
        index = 0
        while t < self.horizon:
            pick = mix.random() * total
            chosen = templates[-1]
            for template, weight in zip(templates, weights):
                if pick < weight:
                    chosen = template
                    break
                pick -= weight
            arrivals.append(Arrival(time=t, template=chosen, index=index))
            index += 1
            t += gaps.expovariate(self.rate)
        return arrivals


@dataclass(frozen=True)
class TraceArrivals:
    """Replay an explicit arrival trace (time, template-name) pairs.

    For regression scenarios where the exact arrival pattern matters more
    than its statistics — e.g. a synchronized burst that must overflow the
    admission queue.

    Attributes:
        trace: ``(time, template_name)`` pairs; times must be >= 0 and
            non-decreasing.
        templates: the template catalogue the trace references.
    """

    trace: Sequence = field(default_factory=tuple)
    templates: Sequence[JobTemplate] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        catalogue = {t.name for t in self.templates}
        last = 0.0
        for entry in self.trace:
            when, name = entry
            if when < last:
                raise ValueError(
                    f"trace times must be non-decreasing, got {when!r} after "
                    f"{last!r}"
                )
            last = when
            if name not in catalogue:
                raise ValueError(
                    f"trace references unknown template {name!r}; catalogue "
                    f"has {sorted(catalogue)}"
                )

    def schedule(self) -> List[Arrival]:
        by_name = {t.name: t for t in self.templates}
        return [
            Arrival(time=when, template=by_name[name], index=index)
            for index, (when, name) in enumerate(self.trace)
        ]
