"""The open-loop serving harness: arrivals → admission → execution → report.

:class:`Server` replays a precomputed arrival schedule on the discrete-event
engine and pushes each job through the serving lifecycle:

1. **Arrival.**  A :data:`~repro.sim.engine.EventKind.SERVE` event fires at
   the job's arrival instant; the admission policy decides queue-or-shed.
2. **Shed → retry.**  A shed job retries with seeded-jittered exponential
   backoff up to ``max_attempts`` total arrivals, then counts as
   permanently shed.
3. **Dispatch.**  When an execution slot frees up (bounded concurrency),
   the admission policy picks the next queued job; it runs as an engine
   process — a fresh :class:`~repro.dnn.executor.Executor` on the shared
   machine, contending for channels and fast-tier capacity with every
   other in-flight job.
4. **Timeout.**  A per-attempt timeout interrupts the process
   (:class:`JobTimeout`); the job tears down, freeing its memory.
5. **Failure episodes.**  When a :class:`repro.chaos.EpisodeDriver`
   machine-offline episode begins, every in-flight job is interrupted
   (:class:`MachineOffline`), tears down, and — restart budget permitting —
   re-enqueues *from its last completed steady step* (checkpoint/restart
   semantics: completed steady steps are never re-run, the policy's
   warm-up/profiling phase is).  Budget exhausted ⇒ permanent failure.
6. **Report.**  Completion latency is measured from *arrival* (queueing,
   backoff, and restarts all count against the SLO); the report carries
   nearest-rank p50/p95/p99, goodput, SLO attainment, and every
   shed/retry/restart/expiry count, and serializes canonically —
   same seed ⇒ byte-identical JSON.

Every lifecycle decision is emitted twice: as a typed ``SERVE`` engine
event (for subscribers) and as a ``serve``-category trace record (for the
Chrome timeline), so overload behaviour is fully observable.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.chaos import EpisodeConfig, EpisodeDriver, generate_episodes
from repro.core.runtime import SentinelPolicy
from repro.dnn.executor import Executor
from repro.errors import UncorrectableMemoryError
from repro.harness.cluster import DEFAULT_CLUSTER_PRESSURE
from repro.harness.runner import OOM_ERRORS, _sentinel_config, make_policy
from repro.mem.machine import Machine
from repro.mem.platforms import Platform
from repro.mem.ras import RASConfig
from repro.serve.admission import AdmissionPolicy, make_admission
from repro.serve.arrivals import Arrival
from repro.sim.engine import Engine, EventKind, Interrupt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.insight import InsightCollector
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import EventTracer

__all__ = [
    "JobTimeout",
    "MachineOffline",
    "Job",
    "ServeConfig",
    "ServeReport",
    "Server",
    "serve",
]

#: Sentinel marker for "caller did not pass pressure=".
_UNSET = object()


class JobTimeout(Interrupt):
    """Thrown into a job process when its per-attempt timeout expires."""


class MachineOffline(Interrupt):
    """Thrown into every in-flight job when a machine-offline episode begins."""


# Job lifecycle states (plain strings so reports serialize directly).
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
SHED = "shed"
EXPIRED = "expired"
TIMED_OUT = "timed-out"
FAILED = "failed"
INFEASIBLE = "infeasible"


class Job:
    """One job instance moving through the serving lifecycle.

    Attributes:
        arrival: the schedule entry that created this job.
        state: current lifecycle state (module-level string constants).
        attempts: admission attempts so far (first arrival counts as one).
        restarts: failure-episode restarts consumed.
        completed_steady: steady steps finished across all attempts — the
            checkpoint a restart resumes from.
        deadline: absolute SLO deadline (``arrival.time + template.slo``).
    """

    def __init__(self, arrival: Arrival) -> None:
        self.arrival = arrival
        self.template = arrival.template
        self.name = arrival.job_name
        self.state = QUEUED
        self.attempts = 0
        self.restarts = 0
        self.completed_steady = 0
        self.deadline = arrival.time + arrival.template.slo
        self.admitted_at: Optional[float] = None
        self.dispatched_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.process = None
        self.timeout_event = None

    @property
    def latency(self) -> Optional[float]:
        """Arrival-to-completion latency (None unless completed)."""
        if self.finished_at is None or self.state != COMPLETED:
            return None
        return self.finished_at - self.arrival.time

    @property
    def slo_met(self) -> bool:
        return (
            self.state == COMPLETED
            and self.finished_at is not None
            and self.finished_at <= self.deadline
        )

    def record(self) -> Dict[str, object]:
        """JSON-ready summary of this job's outcome."""
        return {
            "name": self.name,
            "template": self.template.name,
            "state": self.state,
            "arrival": self.arrival.time,
            "deadline": self.deadline,
            "finished": self.finished_at,
            "latency": self.latency,
            "slo_met": self.slo_met,
            "attempts": self.attempts,
            "restarts": self.restarts,
            "completed_steps": self.completed_steady,
        }


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for one serving run (arrival schedule supplied separately).

    Attributes:
        seed: seeds the backoff-jitter stream; arrival schedules and
            episode timelines carry their own seeds.
        slots: maximum concurrently-executing jobs (>= 1).  Bounded
            concurrency is what turns overload into queueing instead of
            unbounded memory thrash.
        admission: admission policy name (``"fifo"``/``"edf"``/
            ``"watermark"``).
        queue_limit: bounded-queue depth for the admission policy.
        timeout: per-attempt execution timeout in simulated seconds
            (``None`` disables; timed-out jobs free their memory and count
            as failures).
        max_attempts: total admission attempts per job including the first
            (>= 1); shed jobs retry with jittered exponential backoff until
            exhausted.
        backoff_base: first retry delay in seconds; doubles per attempt.
        backoff_cap: upper bound on any single backoff delay.
        restart_budget: failure-episode restarts allowed per job before it
            counts as permanently failed.
        episodes: optional failure timeline — either a
            :class:`repro.chaos.EpisodeConfig` (a seeded generator) or an
            explicit tuple of :class:`repro.chaos.Episode` windows (for
            regression scenarios that need exact outage timing).
    """

    seed: int = 0
    slots: int = 2
    admission: str = "fifo"
    queue_limit: int = 8
    timeout: Optional[float] = None
    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    restart_budget: int = 2
    episodes: Optional[object] = None

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots!r}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.timeout is not None and self.timeout <= 0.0:
            raise ValueError(f"timeout must be positive, got {self.timeout!r}")
        if self.backoff_base <= 0.0 or self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"need 0 < backoff_base <= backoff_cap, got "
                f"base={self.backoff_base!r} cap={self.backoff_cap!r}"
            )
        if self.restart_budget < 0:
            raise ValueError(
                f"restart_budget must be >= 0, got {self.restart_budget!r}"
            )


def _percentile(sorted_values: List[float], pct: float) -> float:
    """Nearest-rank percentile (exact, no interpolation); 0.0 when empty."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(pct / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class ServeReport:
    """Outcome of one serving run.

    ``counts`` uses dotted keys (``serve.admitted``, ``serve.shed.queue-full``,
    ``serve.restart``, ...) mirroring the machine's stats registry; latency
    aggregates cover *completed* jobs only (shed and failed jobs never get a
    completion latency — they are accounted in the counts and in
    ``slo_attainment``'s denominator instead).
    """

    seed: int
    makespan: float
    counts: Dict[str, int] = field(default_factory=dict)
    jobs: List[Dict[str, object]] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    episodes: int = 0

    @property
    def total_jobs(self) -> int:
        return len(self.jobs)

    @property
    def completed(self) -> int:
        return self.counts.get("serve.completed", 0)

    @property
    def slo_met(self) -> int:
        return self.counts.get("serve.slo_met", 0)

    @property
    def slo_attainment(self) -> float:
        """Fraction of *all* jobs that completed within their SLO."""
        return self.slo_met / self.total_jobs if self.total_jobs else 0.0

    @property
    def goodput(self) -> float:
        """SLO-meeting completions per simulated second."""
        return self.slo_met / self.makespan if self.makespan > 0 else 0.0

    @property
    def p50(self) -> float:
        return _percentile(self.latencies, 50.0)

    @property
    def p95(self) -> float:
        return _percentile(self.latencies, 95.0)

    @property
    def p99(self) -> float:
        return _percentile(self.latencies, 99.0)

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def max_latency(self) -> float:
        return self.latencies[-1] if self.latencies else 0.0

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON: sorted keys, fixed separators — same run, same bytes."""
        payload = {
            "schema": "serve-report/v1",
            "seed": self.seed,
            "makespan": self.makespan,
            "total_jobs": self.total_jobs,
            "completed": self.completed,
            "slo_met": self.slo_met,
            "slo_attainment": self.slo_attainment,
            "goodput": self.goodput,
            "latency": {
                "p50": self.p50,
                "p95": self.p95,
                "p99": self.p99,
                "mean": self.mean_latency,
                "max": self.max_latency,
            },
            "counts": dict(sorted(self.counts.items())),
            "episodes": self.episodes,
            "jobs": self.jobs,
        }
        separators = (",", ": ") if indent is not None else (",", ":")
        return json.dumps(
            payload, indent=indent, sort_keys=True, separators=separators
        )


class Server:
    """Orchestrates one serving run on one machine.

    Args:
        arrivals: an object with ``.schedule() -> List[Arrival]``
            (:class:`~repro.serve.arrivals.PoissonArrivals` or
            :class:`~repro.serve.arrivals.TraceArrivals`).
        config: serving tunables (:class:`ServeConfig`).
        machine: run on an existing machine; otherwise one is built from
            ``platform`` (default Optane) with the cluster harness's
            spill-to-slow pressure governor.
        fast_fraction: size fast memory as this fraction of (largest
            template peak × slots) — the footprint of a full complement of
            the biggest jobs.  ``fast_capacity`` (bytes) wins over it.
        pressure / tracer / metrics: forwarded to the built machine
            (same contract as :func:`repro.harness.cluster.run_concurrent`).
        ras: optional :class:`~repro.mem.ras.RASConfig` for the built
            machine.  A job whose recovery ladder exhausts fails alone
            (``serve.ue``) under the same restart budget as offline
            episodes; the machine itself stays up.
        insight: optional :class:`~repro.obs.InsightCollector`.  Each job
            attempt runs under its own collector scope (tensor keys are
            ``(job-name, tid)``, so per-job tid namespaces never collide),
            and every terminal job outcome feeds the windowed SLO
            burn-rate aggregation — including permanently shed and
            expired jobs, which never touched the machine but did miss
            their SLO.  The server finalizes the collector at the end of
            :meth:`run`.
        migration_admission: optional *migration* admission controller for
            the built machine — either an
            :class:`~repro.mem.admission.AdmissionController` instance or
            a registered controller name (see
            :data:`repro.mem.admission.CONTROLLERS`), built with
            ``migration_admission_args``.  Distinct from ``config.admission``,
            which decides which *jobs* enter the queue; this decides which
            *tensor migrations* the machine performs.
    """

    def __init__(
        self,
        arrivals,
        config: ServeConfig,
        machine: Optional[Machine] = None,
        platform: Optional[Platform] = None,
        fast_fraction: Optional[float] = None,
        fast_capacity: Optional[int] = None,
        pressure=_UNSET,
        tracer: Optional["EventTracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        ras: Optional[RASConfig] = None,
        insight: Optional["InsightCollector"] = None,
        migration_admission: Optional[object] = None,
        migration_admission_args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.config = config
        self.schedule = arrivals.schedule()
        self.admission: AdmissionPolicy = make_admission(
            config.admission, queue_limit=config.queue_limit
        )
        templates = {a.template.name: a.template for a in self.schedule}
        if machine is None:
            if platform is None:
                from repro.mem.platforms import OPTANE_HM

                platform = OPTANE_HM
            if fast_capacity is None and fast_fraction is not None:
                if fast_fraction <= 0:
                    raise ValueError(
                        f"fast fraction must be positive: {fast_fraction!r}"
                    )
                peaks = [
                    t.build_graph().peak_memory_bytes()
                    for t in templates.values()
                ]
                reference = max(peaks) * config.slots if peaks else 0
                fast_capacity = max(
                    platform.page_size, int(reference * fast_fraction)
                )
            governor = DEFAULT_CLUSTER_PRESSURE if pressure is _UNSET else pressure
            controller = migration_admission
            if isinstance(migration_admission, str):
                from repro.mem.admission import make_admission as make_migration

                controller = make_migration(
                    migration_admission, **(migration_admission_args or {})
                )
            elif migration_admission_args:
                raise ValueError(
                    "migration_admission_args= requires migration_admission= "
                    "to be a controller name"
                )
            machine = Machine.for_platform(
                platform,
                fast_capacity=fast_capacity,
                tracer=tracer,
                pressure=governor,
                metrics=metrics,
                ras=ras,
                insight=insight,
                admission=controller,
            )
        else:
            if tracer is not None and machine.tracer is None:
                raise ValueError(
                    "pass the tracer to the Machine when supplying one explicitly"
                )
            if insight is not None and machine.insight is None:
                raise ValueError(
                    "pass the insight collector to the Machine when supplying "
                    "one explicitly"
                )
            if migration_admission is not None and machine.admission is None:
                raise ValueError(
                    "pass the admission controller to the Machine when "
                    "supplying one explicitly"
                )
        self.machine = machine
        self.insight = machine.insight
        # Stable per-job Chrome tids: 0 is the serve lifecycle track, jobs
        # get 1..N in schedule (arrival) order — independent of dispatch
        # interleaving, retries, and restarts, so reruns diff cleanly.
        self._job_tids: Dict[str, int] = {"serve": 0}
        for arrival in self.schedule:
            if arrival.job_name not in self._job_tids:
                self._job_tids[arrival.job_name] = len(self._job_tids)
        self.engine = Engine()
        self._backoff = random.Random(f"{config.seed}:backoff")
        self._queue: List[Job] = []
        self._running: Dict[str, Job] = {}
        self._jobs: List[Job] = []
        self._counts: Dict[str, int] = {}
        self._episode_driver: Optional[EpisodeDriver] = None

    # ------------------------------------------------------------- plumbing

    @property
    def _tracer(self) -> Optional["EventTracer"]:
        return self.machine.tracer

    def job_tids(self) -> Dict[str, int]:
        """Stable track→tid map for :func:`repro.obs.to_chrome`.

        Tids are pinned by schedule order (``serve`` is 0), so two runs of
        the same schedule export byte-identical Chrome JSON even when
        dispatch interleaving differs.
        """
        return dict(self._job_tids)

    def _count(self, key: str, n: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + n
        self.machine.stats.counter(key).add(n)

    def _mark(self, name: str, job: Job, **extra) -> None:
        """Emit one lifecycle decision: SERVE engine event + trace instant."""
        payload = {"job": job.name, "template": job.template.name}
        payload.update(extra)
        self.engine.emit(EventKind.SERVE, name=name, payload=payload)
        if self._tracer is not None:
            self._tracer.instant(
                name, "serve", ts=self.engine.now, track="serve", **payload
            )

    # ------------------------------------------------------------ lifecycle

    def run(self) -> ServeReport:
        """Play the whole schedule to completion and return the report."""
        engine = self.engine
        machine = self.machine
        machine.bind_engine(engine)
        if self._tracer is not None:
            self._tracer.bind_clock(engine.clock)
        machine.stats.bind_clock(engine.clock)
        episodes = []
        configured = self.config.episodes
        if isinstance(configured, EpisodeConfig):
            if configured.enabled:
                episodes = generate_episodes(configured)
        elif configured is not None:
            episodes = list(configured)
        episode_count = len(episodes)
        if episodes:
            self._episode_driver = EpisodeDriver(machine, episodes)
            self._episode_driver.arm(engine)
            engine.subscribe(EventKind.FAULT, self._on_fault)
        for arrival in self.schedule:
            job = Job(arrival)
            self._jobs.append(job)
            engine.schedule_at(
                arrival.time,
                EventKind.SERVE,
                name="arrival",
                payload={"job": job.name},
                callback=lambda _ev, j=job: self._on_arrival(j),
            )
        engine.run()
        engine.ensure_quiescent()
        if self.insight is not None:
            self.insight.finalize(engine.now)
        latencies = sorted(
            job.latency for job in self._jobs if job.latency is not None
        )
        return ServeReport(
            seed=self.config.seed,
            makespan=engine.now,
            counts=dict(self._counts),
            jobs=[job.record() for job in self._jobs],
            latencies=latencies,
            episodes=episode_count,
        )

    def _on_arrival(self, job: Job) -> None:
        now = self.engine.now
        job.attempts += 1
        self._count("serve.arrivals")
        admitted, reason = self.admission.admit(
            job, self._queue, self.machine, now
        )
        if admitted:
            job.state = QUEUED
            if job.admitted_at is None:
                job.admitted_at = now
            self._queue.append(job)
            self._count("serve.admitted")
            self._mark("admit", job, attempt=job.attempts)
            self._pump()
            return
        self._count("serve.shed")
        self._count(f"serve.shed.{reason}")
        self._mark("shed", job, reason=reason, attempt=job.attempts)
        if job.attempts < self.config.max_attempts:
            delay = min(
                self.config.backoff_cap,
                self.config.backoff_base * (2.0 ** (job.attempts - 1)),
            )
            # Jitter in [0.5, 1.5) of the nominal delay, from the seeded
            # backoff stream — retries desynchronize deterministically.
            delay *= 0.5 + self._backoff.random()
            self._count("serve.retry")
            self._mark("retry", job, delay=delay, attempt=job.attempts)
            self.engine.schedule(
                delay,
                EventKind.SERVE,
                name="re-arrival",
                payload={"job": job.name},
                callback=lambda _ev, j=job: self._on_arrival(j),
            )
        else:
            job.state = SHED
            job.finished_at = now
            self._count("serve.shed.permanent")
            self._mark("give-up", job, attempts=job.attempts)
            if self.insight is not None:
                self.insight.on_job_final(job, now)

    def _pump(self) -> None:
        """Dispatch queued jobs while slots are free and the machine is up."""
        while (
            self.machine.online
            and len(self._running) < self.config.slots
        ):
            now = self.engine.now
            job, expired = self.admission.select(self._queue, now)
            for dead in expired:
                dead.state = EXPIRED
                dead.finished_at = now
                self._count("serve.expired")
                self._mark("expire", dead, deadline=dead.deadline)
                if self.insight is not None:
                    self.insight.on_job_final(dead, now)
            if job is None:
                return
            self._dispatch(job)

    def _dispatch(self, job: Job) -> None:
        now = self.engine.now
        template = job.template
        policy = make_policy(template.policy, sentinel_config=_sentinel_config(None))
        # A restart re-runs the policy's warm-up/profiling phase (the fresh
        # policy has no profile) but resumes steady work at the checkpoint:
        # completed steady steps are never executed twice.
        phase = (
            policy.config.warmup_steps + 1
            if isinstance(policy, SentinelPolicy)
            else 0
        )
        remaining = template.steps - job.completed_steady
        insight_scope = None
        observers = ()
        if self.insight is not None:
            insight_scope = self.insight.scope(job.name)
            observers = (insight_scope,)
        executor = Executor(
            template.build_graph(),
            self.machine,
            policy,
            engine=self.engine,
            track=job.name,
            observers=observers,
            tracer=insight_scope,
        )
        job.state = RUNNING
        job.dispatched_at = now
        self._running[job.name] = job
        self._count("serve.dispatched")
        self._mark(
            "dispatch",
            job,
            queue_wait=now - (job.admitted_at if job.admitted_at is not None else now),
            remaining_steps=remaining,
        )
        job.process = self.engine.process(
            self._job_gen(job, executor, phase, phase + remaining),
            name=job.name,
        )
        if self.config.timeout is not None and not job.process.done:
            job.timeout_event = self.engine.schedule(
                self.config.timeout,
                EventKind.TIMER,
                name=f"timeout:{job.name}",
                callback=lambda _ev, j=job: self._fire_timeout(j),
            )

    def _job_gen(self, job: Job, executor: Executor, phase: int, total: int):
        """The job's engine process: run steps, absorb interrupts, clean up."""
        outcome = COMPLETED
        try:
            for index in range(total):
                yield from executor.step_process()
                if index >= phase:
                    job.completed_steady += 1
        except MachineOffline:
            outcome = "offline"
        except JobTimeout:
            outcome = TIMED_OUT
        except UncorrectableMemoryError:
            # The recovery ladder is exhausted for a page this job owns:
            # the blast radius is the job, never the machine.
            outcome = "ue"
        except OOM_ERRORS:
            outcome = INFEASIBLE
        # Teardown runs on *every* exit path: a job leaving the machine —
        # however it leaves — returns its fast/slow capacity to co-tenants.
        executor.teardown()
        self._finish_attempt(job, outcome)

    def _fire_timeout(self, job: Job) -> None:
        proc = job.process
        if job.name in self._running and proc is not None and not proc.done:
            proc.interrupt(
                JobTimeout(
                    f"job {job.name!r} exceeded per-attempt timeout of "
                    f"{self.config.timeout}s"
                )
            )

    def _finish_attempt(self, job: Job, outcome: str) -> None:
        now = self.engine.now
        if job.timeout_event is not None:
            job.timeout_event.cancel()
            job.timeout_event = None
        self._running.pop(job.name, None)
        job.process = None
        if self._tracer is not None and job.dispatched_at is not None:
            self._tracer.complete(
                "job-attempt",
                "serve",
                ts=job.dispatched_at,
                dur=now - job.dispatched_at,
                track=job.name,
                outcome=outcome,
            )
        if outcome == COMPLETED:
            job.state = COMPLETED
            job.finished_at = now
            self._count("serve.completed")
            if job.slo_met:
                self._count("serve.slo_met")
            self._mark(
                "complete",
                job,
                latency=now - job.arrival.time,
                slo_met=job.slo_met,
            )
        elif outcome == "offline":
            self._count("serve.interrupted")
            if job.restarts < self.config.restart_budget:
                job.restarts += 1
                job.state = QUEUED
                self._count("serve.restart")
                self._mark(
                    "restart",
                    job,
                    restart=job.restarts,
                    checkpoint=job.completed_steady,
                )
                # Restarts re-enter the queue directly (the job was already
                # admitted); dispatch resumes once the machine is back up.
                self._queue.append(job)
            else:
                job.state = FAILED
                job.finished_at = now
                self._count("serve.failed")
                self._mark("fail", job, reason="restart-budget-exhausted")
        elif outcome == "ue":
            # Uncorrectable memory error past the recovery ladder: the
            # attempt's data is gone, but the frame was retired, so a
            # restart-budget-permitting retry starts from the checkpoint on
            # healthy pages.  Same budget as machine-offline restarts.
            self._count("serve.ue")
            if job.restarts < self.config.restart_budget:
                job.restarts += 1
                job.state = QUEUED
                self._count("serve.restart")
                self._mark(
                    "restart",
                    job,
                    restart=job.restarts,
                    checkpoint=job.completed_steady,
                    reason="ue",
                )
                self._queue.append(job)
            else:
                job.state = FAILED
                job.finished_at = now
                self._count("serve.failed")
                self._mark("fail", job, reason="ue-restart-budget-exhausted")
        elif outcome == TIMED_OUT:
            job.state = TIMED_OUT
            job.finished_at = now
            self._count("serve.timeout")
            self._mark("timeout", job)
        elif outcome == INFEASIBLE:
            job.state = INFEASIBLE
            job.finished_at = now
            self._count("serve.infeasible")
            self._mark("infeasible", job)
        if self.insight is not None:
            if job.finished_at is not None:
                # Terminal: close the scope and feed the SLO windows.
                self.insight.on_job_final(job, now)
            else:
                # Restarting: close this attempt's tensor timelines only.
                self.insight.on_attempt_end(job.name, now)
        self._pump()

    def _on_fault(self, event) -> None:
        episode = event.payload.get("episode")
        if episode is None:
            return
        if episode.kind != "machine-offline":
            return
        if event.payload.get("phase") == "begin":
            # Interrupt in insertion order — deterministic and matches
            # dispatch order, so restart sequencing is stable.
            for name in list(self._running):
                job = self._running.get(name)
                if job is None or job.process is None or job.process.done:
                    continue
                job.process.interrupt(
                    MachineOffline(
                        f"machine went offline at t={event.time:.6f} with "
                        f"job {job.name!r} in flight"
                    )
                )
        else:
            self._pump()


def serve(
    arrivals,
    config: Optional[ServeConfig] = None,
    **server_kwargs,
) -> ServeReport:
    """Convenience wrapper: build a :class:`Server`, run it, return the report."""
    return Server(
        arrivals, config if config is not None else ServeConfig(), **server_kwargs
    ).run()
