"""Admission control at the cluster boundary.

When jobs arrive faster than the machine completes them, *something* must
give: either latency grows without bound (an unbounded queue) or excess
load is refused early.  Admission policies make that call at two points:

* **on arrival** — :meth:`AdmissionPolicy.admit` decides whether the job
  enters the bounded queue or is shed (the server then applies
  retry/backoff to shed jobs);
* **on dispatch** — :meth:`AdmissionPolicy.select` picks which queued job
  runs next when an execution slot frees up, and may *expire* jobs whose
  deadline already passed (running them would waste the slot on a
  guaranteed SLO miss).

Policies are deliberately small, deterministic, and stateless beyond the
queue the server owns: every decision is a pure function of (job, queue,
machine occupancy, now), so a fixed seed replays the same shed/dispatch
stream byte for byte.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.machine import Machine
    from repro.serve.server import Job

__all__ = [
    "AdmissionPolicy",
    "FifoAdmission",
    "EdfAdmission",
    "WatermarkShedding",
    "ADMISSION_POLICIES",
    "make_admission",
]


class AdmissionPolicy:
    """Base admission policy: a bounded FIFO queue, no other shedding.

    Args:
        queue_limit: maximum jobs waiting for a slot (>= 1); an arrival
            finding the queue full is shed regardless of subclass logic —
            the queue bound is the backstop that keeps waiting time (and
            therefore admitted-job latency) finite under overload.
    """

    name = "fifo"

    def __init__(self, queue_limit: int = 8) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit!r}")
        self.queue_limit = queue_limit

    def admit(self, job: "Job", queue: List["Job"], machine: "Machine", now: float) -> Tuple[bool, str]:
        """Whether ``job`` may enter ``queue`` at ``now``.

        Returns ``(admitted, reason)``; the reason string labels shed
        events in traces and reports (``"queue-full"``, ``"watermark"``...).
        """
        if len(queue) >= self.queue_limit:
            return False, "queue-full"
        return True, "admitted"

    def select(self, queue: List["Job"], now: float) -> Tuple[Optional["Job"], List["Job"]]:
        """Pick the next job to dispatch from ``queue``.

        Returns ``(job, expired)`` where ``job`` is removed from the queue
        (``None`` if the queue is empty) and ``expired`` lists jobs the
        policy dropped because their deadline already passed.  The base
        policy is plain FIFO and never expires.
        """
        if not queue:
            return None, []
        return queue.pop(0), []


class FifoAdmission(AdmissionPolicy):
    """First-come-first-served with a bounded queue (the base behaviour)."""

    name = "fifo"


class EdfAdmission(AdmissionPolicy):
    """Earliest-deadline-first dispatch with expiry at dispatch time.

    Among queued jobs, the one whose SLO deadline is nearest runs first
    (arrival order breaks ties, deterministically).  A job whose deadline
    has already passed when a slot frees up is expired rather than run:
    under overload this sacrifices jobs that are already lost to save ones
    that can still meet their SLO — the classic EDF shed.
    """

    name = "edf"

    def select(self, queue: List["Job"], now: float) -> Tuple[Optional["Job"], List["Job"]]:
        expired = [job for job in queue if job.deadline <= now]
        for job in expired:
            queue.remove(job)
        if not queue:
            return None, expired
        best = min(queue, key=lambda job: (job.deadline, job.arrival.index))
        queue.remove(best)
        return best, expired


class WatermarkShedding(AdmissionPolicy):
    """Load-shedding on fast-tier occupancy and queue depth watermarks.

    Sheds arrivals *early* — before they consume queue space — once the
    system shows distress on either axis:

    * fast-tier occupancy at or above ``occupancy_high`` (the memory is the
      bottleneck resource; admitting more jobs just deepens spill churn);
    * queue depth at or above ``depth_fraction`` of the queue limit
      (waiting time already threatens every queued job's SLO).

    Dispatch order stays FIFO.  This is the serving-layer analogue of the
    pressure governor's watermarks: refuse work at the boundary instead of
    thrashing in the middle.
    """

    name = "watermark"

    def __init__(
        self,
        queue_limit: int = 8,
        occupancy_high: float = 0.95,
        depth_fraction: float = 0.75,
    ) -> None:
        super().__init__(queue_limit=queue_limit)
        if not 0.0 < occupancy_high <= 1.0:
            raise ValueError(
                f"occupancy_high must be in (0, 1], got {occupancy_high!r}"
            )
        if not 0.0 < depth_fraction <= 1.0:
            raise ValueError(
                f"depth_fraction must be in (0, 1], got {depth_fraction!r}"
            )
        self.occupancy_high = occupancy_high
        self.depth_fraction = depth_fraction

    def admit(self, job: "Job", queue: List["Job"], machine: "Machine", now: float) -> Tuple[bool, str]:
        admitted, reason = super().admit(job, queue, machine, now)
        if not admitted:
            return admitted, reason
        occupancy = (
            machine.fast.used / machine.fast.capacity
            if machine.fast.capacity > 0
            else 1.0
        )
        if occupancy >= self.occupancy_high:
            return False, "watermark-occupancy"
        if len(queue) >= max(1, int(self.queue_limit * self.depth_fraction)):
            return False, "watermark-depth"
        return True, "admitted"


#: Registry of admission policies by name (CLI ``--admission`` values).
ADMISSION_POLICIES: Dict[str, Callable[..., AdmissionPolicy]] = {
    "fifo": FifoAdmission,
    "edf": EdfAdmission,
    "watermark": WatermarkShedding,
}


def make_admission(name: str, queue_limit: int = 8) -> AdmissionPolicy:
    """Build a registered admission policy by name."""
    try:
        factory = ADMISSION_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown admission policy {name!r}; available: "
            f"{sorted(ADMISSION_POLICIES)}"
        ) from None
    return factory(queue_limit=queue_limit)
