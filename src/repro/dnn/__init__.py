"""Miniature dataflow DNN framework.

This package plays the role TensorFlow plays in the paper: it represents a
training step as a directed graph of operations grouped into layers, executes
the step against the simulated heterogeneous-memory machine, and exposes the
allocation hooks (``AllocateRaw``-style) that Sentinel and the baselines
intercept.

The framework does not compute numerics — operations carry FLOP counts and
per-tensor main-memory access descriptors instead — because every quantity
the paper's evaluation depends on (tensor sizes, lifetimes, access counts,
op timing, page placement) is captured by that cost model.
"""

from repro.dnn.tensor import Tensor, TensorKind
from repro.dnn.ops import Op, TensorAccess
from repro.dnn.graph import Graph, GraphBuilder, GraphError, Layer, Phase
from repro.dnn.alloc import (
    Allocator,
    GroupedAllocator,
    PackedAllocator,
    PageAlignedAllocator,
    RunShare,
    TensorMapping,
)
from repro.dnn.policy import AccessCharge, PlacementPolicy
from repro.dnn.trace import TraceRecord, Tracer
from repro.dnn.arena import ArenaAllocator
from repro.dnn.executor import Executor, StepObserver, StepResult

__all__ = [
    "Tensor",
    "TensorKind",
    "Op",
    "TensorAccess",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "Layer",
    "Phase",
    "Allocator",
    "PackedAllocator",
    "PageAlignedAllocator",
    "GroupedAllocator",
    "TensorMapping",
    "RunShare",
    "PlacementPolicy",
    "AccessCharge",
    "Executor",
    "StepResult",
    "StepObserver",
    "Tracer",
    "TraceRecord",
    "ArenaAllocator",
]
