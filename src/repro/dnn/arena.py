"""A BFC-style arena allocator with cross-step page reuse.

TensorFlow's best-fit-with-coalescing allocator grabs pages from the OS
once and recycles them: a freed chunk goes onto a free list and is handed
to the next allocation that fits.  Two consequences matter for the paper:

* **page reuse across steps** — the same OS pages back the same (or
  different!) tensors step after step, so their NUMA placement and kernel
  page heat persist.  This is why first-touch and active-list policies see
  stable page behaviour despite tensors being logically reallocated every
  step, and it is the mechanism behind our IAL baseline's warm placement.
* **false sharing in time** — a page's access counters accumulate over
  *successive tenants*, so a page that once hosted a hot tensor keeps
  looking hot while holding a cold one (Observation 3's page-level
  misclassification).

The arena requests page runs from the machine like any allocator, but only
returns them when :meth:`ArenaAllocator.release_all` is called — freed
chunks go to a size-bucketed free list instead.  Chunk splitting mirrors
BFC: a larger free chunk is split, the remainder re-listed.

Under capacity pressure the arena's weakness is *external fragmentation*:
free bytes scattered across chunks too small for the request sizes the
workload actually makes.  :meth:`ArenaAllocator.external_fragmentation`
measures it (free bytes unusable for the largest request class seen) and
:meth:`ArenaAllocator.compact` runs a bounded BFC-coalescing pass that
vacates mostly-empty slabs by relocating their tenants into free chunks
elsewhere — paying real migration-channel time per move — and returns the
emptied slabs to the machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dnn.alloc import Allocator, RunShare, TensorMapping
from repro.dnn.tensor import Tensor
from repro.mem.machine import Machine
from repro.mem.page import PageTableEntry

#: Free chunks are binned by power-of-two size class, BFC style.
_MIN_BIN = 8  # 256-byte class


def _size_class(nbytes: int) -> int:
    return max(_MIN_BIN, math.ceil(math.log2(max(1, nbytes))))


@dataclass
class _Chunk:
    """A contiguous byte range inside an arena-owned page run."""

    run: PageTableEntry
    offset: int
    nbytes: int
    tenant: Optional[int] = None  # tid currently resident

    @property
    def free(self) -> bool:
        return self.tenant is None


@dataclass
class CompactionReport:
    """What one bounded compaction pass accomplished."""

    moves: int = 0
    moved_bytes: int = 0
    merges: int = 0
    freed_runs: int = 0
    freed_bytes: int = 0
    finish: float = 0.0
    relocated: List[int] = field(default_factory=list)  # tids moved


class ArenaAllocator(Allocator):
    """Best-fit arena: pages persist, chunks are recycled across steps."""

    #: allocate fresh runs in slabs of this many pages to limit run count
    SLAB_PAGES = 16

    def __init__(self, machine: Machine, place) -> None:
        super().__init__(machine, place)
        self._bins: Dict[int, List[_Chunk]] = {}
        self._chunks_by_tid: Dict[int, List[_Chunk]] = {}
        #: every run the arena ever mapped (released only by release_all)
        self._owned_runs: List[PageTableEntry] = []
        #: largest single allocation seen — the request class external
        #: fragmentation is measured against
        self._largest_request = 0
        #: RAS-retired byte ranges per slab vpn: ``[(lo, hi), ...]``.  A
        #: BFC slab is never carved around a dead frame (chunk offsets are
        #: relative to the whole slab), so retirement quarantines the dead
        #: range instead — no future tenant may land on it.
        self._quarantined: Dict[int, List[tuple]] = {}

    # --------------------------------------------------------------- lookup

    def group_of(self, tensor: Tensor):  # pragma: no cover - not used
        raise NotImplementedError("the arena has its own placement logic")

    def _take_free_chunk(self, nbytes: int) -> Optional[_Chunk]:
        """Best-fit search: smallest free chunk that holds ``nbytes``."""
        for size_class in range(_size_class(nbytes), 64):
            bin_chunks = self._bins.get(size_class)
            if not bin_chunks:
                continue
            best_index = None
            for index, chunk in enumerate(bin_chunks):
                if chunk.nbytes >= nbytes and (
                    best_index is None
                    or chunk.nbytes < bin_chunks[best_index].nbytes
                ):
                    best_index = index
            if best_index is not None:
                return bin_chunks.pop(best_index)
        return None

    def _list_free(self, chunk: _Chunk) -> None:
        chunk.tenant = None
        spans = self._quarantined.get(chunk.run.vpn)
        if spans:
            # Clip the chunk against RAS-retired ranges: the remnants go
            # back on the free lists, the dead bytes never do.
            for lo, hi in spans:
                if chunk.offset < hi and chunk.offset + chunk.nbytes > lo:
                    if chunk.offset < lo:
                        self._list_free(
                            _Chunk(
                                run=chunk.run,
                                offset=chunk.offset,
                                nbytes=lo - chunk.offset,
                            )
                        )
                    if chunk.offset + chunk.nbytes > hi:
                        self._list_free(
                            _Chunk(
                                run=chunk.run,
                                offset=hi,
                                nbytes=chunk.offset + chunk.nbytes - hi,
                            )
                        )
                    return
        self._bins.setdefault(_size_class(chunk.nbytes), []).append(chunk)

    def _grow(self, nbytes: int, now: float, tensor: Tensor) -> _Chunk:
        """Map a fresh slab from the machine and carve the chunk from it."""
        page_size = self.machine.page_size
        npages = max(self.SLAB_PAGES, math.ceil(nbytes / page_size))
        run = self._map_run(tensor, npages, now)
        self._owned_runs.append(run)
        chunk = _Chunk(run=run, offset=0, nbytes=npages * page_size)
        return chunk

    # ------------------------------------------------------------ interface

    def alloc(self, tensor: Tensor, now: float) -> TensorMapping:
        if tensor.tid in self._mappings:
            from repro.dnn.alloc import AllocationError

            raise AllocationError(f"tensor {tensor.name!r} is already allocated")
        self._largest_request = max(self._largest_request, tensor.nbytes)
        chunk = self._take_free_chunk(tensor.nbytes)
        if chunk is None:
            chunk = self._grow(tensor.nbytes, now, tensor)
        # BFC split: keep what we need, re-list the remainder.
        if chunk.nbytes > tensor.nbytes:
            remainder = _Chunk(
                run=chunk.run,
                offset=chunk.offset + tensor.nbytes,
                nbytes=chunk.nbytes - tensor.nbytes,
            )
            self._list_free(remainder)
            chunk = _Chunk(run=chunk.run, offset=chunk.offset, nbytes=tensor.nbytes)
        chunk.tenant = tensor.tid
        self._chunks_by_tid.setdefault(tensor.tid, []).append(chunk)

        mapping = TensorMapping(
            tensor=tensor, shares=[RunShare(run=chunk.run, nbytes=tensor.nbytes)]
        )
        self._mappings[tensor.tid] = mapping
        self._run_users.setdefault(chunk.run.vpn, set()).add(tensor.tid)
        self.live_tensor_bytes += tensor.nbytes
        self.peak_tensor_bytes = max(self.peak_tensor_bytes, self.live_tensor_bytes)
        return mapping

    def free(self, tensor: Tensor, now: float) -> TensorMapping:
        from repro.dnn.alloc import AllocationError

        mapping = self._mappings.pop(tensor.tid, None)
        if mapping is None:
            raise AllocationError(f"tensor {tensor.name!r} is not allocated")
        for chunk in self._chunks_by_tid.pop(tensor.tid, ()):
            self._list_free(chunk)
        for share in mapping.shares:
            users = self._run_users.get(share.run.vpn)
            if users is not None:
                users.discard(tensor.tid)
        self.live_tensor_bytes -= tensor.nbytes
        # Pages stay with the arena — that is the point.
        return mapping

    def release_all(self, now: float) -> None:
        """Return every slab to the machine (arena teardown)."""
        page_size = self.machine.page_size
        for run in self._owned_runs:
            if run.vpn in self.machine.page_table:
                self.live_page_bytes -= run.npages * page_size
                self.machine.unmap_run(run, now)
        self._owned_runs.clear()
        self._bins.clear()
        self._chunks_by_tid.clear()
        self._run_users.clear()
        self._mappings.clear()
        self._quarantined.clear()
        self.live_tensor_bytes = 0
        self._largest_request = 0

    def retire_page(self, run: PageTableEntry, vpn: int, now: float) -> bool:
        """Quarantine the dead page instead of carving the slab.

        Chunk offsets are relative to the whole slab run, so splitting the
        run around a dead frame (the base-allocator strategy) would
        invalidate every chunk behind the split point.  A BFC arena
        instead keeps the slab intact and quarantines the struck byte
        range: free chunks overlapping it are clipped out of the bins now,
        tenant chunks are clipped when they free, and no future allocation
        is served from the range.  Returns False — the page stays mapped
        (the slab hole is unusable, not unmapped) and the RAS engine
        retires the frame by capacity accounting alone.
        """
        table = self.machine.page_table
        if run.vpn not in table or table.entry(run.vpn) is not run:
            return False
        if run.in_flight or not run.vpn <= vpn < run.vpn + run.npages:
            return False
        if all(owned is not run for owned in self._owned_runs):
            return False
        page_size = self.machine.page_size
        lo = (vpn - run.vpn) * page_size
        self._quarantined.setdefault(run.vpn, []).append((lo, lo + page_size))
        # Purge overlapping free chunks; _list_free re-lists the remnants
        # clipped against the freshly-quarantined range.
        struck: List[_Chunk] = []
        for chunks in self._bins.values():
            overlapping = [
                c
                for c in chunks
                if c.run is run
                and c.offset < lo + page_size
                and c.offset + c.nbytes > lo
            ]
            if overlapping:
                chunks[:] = [c for c in chunks if c not in overlapping]
                struck.extend(overlapping)
        for chunk in struck:
            self._list_free(chunk)
        return False

    # ---------------------------------------------------------------- stats

    @property
    def arena_bytes(self) -> int:
        """Bytes of pages the arena currently owns."""
        return sum(
            run.npages * self.machine.page_size for run in self._owned_runs
        )

    @property
    def free_bytes(self) -> int:
        """Bytes sitting on the free lists."""
        return sum(
            chunk.nbytes for chunks in self._bins.values() for chunk in chunks
        )

    @property
    def resident_bytes(self) -> int:
        """Bytes currently held by tenants."""
        return sum(
            chunk.nbytes
            for chunks in self._chunks_by_tid.values()
            for chunk in chunks
        )

    def chunk_count(self) -> int:
        return sum(len(chunks) for chunks in self._bins.values()) + sum(
            len(chunks) for chunks in self._chunks_by_tid.values()
        )

    def fragmentation_bytes(self, class_bytes: Optional[int] = None) -> int:
        """Free bytes unusable for a request of ``class_bytes``.

        Defaults to the largest allocation the arena has served — the
        request class that will hit the allocator's growth path first.
        """
        if class_bytes is None:
            class_bytes = self._largest_request
        if class_bytes <= 0:
            return 0
        return sum(
            chunk.nbytes
            for chunks in self._bins.values()
            for chunk in chunks
            if chunk.nbytes < class_bytes
        )

    def external_fragmentation(self, class_bytes: Optional[int] = None) -> float:
        """Fraction of free bytes unusable for the request class in [0, 1]."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return self.fragmentation_bytes(class_bytes) / free

    # ----------------------------------------------------------- compaction

    def coalesce(self) -> int:
        """Merge adjacent free chunks within each run; returns merge count.

        BFC coalescing proper: two free chunks whose byte ranges abut in
        the same run become one larger chunk, re-binned at its new size
        class.
        """
        by_run: Dict[int, List[_Chunk]] = {}
        for chunks in self._bins.values():
            for chunk in chunks:
                by_run.setdefault(chunk.run.vpn, []).append(chunk)
        merges = 0
        merged: List[_Chunk] = []
        for chunks in by_run.values():
            chunks.sort(key=lambda c: c.offset)
            current = chunks[0]
            for chunk in chunks[1:]:
                if current.offset + current.nbytes == chunk.offset:
                    current = _Chunk(
                        run=current.run,
                        offset=current.offset,
                        nbytes=current.nbytes + chunk.nbytes,
                    )
                    merges += 1
                else:
                    merged.append(current)
                    current = chunk
            merged.append(current)
        if merges:
            self._bins.clear()
            for chunk in merged:
                self._list_free(chunk)
        return merges

    def _take_target_chunk(
        self, nbytes: int, exclude_vpn: int, device
    ) -> Optional[_Chunk]:
        """Best-fit free chunk outside ``exclude_vpn`` on the same tier."""
        best: Optional[_Chunk] = None
        best_bin: Optional[List[_Chunk]] = None
        best_index = -1
        for size_class in range(_size_class(nbytes), 64):
            bin_chunks = self._bins.get(size_class)
            if not bin_chunks:
                continue
            for index, chunk in enumerate(bin_chunks):
                if (
                    chunk.nbytes >= nbytes
                    and chunk.run.vpn != exclude_vpn
                    and not chunk.run.in_flight
                    and chunk.run.device is device
                    and (best is None or chunk.nbytes < best.nbytes)
                ):
                    best, best_bin, best_index = chunk, bin_chunks, index
            if best is not None:
                break  # smallest adequate size class wins, BFC style
        if best is not None:
            best_bin.pop(best_index)
        return best

    def compact(self, now: float, max_moves: int = 8) -> CompactionReport:
        """One bounded compaction pass; returns what it accomplished.

        Coalesces free lists, then vacates mostly-empty slabs: each tenant
        chunk of a candidate slab is relocated into a free chunk of
        another same-tier slab through the migration engine (paying real
        demote-channel time), and the emptied slab is unmapped and its
        frames returned to the machine.  At most ``max_moves`` tenant
        relocations are performed — compaction must never stall a step for
        longer than a few transfers.
        """
        report = CompactionReport(finish=now)
        report.merges = self.coalesce()
        page_size = self.machine.page_size
        tenants_by_run: Dict[int, List[_Chunk]] = {}
        for chunks in self._chunks_by_tid.values():
            for chunk in chunks:
                tenants_by_run.setdefault(chunk.run.vpn, []).append(chunk)
        # Candidate slabs: fewest tenant bytes first — the cheapest to
        # vacate buy back whole runs for the fewest moves.
        candidates = sorted(
            (
                run
                for run in self._owned_runs
                if run.vpn in self.machine.page_table
                and not run.in_flight
                and not run.pinned
            ),
            key=lambda run: sum(
                c.nbytes for c in tenants_by_run.get(run.vpn, ())
            ),
        )
        budget = max_moves
        receivers: set = set()  # slabs that gained tenants this pass
        for run in candidates:
            if run.vpn in receivers:
                # The up-front tenant map no longer covers this slab;
                # vacating it could strand a tenant relocated into it.
                continue
            tenants = tenants_by_run.get(run.vpn, [])
            if len(tenants) > budget:
                continue
            if not self._vacate(run, tenants, now, report, receivers):
                continue
            budget -= len(tenants)
            self._release_slab(run, now, report)
            if budget <= 0:
                break
        self._record_compaction(now, report)
        return report

    def _vacate(
        self,
        run: PageTableEntry,
        tenants: List[_Chunk],
        now: float,
        report: CompactionReport,
        receivers: set,
    ) -> bool:
        """Move every tenant of ``run`` elsewhere; False if any has no home.

        Targets are claimed before any move is committed, so a failed
        placement rolls back cleanly by re-listing the claimed chunks.
        """
        claimed: List[tuple] = []  # (tenant, target)
        for tenant in tenants:
            target = self._take_target_chunk(
                tenant.nbytes, run.vpn, run.device
            )
            if target is None:
                for _, unused in claimed:
                    self._list_free(unused)
                return False
            claimed.append((tenant, target))
        for tenant, target in claimed:
            if target.nbytes > tenant.nbytes:
                remainder = _Chunk(
                    run=target.run,
                    offset=target.offset + tenant.nbytes,
                    nbytes=target.nbytes - tenant.nbytes,
                )
                self._list_free(remainder)
            old_vpn = tenant.run.vpn
            receivers.add(target.run.vpn)
            tenant.run = target.run
            tenant.offset = target.offset
            assert tenant.tenant is not None
            self._retarget_tenant(tenant.tenant, old_vpn, target.run)
            transfer = self.machine.migration.relocate(
                tenant.nbytes, now, tag="compact"
            )
            report.finish = max(report.finish, transfer.finish)
            report.moves += 1
            report.moved_bytes += tenant.nbytes
            report.relocated.append(tenant.tenant)
        return True

    def _retarget_tenant(
        self, tid: int, old_vpn: int, new_run: PageTableEntry
    ) -> None:
        """Point a moved tensor's mapping and run-user records at its new slab."""
        mapping = self._mappings.get(tid)
        if mapping is not None:
            for share in mapping.shares:
                if share.run.vpn == old_vpn:
                    share.run = new_run
        users = self._run_users.get(old_vpn)
        if users is not None:
            users.discard(tid)
        self._run_users.setdefault(new_run.vpn, set()).add(tid)

    def _release_slab(
        self, run: PageTableEntry, now: float, report: CompactionReport
    ) -> None:
        """Return a fully-vacated slab's frames to the machine."""
        for chunks in self._bins.values():
            chunks[:] = [c for c in chunks if c.run.vpn != run.vpn]
        self._run_users.pop(run.vpn, None)
        self._quarantined.pop(run.vpn, None)
        self._owned_runs.remove(run)
        nbytes = run.npages * self.machine.page_size
        self.live_page_bytes -= nbytes
        self.machine.unmap_run(run, now)
        report.freed_runs += 1
        report.freed_bytes += nbytes

    def _record_compaction(self, now: float, report: CompactionReport) -> None:
        if report.moves == 0 and report.freed_runs == 0:
            return
        stats = self.machine.stats
        stats.counter("pressure.compaction_passes").add(1)
        stats.counter("pressure.compaction_moves").add(report.moves)
        stats.counter("pressure.compaction_bytes").add(report.moved_bytes)
        stats.counter("pressure.compaction_freed_bytes").add(report.freed_bytes)
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.complete(
                "compaction",
                "pressure",
                ts=now,
                dur=max(0.0, report.finish - now),
                track="pressure",
                moves=report.moves,
                moved_bytes=report.moved_bytes,
                merges=report.merges,
                freed_runs=report.freed_runs,
                freed_bytes=report.freed_bytes,
            )
