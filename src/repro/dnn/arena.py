"""A BFC-style arena allocator with cross-step page reuse.

TensorFlow's best-fit-with-coalescing allocator grabs pages from the OS
once and recycles them: a freed chunk goes onto a free list and is handed
to the next allocation that fits.  Two consequences matter for the paper:

* **page reuse across steps** — the same OS pages back the same (or
  different!) tensors step after step, so their NUMA placement and kernel
  page heat persist.  This is why first-touch and active-list policies see
  stable page behaviour despite tensors being logically reallocated every
  step, and it is the mechanism behind our IAL baseline's warm placement.
* **false sharing in time** — a page's access counters accumulate over
  *successive tenants*, so a page that once hosted a hot tensor keeps
  looking hot while holding a cold one (Observation 3's page-level
  misclassification).

The arena requests page runs from the machine like any allocator, but only
returns them when :meth:`ArenaAllocator.release_all` is called — freed
chunks go to a size-bucketed free list instead.  Chunk splitting mirrors
BFC: a larger free chunk is split, the remainder re-listed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dnn.alloc import Allocator, RunShare, TensorMapping
from repro.dnn.tensor import Tensor
from repro.mem.machine import Machine
from repro.mem.page import PageTableEntry

#: Free chunks are binned by power-of-two size class, BFC style.
_MIN_BIN = 8  # 256-byte class


def _size_class(nbytes: int) -> int:
    return max(_MIN_BIN, math.ceil(math.log2(max(1, nbytes))))


@dataclass
class _Chunk:
    """A contiguous byte range inside an arena-owned page run."""

    run: PageTableEntry
    offset: int
    nbytes: int
    tenant: Optional[int] = None  # tid currently resident

    @property
    def free(self) -> bool:
        return self.tenant is None


class ArenaAllocator(Allocator):
    """Best-fit arena: pages persist, chunks are recycled across steps."""

    #: allocate fresh runs in slabs of this many pages to limit run count
    SLAB_PAGES = 16

    def __init__(self, machine: Machine, place) -> None:
        super().__init__(machine, place)
        self._bins: Dict[int, List[_Chunk]] = {}
        self._chunks_by_tid: Dict[int, List[_Chunk]] = {}
        #: every run the arena ever mapped (released only by release_all)
        self._owned_runs: List[PageTableEntry] = []

    # --------------------------------------------------------------- lookup

    def group_of(self, tensor: Tensor):  # pragma: no cover - not used
        raise NotImplementedError("the arena has its own placement logic")

    def _take_free_chunk(self, nbytes: int) -> Optional[_Chunk]:
        """Best-fit search: smallest free chunk that holds ``nbytes``."""
        for size_class in range(_size_class(nbytes), 64):
            bin_chunks = self._bins.get(size_class)
            if not bin_chunks:
                continue
            best_index = None
            for index, chunk in enumerate(bin_chunks):
                if chunk.nbytes >= nbytes and (
                    best_index is None
                    or chunk.nbytes < bin_chunks[best_index].nbytes
                ):
                    best_index = index
            if best_index is not None:
                return bin_chunks.pop(best_index)
        return None

    def _list_free(self, chunk: _Chunk) -> None:
        chunk.tenant = None
        self._bins.setdefault(_size_class(chunk.nbytes), []).append(chunk)

    def _grow(self, nbytes: int, now: float, tensor: Tensor) -> _Chunk:
        """Map a fresh slab from the machine and carve the chunk from it."""
        page_size = self.machine.page_size
        npages = max(self.SLAB_PAGES, math.ceil(nbytes / page_size))
        run = self._map_run(tensor, npages, now)
        self._owned_runs.append(run)
        chunk = _Chunk(run=run, offset=0, nbytes=npages * page_size)
        return chunk

    # ------------------------------------------------------------ interface

    def alloc(self, tensor: Tensor, now: float) -> TensorMapping:
        if tensor.tid in self._mappings:
            from repro.dnn.alloc import AllocationError

            raise AllocationError(f"tensor {tensor.name!r} is already allocated")
        chunk = self._take_free_chunk(tensor.nbytes)
        if chunk is None:
            chunk = self._grow(tensor.nbytes, now, tensor)
        # BFC split: keep what we need, re-list the remainder.
        if chunk.nbytes > tensor.nbytes:
            remainder = _Chunk(
                run=chunk.run,
                offset=chunk.offset + tensor.nbytes,
                nbytes=chunk.nbytes - tensor.nbytes,
            )
            self._list_free(remainder)
            chunk = _Chunk(run=chunk.run, offset=chunk.offset, nbytes=tensor.nbytes)
        chunk.tenant = tensor.tid
        self._chunks_by_tid.setdefault(tensor.tid, []).append(chunk)

        mapping = TensorMapping(
            tensor=tensor, shares=[RunShare(run=chunk.run, nbytes=tensor.nbytes)]
        )
        self._mappings[tensor.tid] = mapping
        self._run_users.setdefault(chunk.run.vpn, set()).add(tensor.tid)
        self.live_tensor_bytes += tensor.nbytes
        self.peak_tensor_bytes = max(self.peak_tensor_bytes, self.live_tensor_bytes)
        return mapping

    def free(self, tensor: Tensor, now: float) -> TensorMapping:
        from repro.dnn.alloc import AllocationError

        mapping = self._mappings.pop(tensor.tid, None)
        if mapping is None:
            raise AllocationError(f"tensor {tensor.name!r} is not allocated")
        for chunk in self._chunks_by_tid.pop(tensor.tid, ()):
            self._list_free(chunk)
        for share in mapping.shares:
            users = self._run_users.get(share.run.vpn)
            if users is not None:
                users.discard(tensor.tid)
        self.live_tensor_bytes -= tensor.nbytes
        # Pages stay with the arena — that is the point.
        return mapping

    def release_all(self, now: float) -> None:
        """Return every slab to the machine (arena teardown)."""
        page_size = self.machine.page_size
        for run in self._owned_runs:
            if run.vpn in self.machine.page_table:
                self.live_page_bytes -= run.npages * page_size
                self.machine.unmap_run(run, now)
        self._owned_runs.clear()
        self._bins.clear()
        self._chunks_by_tid.clear()
        self._run_users.clear()
        self._mappings.clear()
        self.live_tensor_bytes = 0

    # ---------------------------------------------------------------- stats

    @property
    def arena_bytes(self) -> int:
        """Bytes of pages the arena currently owns."""
        return sum(
            run.npages * self.machine.page_size for run in self._owned_runs
        )

    def chunk_count(self) -> int:
        return sum(len(chunks) for chunks in self._bins.values()) + sum(
            len(chunks) for chunks in self._chunks_by_tid.values()
        )
