"""Tensors: the unit of memory management.

A tensor's identity, size, kind, and lifetime (in layers) are exactly the
attributes Sentinel's profiling phase discovers; the graph builder records
ground truth here so experiments can validate the profiler against it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class TensorKind(enum.Enum):
    """Role of a tensor in training, used by domain-knowledge baselines.

    Sentinel itself is graph-agnostic and never branches on this; vDNN
    (conv feature maps only) and the characterization study do.
    """

    WEIGHT = "weight"
    INPUT = "input"
    ACTIVATION = "activation"
    GRADIENT = "gradient"
    TEMP = "temp"
    GLOBAL = "global"  # step counters, LR, loss scale — tiny and very hot


#: Layer index used for allocations made before the training step starts.
PRE_STEP = -1


@dataclass
class Tensor:
    """One tensor in a training step's dataflow graph.

    Attributes:
        tid: unique id within the graph.
        name: human-readable name (op-derived, TensorFlow style).
        nbytes: size in bytes.
        kind: semantic role (see :class:`TensorKind`).
        preallocated: allocated before the training loop (weights, inputs,
            globals); lives across steps and can never be re-organized
            mid-training without creating wild pointers (paper §IV-B).
        alloc_layer: layer index of the allocation (``PRE_STEP`` if
            preallocated); filled in by :meth:`GraphBuilder.finish`.
        free_layer: index of the last layer that accesses the tensor; it is
            freed at that layer's end.  Preallocated tensors never free.
        layer_touches: ground-truth access passes per layer index, filled in
            from the ops that reference the tensor.
    """

    tid: int
    name: str
    nbytes: int
    kind: TensorKind
    preallocated: bool = False
    alloc_layer: int = PRE_STEP
    free_layer: Optional[int] = None
    layer_touches: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"tensor {self.name!r} must have positive size")

    def __hash__(self) -> int:
        return self.tid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Tensor) and other.tid == self.tid

    @property
    def lifetime_layers(self) -> Optional[int]:
        """Number of layers the tensor is alive, or None if preallocated."""
        if self.preallocated or self.free_layer is None:
            return None
        return self.free_layer - self.alloc_layer + 1

    @property
    def short_lived(self) -> bool:
        """Alive no longer than one layer (the paper's definition)."""
        lifetime = self.lifetime_layers
        return lifetime is not None and lifetime <= 1

    @property
    def total_touches(self) -> int:
        """Ground-truth main-memory access passes over one step."""
        return sum(self.layer_touches.values())

    def is_small(self, page_size: int) -> bool:
        """Smaller than one page (the paper's "small tensor")."""
        return self.nbytes < page_size

    def access_layers(self) -> tuple:
        """Sorted layer indices in which the tensor is accessed."""
        return tuple(sorted(self.layer_touches))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tensor({self.tid}, {self.name!r}, {self.nbytes}B, "
            f"{self.kind.value}, L{self.alloc_layer}..L{self.free_layer})"
        )
