"""The placement-policy interface every memory manager implements.

A :class:`PlacementPolicy` is the pluggable brain of a simulation run: it
decides where fresh allocations land (:meth:`place`), reacts to the
executor's layer/step lifecycle hooks (where Sentinel runs its interval
logic), and prices every memory access (:meth:`charge_access`) against the
current page placement — including stalling for residency on GPU-style
platforms, where a kernel cannot start until its operand pages are in fast
memory.

The default :meth:`charge_access` implements the machine's physics; policies
normally override only placement/migration decisions and inherit the
pricing.  The Memory-Mode baseline overrides pricing too, routing accesses
through the simulated hardware DRAM cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro import accel
from repro.dnn.alloc import Allocator, PackedAllocator, TensorMapping
from repro.dnn.graph import Graph, Layer
from repro.dnn.ops import TensorAccess
from repro.dnn.tensor import Tensor
from repro.errors import ResidencyError
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.page import PageTableEntry


@dataclass
class AccessCharge:
    """Time and traffic cost of one op access under the current placement."""

    mem_time: float = 0.0
    stall: float = 0.0
    fault: float = 0.0
    bytes_fast: int = 0
    bytes_slow: int = 0

    def merge(self, other: "AccessCharge") -> None:
        self.mem_time += other.mem_time
        self.stall += other.stall
        self.fault += other.fault
        self.bytes_fast += other.bytes_fast
        self.bytes_slow += other.bytes_slow


def fits_fast(machine: "Machine", nbytes: int) -> bool:
    """Whether a fresh allocation of ``nbytes`` fits in fast memory.

    Allocators hand out whole pages (plus a possibly-shared tail page), so
    the capacity check must use the page-rounded size — checking the raw
    byte count admits allocations that overflow by up to a page.
    """
    page = machine.page_size
    rounded = page * (-(-nbytes // page))
    return machine.fast.fits(rounded)


class PlacementPolicy:
    """Base class for all memory-management policies."""

    #: Human-readable policy name (used in experiment tables).
    name = "base"

    #: Override the platform's residency requirement (None = inherit).
    requires_residency: Optional[bool] = None

    def __init__(self) -> None:
        self.machine: Optional[Machine] = None
        self.graph: Optional[Graph] = None
        self.residency = False

    # ------------------------------------------------------------ lifecycle

    def bind(self, machine: Machine, graph: Graph) -> None:
        """Attach the policy to a machine and workload before execution."""
        self.machine = machine
        self.graph = graph
        if self.requires_residency is None:
            self.residency = machine.platform.residency_required
        else:
            self.residency = self.requires_residency

    def make_allocator(self) -> Allocator:
        """Allocator this policy runs on (TensorFlow-default packing)."""
        assert self.machine is not None, "bind() must run before make_allocator()"
        return PackedAllocator(self.machine, self.place)

    def on_engine(self, engine) -> None:
        """Hook: the executor attached a discrete-event engine.

        Policies that track asynchronous completions (Sentinel's prefetch
        bookkeeping) override this to subscribe to engine events; the base
        policy ignores it.  Must not emit trace or metrics events —
        subscriptions are internal bookkeeping so engine-driven runs stay
        byte-identical to the legacy loop.
        """

    # ----------------------------------------------------------- decisions

    def place(self, tensor: Tensor, now: float) -> DeviceKind:
        """Tier for a fresh run of ``tensor``; default everything on slow.

        (The paper's starting condition: "Before the training happens,
        tensors are allocated in slow memory.")
        """
        return DeviceKind.SLOW

    # Lifecycle hooks; returned floats are stall seconds the executor adds
    # to the critical path at that point.

    def on_step_start(self, step: int, now: float) -> float:
        return 0.0

    def on_layer_start(self, layer: Layer, now: float) -> float:
        return 0.0

    def on_layer_end(self, layer: Layer, now: float) -> float:
        return 0.0

    def on_step_end(self, step: int, now: float) -> float:
        return 0.0

    def on_alloc(self, tensor: Tensor, mapping: TensorMapping, now: float) -> None:
        pass

    def on_free(self, tensor: Tensor, mapping: TensorMapping, now: float) -> None:
        pass

    # ----------------------------------------------------------- accounting

    def charge_access(
        self, tensor: Tensor, mapping: TensorMapping, access: TensorAccess, now: float
    ) -> AccessCharge:
        """Price one op access under the current placement.

        Two implementations behind :mod:`repro.accel`: the scalar reference
        below, and a hoisted-lookup twin that performs the same arithmetic
        on the same operands in the same order (the fault handler is only
        invoked when it can actually count, i.e. the run is poisoned — on
        unpoisoned runs it returns 0.0 with no side effects, so skipping
        the call changes nothing).  The differential suite pins the two
        byte-for-byte.
        """
        if accel.vectorized_enabled():
            return self._charge_access_fast(tensor, mapping, access, now)
        machine = self.machine
        assert machine is not None
        page_size = machine.page_size
        charge = AccessCharge()
        for share in mapping.shares:
            run = share.run
            # Bytes of this access that fall on this share, pro-rated.
            nbytes = access.nbytes * share.nbytes // tensor.nbytes
            if nbytes <= 0 and share.nbytes > 0:
                nbytes = min(share.nbytes, access.nbytes)
            if nbytes <= 0:
                continue
            stall = 0.0
            if self.residency:
                stall = self.ensure_resident(run, now + charge.stall)
                device = DeviceKind.FAST
            else:
                device = run.effective_device(now)
            pages = min(run.npages, max(1, math.ceil(nbytes / page_size)))
            charge.fault += machine.fault_handler.on_access_pass(
                run, pages, access.is_write, passes=access.passes
            )
            charge.mem_time += access.passes * machine.access_time(
                device, nbytes, access.is_write
            )
            if access.is_write:
                run.initialized = True
            charge.stall += stall
            total = nbytes * access.passes
            if device is DeviceKind.FAST:
                charge.bytes_fast += total
            else:
                charge.bytes_slow += total
        return charge

    def _charge_access_fast(
        self, tensor: Tensor, mapping: TensorMapping, access: TensorAccess, now: float
    ) -> AccessCharge:
        """Hoisted-lookup pricing, byte-identical to the scalar reference.

        The executor calls :meth:`charge_access` once per access per op; at
        sweep scale the attribute chains and delegating call frames
        (``machine.access_time`` -> ``device()`` -> ``spec``) dominate the
        actual arithmetic.  This twin binds everything once per call and
        inlines :meth:`~repro.mem.page.PageTableEntry.effective_device`;
        every float is produced by the same operation on the same operands.
        """
        machine = self.machine
        assert machine is not None
        page_size = machine.page_table.page_size
        fast_time = machine.fast.access_time
        slow_time = machine.slow.access_time
        handler = machine.fault_handler
        residency = self.residency
        tensor_nbytes = tensor.nbytes
        a_nbytes = access.nbytes
        passes = access.passes
        is_write = access.is_write
        FAST = DeviceKind.FAST
        mem_time = 0.0
        stall_total = 0.0
        fault = 0.0
        bytes_fast = 0
        bytes_slow = 0
        for share in mapping.shares:
            run = share.run
            share_nbytes = share.nbytes
            nbytes = a_nbytes * share_nbytes // tensor_nbytes
            if nbytes <= 0 and share_nbytes > 0:
                nbytes = share_nbytes if share_nbytes < a_nbytes else a_nbytes
            if nbytes <= 0:
                continue
            stall = 0.0
            if residency:
                stall = self.ensure_resident(run, now + stall_total)
                device = FAST
            else:
                migrating_to = run.migrating_to
                if migrating_to is not None and now >= run.available_at:
                    device = migrating_to
                else:
                    device = run.device
            if run.poisoned or passes <= 0:
                pages = min(run.npages, max(1, math.ceil(nbytes / page_size)))
                fault += handler.on_access_pass(run, pages, is_write, passes=passes)
            if device is FAST:
                mem_time += passes * fast_time(nbytes, is_write)
                bytes_fast += nbytes * passes
            else:
                mem_time += passes * slow_time(nbytes, is_write)
                bytes_slow += nbytes * passes
            if is_write:
                run.initialized = True
            stall_total += stall
        return AccessCharge(mem_time, stall_total, fault, bytes_fast, bytes_slow)

    # ------------------------------------------------------------ residency

    def ensure_resident(self, run: PageTableEntry, now: float) -> float:
        """Make ``run`` resident on fast memory; returns stall seconds.

        Default behaviour is on-demand: promote immediately and stall until
        the copy lands, evicting via :meth:`evict_for` when fast memory is
        full.  Prefetching policies override the *scheduling* (so the run is
        usually resident already) and inherit this as their miss path.
        """
        machine = self.machine
        assert machine is not None
        if run.device is DeviceKind.FAST and not run.in_flight:
            return 0.0
        if run.in_flight:
            if run.migrating_to is DeviceKind.FAST:
                stall = max(0.0, run.available_at - now)
                machine.migration.sync(now + stall)
                return stall
            # Demotion racing an access: wait it out, then promote back.
            wait = max(0.0, run.available_at - now)
            machine.migration.sync(now + wait)
            return wait + self.ensure_resident(run, now + wait)
        nbytes = run.npages * machine.page_size
        if not machine.fast.fits(nbytes):
            wait = self.evict_for(nbytes, now)
            now += wait
        else:
            wait = 0.0
        if not run.initialized:
            # A never-written buffer has no contents to copy: back it with
            # device frames directly (cudaMalloc semantics), no transfer.
            if machine.migration.materialize(run, now):
                return wait
        transfer, scheduled, skipped = machine.migration.promote(
            [run], now, urgent=True
        )
        if skipped or transfer is None:
            raise ResidencyError(
                f"cannot promote run {run.vpn} ({nbytes} bytes): fast memory full "
                f"({machine.fast.free} free) and evict_for() made no room"
            )
        stall = max(0.0, transfer.finish - now)
        machine.migration.sync(transfer.finish)
        return wait + stall

    def evict_for(self, nbytes: int, now: float) -> float:
        """Free at least ``nbytes`` of fast memory; returns stall seconds.

        The base policy has no eviction scheme — subclasses that can face
        residency misses must provide one.
        """
        raise ResidencyError(
            f"{self.name}: fast memory full and policy defines no eviction"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
