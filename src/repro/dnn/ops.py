"""Operations and their main-memory access descriptors.

An :class:`Op` is a node of the dataflow graph: a FLOP count plus a list of
:class:`TensorAccess` records describing how the op streams through main
memory.  Access *passes* are the quantity Sentinel's profiler counts — one
pass over a tensor faults once per touched page — and distinguish "the op
references this tensor" (what most related work checks) from "how many times
the tensor is actually read from or written to memory" (what Sentinel
counts, enabling hotness-ordered migration and co-allocation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dnn.tensor import Tensor


@dataclass(frozen=True)
class TensorAccess:
    """One streaming access of an op over (part of) a tensor.

    Attributes:
        tensor: the tensor accessed.
        nbytes: bytes touched per pass (defaults to the whole tensor).
        is_write: write pass if True, read pass otherwise.
        passes: number of main-memory passes (>=1); e.g. a reduction that
            re-reads its input k times has ``passes=k``.
    """

    tensor: Tensor
    nbytes: int
    is_write: bool
    passes: int = 1

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(
                f"access to {self.tensor.name!r} must touch positive bytes"
            )
        if self.nbytes > self.tensor.nbytes:
            raise ValueError(
                f"access touches {self.nbytes}B of {self.tensor.nbytes}B tensor "
                f"{self.tensor.name!r}"
            )
        if self.passes <= 0:
            raise ValueError(f"access to {self.tensor.name!r} needs passes >= 1")

    @property
    def total_bytes(self) -> int:
        return self.nbytes * self.passes


@dataclass
class Op:
    """A dataflow-graph node: compute cost plus memory accesses.

    Attributes:
        name: op label ("nn.conv2d", "transpose"...).
        flops: floating-point operations executed.
        accesses: memory access descriptors, in issue order.
        layer_index: owning layer; set when the builder seals the layer.
    """

    name: str
    flops: float
    accesses: List[TensorAccess] = field(default_factory=list)
    layer_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ValueError(f"op {self.name!r} cannot have negative flops")

    def tensors(self) -> List[Tensor]:
        """Unique tensors referenced, in first-access order."""
        seen = {}
        for access in self.accesses:
            seen.setdefault(access.tensor.tid, access.tensor)
        return list(seen.values())

    @property
    def bytes_read(self) -> int:
        return sum(a.total_bytes for a in self.accesses if not a.is_write)

    @property
    def bytes_written(self) -> int:
        return sum(a.total_bytes for a in self.accesses if a.is_write)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Op({self.name!r}, L{self.layer_index}, {len(self.accesses)} accesses)"
