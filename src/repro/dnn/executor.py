"""The training-step executor.

Runs a :class:`~repro.dnn.graph.Graph` against a
:class:`~repro.mem.machine.Machine` under a
:class:`~repro.dnn.policy.PlacementPolicy`, producing a
:class:`StepResult` per step with the timing/traffic breakdown the
experiments report.

Timing model per op::

    op_time = max(compute_time, memory_time) + stall + fault_overhead

``compute_time`` is FLOPs over the platform's effective throughput;
``memory_time`` prices each access against the tier its pages occupy
(roofline-style overlap of compute and memory streams); ``stall`` is
exposed migration time (waiting for residency / Case-3 waits); ``fault``
is profiling-fault handling, nonzero only while Sentinel profiles.

Tensor lifecycle follows the paper's TensorFlow observations: preallocated
tensors (weights, inputs, globals) are mapped once before the first step and
persist; every other tensor is allocated at its first access and freed at
the end of the last layer that touches it, *every step* — which is what lets
Sentinel re-organize them across steps without creating wild pointers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dnn.alloc import Allocator, TensorMapping
from repro.dnn.graph import Graph, Layer
from repro.dnn.policy import PlacementPolicy
from repro.dnn.tensor import Tensor
from repro.errors import ExecutionError
from repro.mem.machine import Machine
from repro.sim.clock import Clock


class StepObserver:
    """Hooks for instrumentation (the profiler is one of these)."""

    def on_step_start(self, step: int, now: float) -> None:
        pass

    def on_tensor_allocated(
        self, tensor: Tensor, mapping: TensorMapping, now: float
    ) -> None:
        pass

    def on_tensor_freed(
        self, tensor: Tensor, mapping: TensorMapping, now: float
    ) -> None:
        pass

    def on_layer_end(self, layer: Layer, now: float) -> None:
        pass

    def on_step_end(self, step: int, result: "StepResult") -> None:
        pass


@dataclass
class StepResult:
    """Timing and traffic breakdown of one training step."""

    step: int
    start_time: float
    end_time: float
    compute_time: float = 0.0
    mem_time: float = 0.0
    stall_time: float = 0.0
    fault_time: float = 0.0
    bytes_fast: int = 0
    bytes_slow: int = 0
    promoted_bytes: int = 0
    demoted_bytes: int = 0
    peak_fast: int = 0
    peak_slow: int = 0
    layer_spans: List[Tuple[int, float, float]] = field(default_factory=list)
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def migrated_bytes(self) -> int:
        return self.promoted_bytes + self.demoted_bytes

    @property
    def exposed_overhead(self) -> float:
        """Time on the critical path not spent computing."""
        return self.stall_time + self.fault_time


class Executor:
    """Executes training steps of one graph under one policy."""

    def __init__(
        self,
        graph: Graph,
        machine: Machine,
        policy: PlacementPolicy,
        allocator: Optional[Allocator] = None,
        observers: Sequence[StepObserver] = (),
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.graph = graph
        self.machine = machine
        self.policy = policy
        self.observers = list(observers)
        self.tracer = tracer
        self.clock = Clock()
        #: structured event tracer (repro.obs), owned by the machine; the
        #: executor's clock becomes its timestamp source so clockless
        #: components (fault handler, chaos injector) stamp correctly.
        self._events = machine.tracer
        if self._events is not None:
            self._events.bind_clock(self.clock)
        #: optional detailed metrics registry (``Machine(metrics=...)``);
        #: sampling sites below are one ``is not None`` check each, so
        #: un-metered runs stay byte-identical.
        self._metrics = machine.metrics
        machine.stats.bind_clock(self.clock)
        policy.bind(machine, graph)
        self.allocator = allocator if allocator is not None else policy.make_allocator()
        self._steps_run = 0
        self._frees_by_layer = self._index_frees(graph)
        self._preallocate()

    @staticmethod
    def _index_frees(graph: Graph) -> Dict[int, List[Tensor]]:
        frees: Dict[int, List[Tensor]] = {}
        for tensor in graph.step_tensors():
            assert tensor.free_layer is not None
            frees.setdefault(tensor.free_layer, []).append(tensor)
        return frees

    def _preallocate(self) -> None:
        now = self.clock.now
        for tensor in self.graph.preallocated():
            mapping = self.allocator.alloc(tensor, now)
            self.policy.on_alloc(tensor, mapping, now)
            for observer in self.observers:
                observer.on_tensor_allocated(tensor, mapping, now)

    # ------------------------------------------------------------ execution

    def run_step(self) -> StepResult:
        """Execute one training step and return its breakdown."""
        step = self._steps_run
        clock = self.clock
        policy = self.policy
        machine = self.machine
        allocator = self.allocator

        machine.fast.reset_peak()
        machine.slow.reset_peak()
        promoted0 = machine.stats.counter("migration.promoted_bytes").value
        demoted0 = machine.stats.counter("migration.demoted_bytes").value

        result = StepResult(step=step, start_time=clock.now, end_time=clock.now)
        events = self._events
        if events is not None:
            events.begin("step", "step", step=step)
        for observer in self.observers:
            observer.on_step_start(step, clock.now)
        pre_stall = policy.on_step_start(step, clock.now)
        self._charge_stall(result, pre_stall)

        for layer in self.graph.layers:
            layer_start = clock.now
            if events is not None:
                events.begin("layer", "step", layer=layer.index, label=layer.name)
            # Per-layer timing components, mirrored onto the layer-end trace
            # event so attribution (repro.obs.critpath) can decompose a step
            # without re-deriving the timing model: the clock only advances
            # through op_time and _charge_stall, so within a layer span
            # duration == exec + stall + fault exactly.
            layer_compute = 0.0
            layer_mem = 0.0
            layer_exec = 0.0
            layer_stall = 0.0
            layer_fault = 0.0
            stall = policy.on_layer_start(layer, clock.now)
            self._charge_stall(result, stall)
            layer_stall += stall

            for op in layer.ops:
                self._ensure_allocated(op, clock.now)
                compute_time = op.flops / machine.platform.compute_throughput
                mem_time = 0.0
                stall_time = 0.0
                fault_time = 0.0
                for access in op.accesses:
                    mapping = allocator.mapping(access.tensor)
                    if mapping is None:
                        raise ExecutionError(
                            f"op {op.name!r} touches unallocated tensor "
                            f"{access.tensor.name!r}"
                        )
                    charge = policy.charge_access(
                        access.tensor, mapping, access, clock.now
                    )
                    if self.tracer is not None:
                        self.tracer.record(step, layer, op, access, charge, clock.now)
                    mem_time += charge.mem_time
                    stall_time += charge.stall
                    fault_time += charge.fault
                    result.bytes_fast += charge.bytes_fast
                    result.bytes_slow += charge.bytes_slow
                op_exec = max(compute_time, mem_time)
                op_time = op_exec + stall_time + fault_time
                result.compute_time += compute_time
                result.mem_time += mem_time
                result.stall_time += stall_time
                result.fault_time += fault_time
                layer_compute += compute_time
                layer_mem += mem_time
                layer_exec += op_exec
                layer_stall += stall_time
                layer_fault += fault_time
                clock.advance(op_time)
                machine.migration.sync(clock.now)

            self._free_layer_tensors(layer)
            stall = policy.on_layer_end(layer, clock.now)
            self._charge_stall(result, stall)
            layer_stall += stall
            for observer in self.observers:
                observer.on_layer_end(layer, clock.now)
            result.layer_spans.append((layer.index, layer_start, clock.now))
            if events is not None:
                events.end(
                    "layer",
                    "step",
                    compute=layer_compute,
                    mem=layer_mem,
                    exec=layer_exec,
                    stall=layer_stall,
                    fault=layer_fault,
                )
            if self._metrics is not None:
                self._metrics.histogram("executor.layer_time").observe(
                    clock.now - layer_start
                )

        post_stall = policy.on_step_end(step, clock.now)
        self._charge_stall(result, post_stall)
        machine.migration.sync(clock.now)
        if machine.pressure is not None:
            # Step boundary: refresh watermark state and, for arena-style
            # allocators under sustained pressure, run bounded compaction.
            machine.pressure.end_step(allocator, clock.now)
            machine.migration.sync(clock.now)
        if events is not None:
            # Boundary stalls live outside any layer span; exporting them on
            # the step-end event is what lets attribution components sum to
            # the step duration exactly.
            events.end(
                "step", "step", step=step, pre_stall=pre_stall, post_stall=post_stall
            )

        result.end_time = clock.now
        result.promoted_bytes = int(
            machine.stats.counter("migration.promoted_bytes").value - promoted0
        )
        result.demoted_bytes = int(
            machine.stats.counter("migration.demoted_bytes").value - demoted0
        )
        result.peak_fast = machine.fast.peak_used
        result.peak_slow = machine.slow.peak_used
        if self._metrics is not None:
            self._metrics.counter("executor.steps").add(1)
            self._metrics.histogram("executor.step_time").observe(result.duration)
            self._metrics.series("executor.fast_used").sample(
                machine.fast.used, ts=clock.now
            )
        for observer in self.observers:
            observer.on_step_end(step, result)
        self._steps_run += 1
        return result

    def run_steps(self, count: int) -> List[StepResult]:
        if count <= 0:
            raise ValueError(f"step count must be positive, got {count!r}")
        return [self.run_step() for _ in range(count)]

    # -------------------------------------------------------------- helpers

    def _charge_stall(self, result: StepResult, stall: float) -> None:
        if stall < 0:
            raise ExecutionError(f"policy returned negative stall {stall!r}")
        if stall:
            result.stall_time += stall
            self.clock.advance(stall)

    def _ensure_allocated(self, op, now: float) -> None:
        for access in op.accesses:
            tensor = access.tensor
            if tensor.preallocated:
                continue
            if self.allocator.mapping(tensor) is None:
                mapping = self.allocator.alloc(tensor, now)
                self.policy.on_alloc(tensor, mapping, now)
                for observer in self.observers:
                    observer.on_tensor_allocated(tensor, mapping, now)

    def _free_layer_tensors(self, layer: Layer) -> None:
        now = self.clock.now
        for tensor in self._frees_by_layer.get(layer.index, ()):
            mapping = self.allocator.mapping(tensor)
            if mapping is None:
                continue  # tensor skipped this step (control flow)
            for observer in self.observers:
                observer.on_tensor_freed(tensor, mapping, now)
            self.policy.on_free(tensor, mapping, now)
            self.allocator.free(tensor, now)
