"""The training-step executor.

Runs a :class:`~repro.dnn.graph.Graph` against a
:class:`~repro.mem.machine.Machine` under a
:class:`~repro.dnn.policy.PlacementPolicy`, producing a
:class:`StepResult` per step with the timing/traffic breakdown the
experiments report.

Timing model per op::

    op_time = max(compute_time, memory_time) + stall + fault_overhead

``compute_time`` is FLOPs over the platform's effective throughput;
``memory_time`` prices each access against the tier its pages occupy
(roofline-style overlap of compute and memory streams); ``stall`` is
exposed migration time (waiting for residency / Case-3 waits); ``fault``
is profiling-fault handling, nonzero only while Sentinel profiles.

Tensor lifecycle follows the paper's TensorFlow observations: preallocated
tensors (weights, inputs, globals) are mapped once before the first step and
persist; every other tensor is allocated at its first access and freed at
the end of the last layer that touches it, *every step* — which is what lets
Sentinel re-organize them across steps without creating wild pointers.

Execution model
---------------

The step body lives in :meth:`Executor.step_process`, a generator that
yields every interval the simulated clock must advance through (op
execution, policy stalls).  Two drivers consume it:

* the **engine driver** (the default): :meth:`Executor.run_step` spawns the
  generator as a :class:`repro.sim.engine.Process` on a discrete-event
  engine shared with the machine, so channel completions, migration
  commits, and — in cluster mode — *other workloads* interleave with this
  step at their true simulated instants;
* the **inline driver** (:meth:`Executor._run_step_inline`): advances the
  clock directly per yield with no engine, reproducing the original
  lockstep loop.  The differential suite pins both drivers to identical
  per-step times, traffic, and trace digests.

``run_step()``/``run_steps()`` remain the public API (they now drive the
engine internally — see the migration note in docs/API.md); new code that
co-schedules workloads should spawn :meth:`step_process` on a shared
engine via :func:`repro.harness.cluster.run_concurrent`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - scalar fallback, see repro.accel
    np = None  # type: ignore[assignment]

from repro import accel
from repro.dnn.alloc import Allocator, TensorMapping
from repro.dnn.graph import Graph, Layer
from repro.dnn.ops import Op
from repro.dnn.policy import PlacementPolicy
from repro.dnn.tensor import Tensor
from repro.errors import ExecutionError
from repro.mem.machine import Machine
from repro.sim.clock import Clock
from repro.sim.engine import Engine


class StepObserver:
    """Hooks for instrumentation (the profiler is one of these)."""

    def on_step_start(self, step: int, now: float) -> None:
        pass

    def on_tensor_allocated(
        self, tensor: Tensor, mapping: TensorMapping, now: float
    ) -> None:
        pass

    def on_tensor_freed(
        self, tensor: Tensor, mapping: TensorMapping, now: float
    ) -> None:
        pass

    def on_layer_end(self, layer: Layer, now: float) -> None:
        pass

    def on_step_end(self, step: int, result: "StepResult") -> None:
        pass


@dataclass
class StepResult:
    """Timing and traffic breakdown of one training step.

    In cluster runs (several executors on one machine) the
    ``promoted_bytes``/``demoted_bytes`` deltas and ``peak_fast``/
    ``peak_slow`` fields read *machine-global* state: they attribute all
    migration traffic during the step's wall-span to this workload.  For a
    single workload that is exact; for co-scheduled workloads use the
    cluster report's aggregate counters instead.
    """

    step: int
    start_time: float
    end_time: float
    compute_time: float = 0.0
    mem_time: float = 0.0
    stall_time: float = 0.0
    fault_time: float = 0.0
    bytes_fast: int = 0
    bytes_slow: int = 0
    promoted_bytes: int = 0
    demoted_bytes: int = 0
    peak_fast: int = 0
    peak_slow: int = 0
    layer_spans: List[Tuple[int, float, float]] = field(default_factory=list)
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def migrated_bytes(self) -> int:
        return self.promoted_bytes + self.demoted_bytes

    @property
    def exposed_overhead(self) -> float:
        """Time on the critical path not spent computing."""
        return self.stall_time + self.fault_time


class Executor:
    """Executes training steps of one graph under one policy.

    Args:
        graph: the workload.
        machine: the memory system; shared between executors in cluster
            mode.
        policy: placement policy instance (one per executor — policies
            hold per-workload state).
        allocator: override the policy's allocator.
        observers: instrumentation hooks.
        tracer: optional per-access tracer (profiler-style).
        engine: share an existing discrete-event engine (cluster mode).
            The executor adopts the engine's clock so all co-scheduled
            workloads tick the same timeline.  ``None`` (the default)
            creates a private engine lazily on the first ``run_step()``.
        track: trace-track label for this workload's step/layer spans;
            the default ``"main"`` keeps single-workload traces
            byte-identical to historical ones.
    """

    def __init__(
        self,
        graph: Graph,
        machine: Machine,
        policy: PlacementPolicy,
        allocator: Optional[Allocator] = None,
        observers: Sequence[StepObserver] = (),
        tracer: Optional["Tracer"] = None,
        engine: Optional[Engine] = None,
        track: str = "main",
    ) -> None:
        self.graph = graph
        self.machine = machine
        self.policy = policy
        self.observers = list(observers)
        self.tracer = tracer
        self.track = track
        self.engine = engine
        self.clock = engine.clock if engine is not None else Clock()
        #: structured event tracer (repro.obs), owned by the machine; the
        #: executor's clock becomes its timestamp source so clockless
        #: components (fault handler, chaos injector) stamp correctly.
        self._events = machine.tracer
        if self._events is not None:
            self._events.bind_clock(self.clock)
        #: optional detailed metrics registry (``Machine(metrics=...)``);
        #: sampling sites below are one ``is not None`` check each, so
        #: un-metered runs stay byte-identical.
        self._metrics = machine.metrics
        #: optional RAS engine (``Machine(ras=...)``).  Every hook below is
        #: one ``is None`` check; RAS-free runs stay byte-identical.  The
        #: producers table feeds rematerialization: the first op that
        #: *writes* a tensor is the op re-run to rebuild it after a UE.
        self._ras = machine.ras
        self._producers: Dict[int, Op] = {}
        if self._ras is not None:
            for layer in graph.layers:
                for op in layer.ops:
                    for access in op.accesses:
                        tid = access.tensor.tid
                        if access.is_write and tid not in self._producers:
                            self._producers[tid] = op
        machine.stats.bind_clock(self.clock)
        policy.bind(machine, graph)
        if engine is not None:
            machine.bind_engine(engine)
            policy.on_engine(engine)
        self.allocator = allocator if allocator is not None else policy.make_allocator()
        self._steps_run = 0
        self._frees_by_layer = self._index_frees(graph)
        self._build_op_tables()
        self._preallocate()

    def _build_op_tables(self) -> None:
        """Per-op static accounting tables for the vectorized step path.

        The graph and platform are fixed for the executor's lifetime, so
        per-op compute times (``flops / throughput``) can be batch-computed
        up front — one numpy elementwise division produces the identical
        IEEE-754 quotients the scalar loop derives per op — and each op's
        non-preallocated operands (the only ones ``_ensure_allocated`` can
        ever act on) can be filtered once instead of per access per step.
        ``tolist()`` hands back native floats so downstream times, trace
        values, and goldens keep their exact historical representations.
        """
        ops = [op for layer in self.graph.layers for op in layer.ops]
        throughput = self.machine.platform.compute_throughput
        if np is not None:
            flops = np.array([op.flops for op in ops], dtype=np.float64)
            self._op_compute_times: List[float] = (flops / throughput).tolist()
        else:
            self._op_compute_times = [op.flops / throughput for op in ops]
        self._op_step_tensors: List[Tuple[Tensor, ...]] = [
            tuple(
                access.tensor
                for access in op.accesses
                if not access.tensor.preallocated
            )
            for op in ops
        ]

    @staticmethod
    def _index_frees(graph: Graph) -> Dict[int, List[Tensor]]:
        frees: Dict[int, List[Tensor]] = {}
        for tensor in graph.step_tensors():
            assert tensor.free_layer is not None
            frees.setdefault(tensor.free_layer, []).append(tensor)
        return frees

    def _preallocate(self) -> None:
        now = self.clock.now
        for tensor in self.graph.preallocated():
            mapping = self.allocator.alloc(tensor, now)
            self.policy.on_alloc(tensor, mapping, now)
            for observer in self.observers:
                observer.on_tensor_allocated(tensor, mapping, now)

    # ------------------------------------------------------------ execution

    def step_process(self) -> Generator[float, None, StepResult]:
        """One training step as an engine process.

        Yields the intervals the clock must advance through (op execution
        times and policy stalls); the driver — engine or inline — performs
        the advance, so the body never touches the clock directly.  The
        generator's return value is the step's :class:`StepResult`.
        """
        step = self._steps_run
        clock = self.clock
        policy = self.policy
        machine = self.machine
        allocator = self.allocator
        track = self.track

        machine.fast.reset_peak()
        machine.slow.reset_peak()
        promoted0 = machine.stats.counter("migration.promoted_bytes").value
        demoted0 = machine.stats.counter("migration.demoted_bytes").value

        result = StepResult(step=step, start_time=clock.now, end_time=clock.now)
        events = self._events
        # Vectorized-path bindings: precomputed per-op tables plus the
        # allocator's live mapping dict, hoisted out of the op loop.  The
        # scalar reference path below re-derives everything per op/access.
        vectorized = accel.vectorized_enabled()
        op_compute_times = self._op_compute_times
        op_step_tensors = self._op_step_tensors
        mapping_of = allocator.mapping_table().get
        ras = self._ras
        producer_of = self._producers.get
        op_index = 0
        if events is not None:
            events.begin("step", "step", track=track, step=step)
        for observer in self.observers:
            observer.on_step_start(step, clock.now)
        pre_stall = policy.on_step_start(step, clock.now)
        yield from self._charge_stall(result, pre_stall)
        step_ras = 0.0

        for layer in self.graph.layers:
            layer_start = clock.now
            if events is not None:
                events.begin(
                    "layer", "step", track=track, layer=layer.index, label=layer.name
                )
            # Per-layer timing components, mirrored onto the layer-end trace
            # event so attribution (repro.obs.critpath) can decompose a step
            # without re-deriving the timing model: the clock only advances
            # through op_time and _charge_stall, so within a layer span
            # duration == exec + stall + fault exactly.
            layer_compute = 0.0
            layer_mem = 0.0
            layer_exec = 0.0
            layer_stall = 0.0
            layer_fault = 0.0
            layer_ras = 0.0
            stall = policy.on_layer_start(layer, clock.now)
            yield from self._charge_stall(result, stall)
            layer_stall += stall

            for op in layer.ops:
                if vectorized:
                    for tensor in op_step_tensors[op_index]:
                        if mapping_of(tensor.tid) is None:
                            mapping = allocator.alloc(tensor, clock.now)
                            policy.on_alloc(tensor, mapping, clock.now)
                            for observer in self.observers:
                                observer.on_tensor_allocated(
                                    tensor, mapping, clock.now
                                )
                    compute_time = op_compute_times[op_index]
                else:
                    self._ensure_allocated(op, clock.now)
                    compute_time = op.flops / machine.platform.compute_throughput
                op_index += 1
                mem_time = 0.0
                stall_time = 0.0
                fault_time = 0.0
                ras_time = 0.0
                for access in op.accesses:
                    mapping = mapping_of(access.tensor.tid)
                    if mapping is None:
                        raise ExecutionError(
                            f"op {op.name!r} touches unallocated tensor "
                            f"{access.tensor.name!r}"
                        )
                    charge = policy.charge_access(
                        access.tensor, mapping, access, clock.now
                    )
                    if self.tracer is not None:
                        self.tracer.record(step, layer, op, access, charge, clock.now)
                    mem_time += charge.mem_time
                    stall_time += charge.stall
                    fault_time += charge.fault
                    result.bytes_fast += charge.bytes_fast
                    result.bytes_slow += charge.bytes_slow
                    if ras is not None:
                        ras_time += ras.check_access(
                            access.tensor,
                            mapping,
                            clock.now,
                            producer_of(access.tensor.tid),
                            allocator,
                        )
                op_exec = max(compute_time, mem_time)
                op_time = op_exec + stall_time + fault_time + ras_time
                result.compute_time += compute_time
                result.mem_time += mem_time
                result.stall_time += stall_time
                result.fault_time += fault_time
                layer_compute += compute_time
                layer_mem += mem_time
                layer_exec += op_exec
                layer_stall += stall_time
                layer_fault += fault_time
                layer_ras += ras_time
                yield op_time
                machine.migration.sync(clock.now)

            self._free_layer_tensors(layer)
            stall = policy.on_layer_end(layer, clock.now)
            yield from self._charge_stall(result, stall)
            layer_stall += stall
            if ras is not None:
                # Age memory by the layer's wall-span: errors accumulate in
                # proportion to residency time, and the patrol scrubber's
                # analytic cursor drains up to the layer boundary.
                ras.age(clock.now - layer_start, clock.now)
                step_ras += layer_ras
            for observer in self.observers:
                observer.on_layer_end(layer, clock.now)
            result.layer_spans.append((layer.index, layer_start, clock.now))
            if events is not None:
                # The ras component rides the layer-end event only when a
                # RAS engine is attached, keeping RAS-free traces (and their
                # golden digests) byte-identical to historical ones.
                ras_args = {} if ras is None else {"ras": layer_ras}
                events.end(
                    "layer",
                    "step",
                    track=track,
                    compute=layer_compute,
                    mem=layer_mem,
                    exec=layer_exec,
                    stall=layer_stall,
                    fault=layer_fault,
                    **ras_args,
                )
            if self._metrics is not None:
                self._metrics.histogram("executor.layer_time").observe(
                    clock.now - layer_start
                )

        post_stall = policy.on_step_end(step, clock.now)
        yield from self._charge_stall(result, post_stall)
        machine.migration.sync(clock.now)
        if machine.pressure is not None:
            # Step boundary: refresh watermark state and, for arena-style
            # allocators under sustained pressure, run bounded compaction.
            machine.pressure.end_step(allocator, clock.now)
            machine.migration.sync(clock.now)
        if events is not None:
            # Boundary stalls live outside any layer span; exporting them on
            # the step-end event is what lets attribution components sum to
            # the step duration exactly.
            events.end(
                "step",
                "step",
                track=track,
                step=step,
                pre_stall=pre_stall,
                post_stall=post_stall,
            )

        result.end_time = clock.now
        result.promoted_bytes = int(
            machine.stats.counter("migration.promoted_bytes").value - promoted0
        )
        result.demoted_bytes = int(
            machine.stats.counter("migration.demoted_bytes").value - demoted0
        )
        result.peak_fast = machine.fast.peak_used
        result.peak_slow = machine.slow.peak_used
        if ras is not None:
            result.extras["ras_time"] = step_ras
        if self._metrics is not None:
            self._metrics.counter("executor.steps").add(1)
            self._metrics.histogram("executor.step_time").observe(result.duration)
            self._metrics.series("executor.fast_used").sample(
                machine.fast.used, ts=clock.now
            )
        if machine.migration.admission is not None:
            # Online feedback: each step's stall share is the live proxy
            # for the critical path's migration_stall attribution.
            machine.migration.admission.on_step(
                step, result.duration, result.stall_time
            )
        for observer in self.observers:
            observer.on_step_end(step, result)
        self._steps_run += 1
        return result

    def _ensure_engine(self) -> Engine:
        if self.engine is None:
            if self.machine.engine is not None:
                raise ExecutionError(
                    "machine is already driven by an engine; pass engine= to "
                    "Executor so co-scheduled workloads share one timeline"
                )
            self.engine = Engine(self.clock)
            self.machine.bind_engine(self.engine)
            self.policy.on_engine(self.engine)
        return self.engine

    def run_step(self) -> StepResult:
        """Execute one training step and return its breakdown.

        Compatibility shim over the event engine: the step body runs as an
        engine process, interleaved with channel-completion events, and
        events scheduled beyond the step's end (transfers still in flight)
        stay queued for the next step.  Times are byte-identical to the
        historical lockstep loop — the differential suite pins this.
        """
        engine = self._ensure_engine()
        proc = engine.process(
            self.step_process(), name=f"{self.track}:step-{self._steps_run}"
        )
        return engine.run_until_complete(proc)

    def run_steps(self, count: int) -> List[StepResult]:
        if count <= 0:
            raise ValueError(f"step count must be positive, got {count!r}")
        return [self.run_step() for _ in range(count)]

    def _run_step_inline(self) -> StepResult:
        """Drive one step with direct clock advances and no engine.

        This is the original lockstep loop, kept as the reference
        implementation for the engine-vs-inline differential suite.  It
        must not be mixed with engine-driven steps on the same machine.
        """
        gen = self.step_process()
        try:
            delay = next(gen)
            while True:
                self.clock.advance(delay)
                delay = gen.send(None)
        except StopIteration as stop:
            return stop.value

    def teardown(self) -> None:
        """Release every page this executor's allocator still maps.

        Serving-scale churn needs jobs to *leave*: when a job completes,
        times out, or dies in a machine-failure episode, its preallocated
        tensors — and, after a mid-step interrupt, any step tensors still
        live — must hand their fast/slow capacity back to co-tenants.
        Frees go through :meth:`repro.mem.machine.Machine.unmap_run`, which
        settles in-flight migrations first, so the invariant auditor stays
        clean afterwards.

        Policy hooks are deliberately *not* invoked: the policy dies with
        the executor, and its bookkeeping (Sentinel phase state, interval
        plans) may be mid-step-inconsistent after an interrupt.  Idempotent;
        the executor must not run further steps after teardown.
        """
        self.allocator.release_all(self.clock.now)

    # -------------------------------------------------------------- helpers

    def _charge_stall(
        self, result: StepResult, stall: float
    ) -> Generator[float, None, None]:
        if stall < 0:
            raise ExecutionError(f"policy returned negative stall {stall!r}")
        if stall:
            result.stall_time += stall
            yield stall

    def _ensure_allocated(self, op, now: float) -> None:
        for access in op.accesses:
            tensor = access.tensor
            if tensor.preallocated:
                continue
            if self.allocator.mapping(tensor) is None:
                mapping = self.allocator.alloc(tensor, now)
                self.policy.on_alloc(tensor, mapping, now)
                for observer in self.observers:
                    observer.on_tensor_allocated(tensor, mapping, now)

    def _free_layer_tensors(self, layer: Layer) -> None:
        now = self.clock.now
        for tensor in self._frees_by_layer.get(layer.index, ()):
            mapping = self.allocator.mapping(tensor)
            if mapping is None:
                continue  # tensor skipped this step (control flow)
            for observer in self.observers:
                observer.on_tensor_freed(tensor, mapping, now)
            self.policy.on_free(tensor, mapping, now)
            self.allocator.free(tensor, now)
