"""Tensor-to-page allocators.

Three allocation policies appear in the paper:

* **Packed** (:class:`PackedAllocator`) — the TensorFlow-default behaviour a
  BFC-style arena produces: consecutive allocations fill pages back to back,
  so small tensors of unrelated lifetime and hotness share pages.  This is
  the source of the page-level false sharing the paper measures
  (Observation 3) and is the allocator every baseline runs on.
* **Page-aligned** (:class:`PageAlignedAllocator`) — one tensor per page
  (run), used during Sentinel's profiling step so page-level access counts
  are tensor-level access counts.  Costs a little memory for the one step.
* **Grouped** (:class:`GroupedAllocator`) — Sentinel's post-profiling data
  reorganization: tensors only share pages within a caller-defined group
  (same-layer short-lived tensors; long-lived tensors with identical
  lifetime, ordered by hotness), so a page's contents always migrate for the
  same reason.

All allocators map tensors onto page *runs* (see :mod:`repro.mem.page`) and
keep per-run occupancy so a run is unmapped exactly when its last resident
byte is freed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set

from repro.dnn.tensor import Tensor
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.page import PageTableEntry

#: Chooses the tier for a fresh run holding (at least part of) ``tensor``.
PlaceFn = Callable[[Tensor, float], DeviceKind]

#: Maps a tensor to its co-allocation group; ``None`` means "never share".
GroupFn = Callable[[Tensor], Optional[Hashable]]


@dataclass
class RunShare:
    """Part of a tensor resident in one page run."""

    run: PageTableEntry
    nbytes: int


@dataclass
class TensorMapping:
    """Where a tensor's bytes live: a list of run shares in address order."""

    tensor: Tensor
    shares: List[RunShare] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return sum(s.nbytes for s in self.shares)

    def runs(self) -> List[PageTableEntry]:
        return [s.run for s in self.shares]

    def bytes_on(self, device: DeviceKind, now: float) -> int:
        """Tensor bytes whose effective residency is ``device`` at ``now``."""
        return sum(
            s.nbytes for s in self.shares if s.run.effective_device(now) is device
        )


class AllocationError(RuntimeError):
    """Raised on allocator misuse (double alloc, free of unknown tensor...)."""


@dataclass
class _OpenPage:
    """A partially-filled single-page run accepting further small tensors."""

    run: PageTableEntry
    used: int


class Allocator:
    """Base allocator: group-keyed page packing over the machine's page table.

    Subclasses only choose the grouping function.  ``group_of`` returning a
    key packs tensors of that key together (sharing pages); returning
    ``None`` gives the tensor dedicated page-aligned runs.
    """

    def __init__(self, machine: Machine, place: PlaceFn) -> None:
        self.machine = machine
        self.place = place
        self._mappings: Dict[int, TensorMapping] = {}
        self._run_users: Dict[int, Set[int]] = {}
        self._open: Dict[Hashable, _OpenPage] = {}
        #: bytes requested by tensors currently live (packed footprint)
        self.live_tensor_bytes = 0
        #: pages currently mapped on behalf of this allocator
        self.live_page_bytes = 0
        self.peak_tensor_bytes = 0
        self.peak_page_bytes = 0

    # ------------------------------------------------------------- grouping

    def group_of(self, tensor: Tensor) -> Optional[Hashable]:
        raise NotImplementedError

    # ------------------------------------------------------------ interface

    def mapping(self, tensor: Tensor) -> Optional[TensorMapping]:
        return self._mappings.get(tensor.tid)

    def mapping_table(self) -> Dict[int, TensorMapping]:
        """The live ``tid -> mapping`` dict itself (treat as read-only).

        Hot paths (the executor's per-access lookups) bind ``.get`` once
        per step instead of paying a delegating call per access.  The dict
        object is stable for the allocator's lifetime — entries come and
        go, the container never does — so a bound method stays valid.
        """
        return self._mappings

    def live_mappings(self) -> Iterable[TensorMapping]:
        return self._mappings.values()

    def alloc(self, tensor: Tensor, now: float) -> TensorMapping:
        if tensor.tid in self._mappings:
            raise AllocationError(f"tensor {tensor.name!r} is already allocated")
        page_size = self.machine.page_size
        mapping = TensorMapping(tensor=tensor)
        remaining = tensor.nbytes
        group = self.group_of(tensor)

        if group is not None:
            remaining = self._fill_open_page(tensor, group, remaining, mapping)

        if remaining > 0:
            whole_pages = remaining // page_size
            tail = remaining - whole_pages * page_size
            if whole_pages > 0:
                run = self._map_run(tensor, whole_pages, now)
                self._attach(run, tensor, whole_pages * page_size, mapping)
            if tail > 0:
                run = self._map_run(tensor, 1, now)
                self._attach(run, tensor, tail, mapping)
                if group is not None:
                    # Leave the tail page open for the next group member —
                    # this is where packed allocation creates false sharing.
                    self._open[group] = _OpenPage(run=run, used=tail)

        self._mappings[tensor.tid] = mapping
        self.live_tensor_bytes += tensor.nbytes
        self.peak_tensor_bytes = max(self.peak_tensor_bytes, self.live_tensor_bytes)
        return mapping

    def free(self, tensor: Tensor, now: float) -> TensorMapping:
        mapping = self._mappings.pop(tensor.tid, None)
        if mapping is None:
            raise AllocationError(f"tensor {tensor.name!r} is not allocated")
        page_size = self.machine.page_size
        dead: List[PageTableEntry] = []
        for share in mapping.shares:
            users = self._run_users.get(share.run.vpn)
            if users is None:
                continue  # run already unmapped underneath the allocator
            users.discard(tensor.tid)
            if not users:
                self._forget_open(share.run)
                del self._run_users[share.run.vpn]
                self.live_page_bytes -= share.run.npages * page_size
                if share.run.vpn in self.machine.page_table:
                    dead.append(share.run)
        if dead:
            # One batched unmap (single TLB shootdown) — run-release
            # accounting is per-run independent, so this is equivalent to
            # unmapping each as the scan finds it.
            self.machine.unmap_runs(dead, now)
        self.live_tensor_bytes -= tensor.nbytes
        return mapping

    def release_all(self, now: float) -> None:
        """Free every live tensor and return all pages to the machine.

        Teardown entry point: a departing workload must hand its capacity
        back to co-tenants even when tensors are still live (mid-step
        interrupt, timeout).  Frees run in tensor-id order so teardown is
        deterministic.  Arena-style subclasses override this to also
        release slabs their ``free`` retains.
        """
        for mapping in sorted(self._mappings.values(), key=lambda m: m.tensor.tid):
            self.free(mapping.tensor, now)
        self._open.clear()

    def retire_page(self, run: PageTableEntry, vpn: int, now: float) -> bool:
        """Carve the dead page ``vpn`` out of ``run`` and unmap it.

        Page-retirement support for :class:`repro.mem.ras.RasEngine`: the
        run is split so exactly one page covers ``vpn``, that page is
        unmapped (its bytes return to the device, where the RAS engine
        immediately withholds them again via ``reserve()``), and any
        surviving fragment the split created is re-registered with the
        owning tensors — a split tail is referenced by no
        :class:`RunShare`, so without registration the fragment would leak
        when its tensors are freed.  The registration shares are
        zero-byte: they keep the free path walking the fragment without
        changing access pricing (zero-byte shares are skipped) or
        residency accounting.

        Returns True when the page was unmapped; False when the run is
        not (or no longer) managed by this allocator, is in flight, or
        does not cover ``vpn`` — the caller then retires the frame by
        capacity accounting alone.
        """
        table = self.machine.page_table
        if run.vpn not in table or table.entry(run.vpn) is not run:
            return False
        if run.in_flight or not run.vpn <= vpn < run.vpn + run.npages:
            return False
        users = self._run_users.get(run.vpn)
        if not users:
            return False
        dead = run if vpn == run.vpn else table.split(run.vpn, vpn - run.vpn)
        if dead.npages > 1:
            rest = table.split(dead.vpn, 1)
            self._adopt(rest, users)
        if dead is not run:
            # A fresh entry no share references: account its page here;
            # the head run's eventual free covers only its shrunk range.
            self.live_page_bytes -= self.machine.page_size
        self._forget_open(run)
        self.machine.unmap_run(dead, now)
        return True

    def _adopt(self, fragment: PageTableEntry, users: Set[int]) -> None:
        """Register a split-off fragment with every tensor using the run."""
        self._run_users[fragment.vpn] = set(users)
        for tid in users:
            mapping = self._mappings.get(tid)
            if mapping is not None:
                mapping.shares.append(RunShare(run=fragment, nbytes=0))

    # -------------------------------------------------------------- helpers

    def _fill_open_page(
        self, tensor: Tensor, group: Hashable, remaining: int, mapping: TensorMapping
    ) -> int:
        page_size = self.machine.page_size
        open_page = self._open.get(group)
        if open_page is None:
            return remaining
        room = page_size - open_page.used
        if (
            room <= 0
            or open_page.run.vpn not in self._run_users
            or open_page.run.vpn not in self.machine.page_table
        ):
            # The run may have been unmapped underneath us (an eviction
            # through machine.unmap_run bypasses the allocator, leaving a
            # stale _run_users entry): attaching a new tensor to it would
            # resurrect a dead mapping.  Drop the open slot and start fresh.
            del self._open[group]
            return remaining
        take = min(room, remaining)
        self._attach(open_page.run, tensor, take, mapping)
        open_page.used += take
        if open_page.used >= page_size:
            del self._open[group]
        return remaining - take

    def _map_run(self, tensor: Tensor, npages: int, now: float) -> PageTableEntry:
        device = self.place(tensor, now)
        run = self.machine.map_run(npages, device, now)
        self.live_page_bytes += npages * self.machine.page_size
        self.peak_page_bytes = max(self.peak_page_bytes, self.live_page_bytes)
        return run

    def _attach(
        self, run: PageTableEntry, tensor: Tensor, nbytes: int, mapping: TensorMapping
    ) -> None:
        mapping.shares.append(RunShare(run=run, nbytes=nbytes))
        self._run_users.setdefault(run.vpn, set()).add(tensor.tid)

    def _forget_open(self, run: PageTableEntry) -> None:
        for key, open_page in list(self._open.items()):
            if open_page.run.vpn == run.vpn:
                del self._open[key]

    # ---------------------------------------------------------------- stats

    @property
    def fragmentation_overhead(self) -> float:
        """Peak page footprint relative to peak packed tensor footprint - 1."""
        if self.peak_tensor_bytes == 0:
            return 0.0
        return self.peak_page_bytes / self.peak_tensor_bytes - 1.0

    def users_of(self, run: PageTableEntry) -> Set[int]:
        """Tensor ids currently resident in ``run`` (empty set if none)."""
        return set(self._run_users.get(run.vpn, ()))


class PackedAllocator(Allocator):
    """TensorFlow-default packing: everything shares one allocation stream."""

    def group_of(self, tensor: Tensor) -> Optional[Hashable]:
        return "arena"


class PageAlignedAllocator(Allocator):
    """One tensor per page run — Sentinel's profiling-phase allocator."""

    def group_of(self, tensor: Tensor) -> Optional[Hashable]:
        return None


class GroupedAllocator(Allocator):
    """Sentinel's reorganized allocation: share pages only within a group."""

    def __init__(self, machine: Machine, place: PlaceFn, group_fn: GroupFn) -> None:
        super().__init__(machine, place)
        self._group_fn = group_fn

    def group_of(self, tensor: Tensor) -> Optional[Hashable]:
        return self._group_fn(tensor)
