"""Dataflow graphs of training steps, and the builder model zoos use.

A :class:`Graph` is one training step: a list of :class:`Layer` objects
(forward layers followed by backward layers), each holding ops in execution
order.  The paper's management granularity is the DNN layer — lifetimes,
migration intervals, and the profiler's per-layer attribution all key off
layer indices — so layers are first-class here.

:class:`GraphBuilder` is the authoring API used by :mod:`repro.models`.  It
assigns tensor lifetimes automatically: a tensor is allocated in the layer
that creates it and freed at the end of the last layer that accesses it,
matching the framework-managed (de)allocation Sentinel observes in
TensorFlow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.dnn.ops import Op, TensorAccess
from repro.dnn.tensor import PRE_STEP, Tensor, TensorKind


class GraphError(RuntimeError):
    """Raised on malformed graphs (use-before-create, empty layers...)."""


class Phase(enum.Enum):
    FORWARD = "forward"
    BACKWARD = "backward"


@dataclass
class Layer:
    """A group of ops; the granularity of Sentinel's tensor management."""

    index: int
    name: str
    phase: Phase
    ops: List[Op] = field(default_factory=list)

    @property
    def flops(self) -> float:
        return sum(op.flops for op in self.ops)

    def tensors(self) -> List[Tensor]:
        seen: Dict[int, Tensor] = {}
        for op in self.ops:
            for access in op.accesses:
                seen.setdefault(access.tensor.tid, access.tensor)
        return list(seen.values())


class Graph:
    """One training step's dataflow graph."""

    def __init__(
        self,
        name: str,
        batch_size: int,
        layers: List[Layer],
        tensors: List[Tensor],
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.batch_size = batch_size
        self.layers = layers
        self.tensors = tensors
        self.metadata = dict(metadata or {})
        self._by_name = {t.name: t for t in tensors}

    # ------------------------------------------------------------ structure

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def tensor(self, name: str) -> Tensor:
        try:
            return self._by_name[name]
        except KeyError:
            raise GraphError(f"no tensor named {name!r} in graph {self.name!r}")

    def preallocated(self) -> List[Tensor]:
        return [t for t in self.tensors if t.preallocated]

    def step_tensors(self) -> List[Tensor]:
        """Tensors allocated and freed within each training step."""
        return [t for t in self.tensors if not t.preallocated]

    def signature(self) -> Tuple:
        """Structural fingerprint used to detect control-flow divergence.

        Two batches that execute the same dataflow produce equal signatures;
        a new signature triggers re-profiling (paper §IV-E).
        """
        return tuple(
            (layer.name, layer.phase.value, tuple(op.name for op in layer.ops))
            for layer in self.layers
        )

    # --------------------------------------------------------------- memory

    def live_bytes_at(self, layer_index: int) -> int:
        """Bytes of tensors alive during ``layer_index`` (packed lower bound)."""
        total = 0
        for tensor in self.tensors:
            if tensor.preallocated:
                total += tensor.nbytes
            elif tensor.alloc_layer <= layer_index and (
                tensor.free_layer is not None and layer_index <= tensor.free_layer
            ):
                total += tensor.nbytes
        return total

    def peak_memory_bytes(self) -> int:
        """Peak memory consumption over the step (packed lower bound).

        This is the figure the paper sizes fast memory against ("20% of the
        peak memory consumption of DNN models").
        """
        if not self.layers:
            return sum(t.nbytes for t in self.preallocated())
        return max(self.live_bytes_at(i) for i in range(self.num_layers))

    def total_flops(self) -> float:
        return sum(layer.flops for layer in self.layers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph({self.name!r}, batch={self.batch_size}, "
            f"{self.num_layers} layers, {len(self.tensors)} tensors)"
        )


#: What `GraphBuilder.op` accepts for each read/write operand.
AccessSpec = Union[Tensor, Tuple[Tensor, int], Tuple[Tensor, int, int], TensorAccess]


class GraphBuilder:
    """Incremental construction of a training-step graph.

    Typical use (see :mod:`repro.models` for full examples)::

        b = GraphBuilder("toy", batch_size=8)
        w = b.weight("fc.w", 4096)
        x = b.input("x", 1024)
        with b.layer("fc", Phase.FORWARD):
            y = b.tensor("fc.out", 1024, TensorKind.ACTIVATION)
            b.op("matmul", flops=1e6, reads=[x, w], writes=[y])
        graph = b.finish()
    """

    def __init__(self, name: str, batch_size: int) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size!r}")
        self.name = name
        self.batch_size = batch_size
        self._tensors: List[Tensor] = []
        self._layers: List[Layer] = []
        self._current: Optional[Layer] = None
        self._created_in: Dict[int, int] = {}  # tid -> creating layer index
        self.metadata: Dict[str, object] = {}

    # -------------------------------------------------------------- tensors

    def _new_tensor(
        self, name: str, nbytes: int, kind: TensorKind, preallocated: bool
    ) -> Tensor:
        tensor = Tensor(
            tid=len(self._tensors),
            name=name,
            nbytes=int(nbytes),
            kind=kind,
            preallocated=preallocated,
        )
        self._tensors.append(tensor)
        return tensor

    def weight(self, name: str, nbytes: int) -> Tensor:
        """A model weight: preallocated before the training loop."""
        return self._new_tensor(name, nbytes, TensorKind.WEIGHT, preallocated=True)

    def global_tensor(self, name: str, nbytes: int) -> Tensor:
        """A tiny runtime global (step counter, LR, loss scale): preallocated."""
        return self._new_tensor(name, nbytes, TensorKind.GLOBAL, preallocated=True)

    def input(self, name: str, nbytes: int) -> Tensor:
        """A training-input buffer: preallocated (the input pipeline owns it)."""
        return self._new_tensor(name, nbytes, TensorKind.INPUT, preallocated=True)

    def tensor(
        self, name: str, nbytes: int, kind: TensorKind = TensorKind.ACTIVATION
    ) -> Tensor:
        """A tensor created inside the current layer."""
        if self._current is None:
            raise GraphError(
                f"tensor {name!r} must be created inside a layer; use weight()/"
                "input()/global_tensor() for preallocated tensors"
            )
        tensor = self._new_tensor(name, nbytes, kind, preallocated=False)
        self._created_in[tensor.tid] = self._current.index
        return tensor

    def temp(self, name: str, nbytes: int) -> Tensor:
        """Shorthand for an intra-layer temporary."""
        return self.tensor(name, nbytes, TensorKind.TEMP)

    # --------------------------------------------------------------- layers

    def begin_layer(self, name: str, phase: Phase = Phase.FORWARD) -> Layer:
        if self._current is not None:
            raise GraphError(
                f"layer {self._current.name!r} is still open; end it first"
            )
        layer = Layer(index=len(self._layers), name=name, phase=phase)
        self._layers.append(layer)
        self._current = layer
        return layer

    def end_layer(self) -> None:
        if self._current is None:
            raise GraphError("no layer is open")
        if not self._current.ops:
            raise GraphError(f"layer {self._current.name!r} has no ops")
        self._current = None

    def layer(self, name: str, phase: Phase = Phase.FORWARD) -> "_LayerContext":
        """Context manager wrapping begin_layer/end_layer."""
        return _LayerContext(self, name, phase)

    # ------------------------------------------------------------------ ops

    @staticmethod
    def _coerce_access(spec: AccessSpec, is_write: bool) -> TensorAccess:
        if isinstance(spec, TensorAccess):
            return spec
        if isinstance(spec, Tensor):
            return TensorAccess(spec, spec.nbytes, is_write)
        if isinstance(spec, tuple):
            if len(spec) == 2:
                tensor, nbytes = spec
                return TensorAccess(tensor, int(nbytes), is_write)
            if len(spec) == 3:
                tensor, nbytes, passes = spec
                return TensorAccess(tensor, int(nbytes), is_write, passes=int(passes))
        raise GraphError(f"cannot interpret access spec {spec!r}")

    def op(
        self,
        name: str,
        flops: float,
        reads: Sequence[AccessSpec] = (),
        writes: Sequence[AccessSpec] = (),
    ) -> Op:
        """Append an op to the current layer."""
        if self._current is None:
            raise GraphError(f"op {name!r} must be added inside a layer")
        accesses = [self._coerce_access(s, is_write=False) for s in reads]
        accesses += [self._coerce_access(s, is_write=True) for s in writes]
        for access in accesses:
            created = self._created_in.get(access.tensor.tid)
            if not access.tensor.preallocated and created is None:
                raise GraphError(
                    f"op {name!r} references tensor {access.tensor.name!r} "
                    "which was never created"
                )
            if created is not None and created > self._current.index:
                raise GraphError(
                    f"op {name!r} in layer {self._current.index} uses tensor "
                    f"{access.tensor.name!r} created later (layer {created})"
                )
        operation = Op(
            name=name,
            flops=flops,
            accesses=accesses,
            layer_index=self._current.index,
        )
        self._current.ops.append(operation)
        return operation

    # --------------------------------------------------------------- finish

    def finish(self) -> Graph:
        """Seal the graph: compute lifetimes and validate."""
        if self._current is not None:
            raise GraphError(f"layer {self._current.name!r} is still open")
        if not self._layers:
            raise GraphError("graph has no layers")

        for tensor in self._tensors:
            tensor.layer_touches = {}
        for layer in self._layers:
            for op in layer.ops:
                for access in op.accesses:
                    touches = access.tensor.layer_touches
                    touches[layer.index] = touches.get(layer.index, 0) + access.passes

        referenced = 0
        for tensor in self._tensors:
            if tensor.preallocated:
                tensor.alloc_layer = PRE_STEP
                tensor.free_layer = None
            else:
                created = self._created_in[tensor.tid]
                if not tensor.layer_touches:
                    raise GraphError(
                        f"tensor {tensor.name!r} is created but never accessed"
                    )
                first = min(tensor.layer_touches)
                if first < created:
                    raise GraphError(
                        f"tensor {tensor.name!r} accessed in layer {first} "
                        f"before creation in layer {created}"
                    )
                tensor.alloc_layer = created
                tensor.free_layer = max(tensor.layer_touches)
            if tensor.layer_touches:
                referenced += 1
        if referenced == 0:
            raise GraphError("graph accesses no tensors")

        return Graph(
            name=self.name,
            batch_size=self.batch_size,
            layers=self._layers,
            tensors=self._tensors,
            metadata=self.metadata,
        )


class _LayerContext:
    def __init__(self, builder: GraphBuilder, name: str, phase: Phase) -> None:
        self._builder = builder
        self._name = name
        self._phase = phase

    def __enter__(self) -> Layer:
        return self._builder.begin_layer(self._name, self._phase)

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._builder.end_layer()
        else:
            # Abandon the open layer so the builder error surfaces, not ours.
            self._builder._current = None
