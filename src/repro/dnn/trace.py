"""Structured access traces of simulated training steps.

A :class:`Tracer` attached to an :class:`~repro.dnn.executor.Executor`
records one row per (op, tensor access) with its pricing outcome — which
tier served it, how long it took, whether it stalled.  Traces are what the
paper's characterization figures (1 and 2) are drawn from, and they make
policy behaviour inspectable offline: where did the slow accesses happen,
which layers migrated, what did an interval boundary cost.

The trace is plain data: filter it, aggregate it, or dump it to CSV.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One op access and how the memory system served it."""

    step: int
    layer_index: int
    layer_name: str
    op_name: str
    tensor_name: str
    tensor_kind: str
    nbytes: int
    passes: int
    is_write: bool
    mem_time: float
    stall: float
    fault_time: float
    bytes_fast: int
    bytes_slow: int
    when: float

    @property
    def served_from(self) -> str:
        """Dominant tier for this access ("fast", "slow", or "mixed")."""
        if self.bytes_slow == 0:
            return "fast"
        if self.bytes_fast == 0:
            return "slow"
        return "mixed"


class Tracer:
    """Collects :class:`TraceRecord` rows during execution.

    Args:
        max_records: safety cap; recording stops (and ``truncated`` is set)
            once reached, so tracing a huge run cannot exhaust memory.
    """

    def __init__(self, max_records: int = 1_000_000) -> None:
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records!r}")
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.truncated = False

    # ------------------------------------------------------------ recording

    def record(
        self,
        step: int,
        layer,
        op,
        access,
        charge,
        when: float,
    ) -> None:
        if len(self.records) >= self.max_records:
            self.truncated = True
            return
        self.records.append(
            TraceRecord(
                step=step,
                layer_index=layer.index,
                layer_name=layer.name,
                op_name=op.name,
                tensor_name=access.tensor.name,
                tensor_kind=access.tensor.kind.value,
                nbytes=access.nbytes,
                passes=access.passes,
                is_write=access.is_write,
                mem_time=charge.mem_time,
                stall=charge.stall,
                fault_time=charge.fault,
                bytes_fast=charge.bytes_fast,
                bytes_slow=charge.bytes_slow,
                when=when,
            )
        )

    def clear(self) -> None:
        self.records.clear()
        self.truncated = False

    # ------------------------------------------------------------- analysis

    def __len__(self) -> int:
        return len(self.records)

    def by_layer(self) -> Dict[int, List[TraceRecord]]:
        grouped: Dict[int, List[TraceRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.layer_index, []).append(record)
        return grouped

    def slow_time_by_kind(self) -> Dict[str, float]:
        """Memory time of slow-served bytes, grouped by tensor kind —
        the first question when debugging a policy's placement."""
        totals: Dict[str, float] = {}
        for record in self.records:
            if record.bytes_slow:
                totals[record.tensor_kind] = (
                    totals.get(record.tensor_kind, 0.0) + record.mem_time
                )
        return totals

    def traffic(self) -> Tuple[int, int]:
        """(fast_bytes, slow_bytes) across the trace."""
        fast = sum(r.bytes_fast for r in self.records)
        slow = sum(r.bytes_slow for r in self.records)
        return fast, slow

    def stall_events(self, threshold: float = 0.0) -> List[TraceRecord]:
        """Accesses that stalled longer than ``threshold`` seconds."""
        return [r for r in self.records if r.stall > threshold]

    def hottest_tensors(self, top: int = 10) -> List[Tuple[str, int]]:
        """Tensor names by number of recorded access events."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.tensor_name] = counts.get(record.tensor_name, 0) + 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:top]

    # --------------------------------------------------------------- export

    FIELDS = (
        "step",
        "layer_index",
        "layer_name",
        "op_name",
        "tensor_name",
        "tensor_kind",
        "nbytes",
        "passes",
        "is_write",
        "mem_time",
        "stall",
        "fault_time",
        "bytes_fast",
        "bytes_slow",
        "when",
    )

    def to_csv(self) -> str:
        """The trace as CSV text (header + one row per record)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.FIELDS)
        for record in self.records:
            writer.writerow(getattr(record, field) for field in self.FIELDS)
        return buffer.getvalue()

    def write_csv(self, path: str) -> None:
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())
