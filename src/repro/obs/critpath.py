"""Critical-path attribution over structured event traces.

This module answers the question Figure 13 of the paper answers for real
hardware: *where does a training step's time actually go?*  Working purely
from a :mod:`repro.obs` trace, it

1. decomposes every ``step`` span into the exclusive components
   ``{compute, migration_stall, channel_contention, fault, pressure_reclaim,
   ras_recovery, idle}`` (:func:`attribute`), with the components summing to
   the measured step duration by construction;
2. reconstructs a per-step dependency DAG from the trace spans — the
   step/layer chain, per-channel FIFO order, and migration-completion →
   consumer-start edges — (:func:`build_step_dags`) and extracts the
   longest path through it (:func:`critical_path`), whose length equals the
   step makespan;
3. answers the what-if queries the paper's overhead analysis implies:
   step time if migration were free, or if the slow tier's bandwidth were
   scaled ``k``-fold (:meth:`StepAttribution.free_migration_time`,
   :meth:`StepAttribution.bandwidth_scaled_time`).

The exact-sum decomposition leans on the executor's timing model rather
than re-deriving it: layer-end events carry per-layer ``exec`` / ``stall``
/ ``fault`` totals and the step-end event carries the boundary stalls, and
since the executor's clock only advances through op time and charged
stalls, ``duration == exec + stall + fault`` holds within each span up to
float rounding (the residue lands in ``idle``).  The stall total is then
subdivided with channel-span evidence from the same window:

* ``channel_contention`` — stall attributable to queueing behind earlier
  transfers: capped by the summed ``queued`` delays of promote-side
  channel spans in the step window;
* ``pressure_reclaim`` — stall attributable to governor reclaim traffic:
  capped by the in-window service time of demote-channel spans tagged
  ``pressure-reclaim``;
* ``migration_stall`` — the remainder: time waiting for copies in flight.

Truncated traces are refused outright (:class:`TraceTruncatedError`): a
ring buffer that dropped events has lost an unknown prefix of the
dependency structure, and attributing the surviving suffix would silently
produce partial numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import TraceTruncatedError
from repro.obs.query import Span, TraceQuery
from repro.obs.trace import TraceEvent

__all__ = [
    "StepAttribution",
    "Attribution",
    "DagNode",
    "StepDag",
    "attribute",
    "build_step_dags",
    "critical_path",
    "TraceTruncatedError",
]

#: Channel tracks whose queueing delays count as promote-side contention.
_PROMOTE_TRACKS = frozenset({"promote", "demand-promote"})

#: Channel-span tags that mark governor reclaim / compaction traffic.
_RECLAIM_TAGS = frozenset({"pressure-reclaim"})


# --------------------------------------------------------------- attribution


@dataclass(frozen=True)
class StepAttribution:
    """One step's duration decomposed into exclusive components.

    ``compute + migration_stall + channel_contention + fault +
    pressure_reclaim + ras_recovery + idle == duration`` up to float
    rounding — the differential suite asserts this on every zoo model.
    """

    step: int
    start: float
    end: float
    compute: float
    migration_stall: float
    channel_contention: float
    fault: float
    pressure_reclaim: float
    idle: float
    #: RAS recovery time — machine-check handling, clean-page refetch, and
    #: tensor rematerialization (:mod:`repro.mem.ras`).  Appended after the
    #: original six fields so positional construction predating RAS keeps
    #: its meaning; zero for every RAS-free trace.
    ras_recovery: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def stall(self) -> float:
        """Total exposed migration-side stall (all three stall buckets)."""
        return self.migration_stall + self.channel_contention + self.pressure_reclaim

    def components(self) -> Dict[str, float]:
        """The exclusive components, in canonical order."""
        return {
            "compute": self.compute,
            "migration_stall": self.migration_stall,
            "channel_contention": self.channel_contention,
            "fault": self.fault,
            "pressure_reclaim": self.pressure_reclaim,
            "ras_recovery": self.ras_recovery,
            "idle": self.idle,
        }

    # ------------------------------------------------------------- what-ifs

    @property
    def free_migration_time(self) -> float:
        """Step time if every migration were free (zero exposed stall).

        Lower bound on what any migration policy could achieve for this
        step's schedule: compute, fault handling, and idle are untouched.
        """
        return self.duration - self.stall

    def bandwidth_scaled_time(self, scale: float) -> float:
        """Step time if migration-side bandwidth were multiplied by ``scale``.

        First-order model: exposed stalls are transfer-bound, so they
        shrink (or grow) inversely with bandwidth; compute, fault handling,
        and idle are unchanged.  ``scale=2.0`` answers the paper's
        "what if the slow tier were twice as fast" question.
        """
        if scale <= 0.0:
            raise ValueError(f"bandwidth scale must be positive, got {scale!r}")
        return self.duration - self.stall * (1.0 - 1.0 / scale)


@dataclass(frozen=True)
class Attribution:
    """Per-step attributions for one traced run."""

    steps: Tuple[StepAttribution, ...]

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def totals(self) -> Dict[str, float]:
        """Component sums across all steps (same keys as ``components``)."""
        out = {
            "compute": 0.0,
            "migration_stall": 0.0,
            "channel_contention": 0.0,
            "fault": 0.0,
            "pressure_reclaim": 0.0,
            "ras_recovery": 0.0,
            "idle": 0.0,
        }
        for step in self.steps:
            for key, value in step.components().items():
                out[key] += value
        return out

    def median_step_time(self, last: Optional[int] = None) -> float:
        """Median step duration, optionally over only the last ``last`` steps
        (benchmarks use the steady tail, past warmup and profiling)."""
        steps = self.steps[-last:] if last else self.steps
        if not steps:
            raise ValueError("attribution holds no steps")
        return median(step.duration for step in steps)

    def what_if_free_migration(self, last: Optional[int] = None) -> float:
        """Median step time under the free-migration what-if."""
        steps = self.steps[-last:] if last else self.steps
        if not steps:
            raise ValueError("attribution holds no steps")
        return median(step.free_migration_time for step in steps)

    def what_if_bandwidth_scale(
        self, scale: float, last: Optional[int] = None
    ) -> float:
        """Median step time under the bandwidth-scaling what-if."""
        steps = self.steps[-last:] if last else self.steps
        if not steps:
            raise ValueError("attribution holds no steps")
        return median(step.bandwidth_scaled_time(scale) for step in steps)


def _refuse_truncated(dropped: int) -> None:
    if dropped:
        raise TraceTruncatedError(dropped)


def _layers_within(layer_spans: List[Span], step: Span) -> List[Span]:
    return [
        layer
        for layer in layer_spans
        if layer.start >= step.start and layer.end <= step.end
    ]


def attribute(events: Iterable[TraceEvent], dropped: int = 0) -> Attribution:
    """Decompose every step span in ``events`` into exclusive components.

    Args:
        events: the trace, e.g. ``tracer.events``.
        dropped: the tracer's ``dropped`` count; nonzero refuses with
            :class:`TraceTruncatedError` (the window is partial).
    """
    _refuse_truncated(dropped)
    query = TraceQuery(list(events))
    step_spans = query.spans(cat="step", name="step")
    layer_spans = query.spans(cat="step", name="layer")
    channel_spans = query.spans(cat="channel")

    steps: List[StepAttribution] = []
    for span in step_spans:
        layers = _layers_within(layer_spans, span)
        exec_time = sum(layer.args.get("exec", 0.0) for layer in layers)
        fault = sum(layer.args.get("fault", 0.0) for layer in layers)
        ras_recovery = sum(layer.args.get("ras", 0.0) for layer in layers)
        stall = (
            sum(layer.args.get("stall", 0.0) for layer in layers)
            + span.args.get("pre_stall", 0.0)
            + span.args.get("post_stall", 0.0)
        )

        window = [
            c
            for c in channel_spans
            if c.start < span.end and c.end > span.start and not c.args.get("aborted")
        ]
        contention_evidence = sum(
            c.args.get("queued", 0.0)
            for c in window
            if c.track in _PROMOTE_TRACKS
        )
        reclaim_evidence = sum(
            min(c.end, span.end) - max(c.start, span.start)
            for c in window
            if c.args.get("tag") in _RECLAIM_TAGS
        )

        # Deterministic subdivision of the stall total: contention first
        # (bounded by observed queueing delays), then reclaim (bounded by
        # in-window reclaim service time), remainder is plain in-flight
        # migration stall.  Caps keep each bucket honest: evidence can
        # exceed exposed stall when transfers overlap compute.
        contention = min(stall, contention_evidence)
        reclaim = min(stall - contention, reclaim_evidence)
        migration_stall = stall - contention - reclaim
        idle = max(
            0.0, span.duration - exec_time - stall - fault - ras_recovery
        )

        steps.append(
            StepAttribution(
                step=int(span.args.get("step", len(steps))),
                start=span.start,
                end=span.end,
                compute=exec_time,
                migration_stall=migration_stall,
                channel_contention=contention,
                fault=fault,
                pressure_reclaim=reclaim,
                idle=idle,
                ras_recovery=ras_recovery,
            )
        )
    return Attribution(steps=tuple(steps))


# ----------------------------------------------------------------------- DAG


@dataclass(frozen=True)
class DagNode:
    """One node of a step's dependency DAG: a time interval with a role.

    ``kind`` is one of ``"boundary"`` (step-begin/step-end bookkeeping),
    ``"layer"``, ``"migration"``, or ``"channel"``.  Intervals are clipped
    to the owning step's window, so no node outlives its step.
    """

    uid: int
    kind: str
    label: str
    start: float
    end: float
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class StepDag:
    """The dependency DAG reconstructed for one training step.

    Every edge ``u -> v`` satisfies ``u.end <= v.start`` — an edge is a
    happens-before constraint, so the longest (critical) path can never
    exceed the step's makespan; the contiguous boundary/layer chain
    guarantees one path achieves it exactly.
    """

    step: int
    start: float
    end: float
    nodes: List[DagNode]
    edges: Dict[int, List[int]]

    @property
    def makespan(self) -> float:
        return self.end - self.start

    def node(self, uid: int) -> DagNode:
        return self.nodes[uid]

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {node.uid: [] for node in self.nodes}
        for src, dsts in self.edges.items():
            for dst in dsts:
                preds[dst].append(src)
        return preds


def build_step_dags(
    events: Iterable[TraceEvent], dropped: int = 0
) -> List[StepDag]:
    """Reconstruct one dependency DAG per step span in ``events``.

    Edges encode three dependency families:

    * the execution chain — step-begin → layer₀ → … → layerₙ → step-end,
      contiguous by construction (the executor's clock never jumps between
      layer spans), so this path's length is exactly the makespan;
    * per-channel FIFO order — consecutive transfers on one channel track;
    * migration/channel completion → the first layer starting at or after
      it (the consumer whose accesses the copy unblocks), and the last
      layer ending at or before a transfer's start → that transfer (its
      submitter).

    Raises :class:`TraceTruncatedError` when ``dropped`` is nonzero.
    """
    _refuse_truncated(dropped)
    query = TraceQuery(list(events))
    step_spans = query.spans(cat="step", name="step")
    layer_spans = query.spans(cat="step", name="layer")
    migration_spans = query.spans(cat="migration")
    channel_spans = query.spans(cat="channel")

    dags: List[StepDag] = []
    for span in step_spans:
        nodes: List[DagNode] = []
        edges: Dict[int, List[int]] = {}

        def add_node(kind: str, label: str, start: float, end: float, **args):
            node = DagNode(
                uid=len(nodes),
                kind=kind,
                label=label,
                start=max(start, span.start),
                end=min(end, span.end),
                args=args,
            )
            nodes.append(node)
            edges[node.uid] = []
            return node

        def add_edge(src: DagNode, dst: DagNode) -> bool:
            # Happens-before only: refuse edges that would run backwards in
            # time (possible when clipping squeezes an interval).
            if src.end <= dst.start and src.uid != dst.uid:
                edges[src.uid].append(dst.uid)
                return True
            return False

        layers = _layers_within(layer_spans, span)
        first_layer_start = layers[0].start if layers else span.end
        last_layer_end = layers[-1].end if layers else first_layer_start

        begin = add_node("boundary", "step-begin", span.start, first_layer_start)
        layer_nodes = [
            add_node(
                "layer",
                str(layer.args.get("label", f"layer{index}")),
                layer.start,
                layer.end,
                layer=layer.args.get("layer", index),
            )
            for index, layer in enumerate(layers)
        ]
        end = add_node("boundary", "step-end", last_layer_end, span.end)

        chain = [begin, *layer_nodes, end]
        for src, dst in zip(chain, chain[1:]):
            add_edge(src, dst)

        def consumer_edges(node: DagNode) -> None:
            """Link a transfer to its submitter and its first consumer."""
            submitter = None
            for layer_node in layer_nodes:
                if layer_node.end <= node.start:
                    submitter = layer_node
                else:
                    break
            add_edge(submitter if submitter is not None else begin, node)
            for layer_node in layer_nodes:
                if layer_node.start >= node.end:
                    add_edge(node, layer_node)
                    return
            add_edge(node, end)

        for mig in migration_spans:
            if mig.start < span.end and mig.end > span.start:
                node = add_node(
                    "migration",
                    mig.name,
                    mig.start,
                    mig.end,
                    nbytes=mig.args.get("nbytes"),
                    tag=mig.args.get("tag"),
                )
                consumer_edges(node)

        by_track: Dict[str, List[DagNode]] = {}
        for xfer in channel_spans:
            if xfer.start < span.end and xfer.end > span.start:
                node = add_node(
                    "channel",
                    f"{xfer.track}:xfer",
                    xfer.start,
                    xfer.end,
                    nbytes=xfer.args.get("nbytes"),
                    tag=xfer.args.get("tag"),
                )
                by_track.setdefault(xfer.track, []).append(node)
                consumer_edges(node)
        for track_nodes in by_track.values():
            for src, dst in zip(track_nodes, track_nodes[1:]):
                add_edge(src, dst)  # FIFO service order within the channel

        dags.append(
            StepDag(
                step=int(span.args.get("step", len(dags))),
                start=span.start,
                end=span.end,
                nodes=nodes,
                edges=edges,
            )
        )
    return dags


def critical_path(dag: StepDag) -> List[DagNode]:
    """The longest path through ``dag`` by summed node duration.

    Processed in topological order (Kahn), so correctness does not depend
    on timestamp tie-breaking among zero-duration nodes.  The returned
    nodes are in execution order; their summed duration equals
    :attr:`StepDag.makespan` — the boundary/layer chain is contiguous and
    no happens-before path can be longer than the window it sits in.
    """
    preds = dag.predecessors()
    indegree = {node.uid: len(preds[node.uid]) for node in dag.nodes}
    ready = [node.uid for node in dag.nodes if indegree[node.uid] == 0]
    dist: Dict[int, float] = {}
    best_pred: Dict[int, Optional[int]] = {}
    processed = 0
    while ready:
        uid = ready.pop()
        processed += 1
        best = 0.0
        choice: Optional[int] = None
        for pred in preds[uid]:
            if dist[pred] > best:
                best = dist[pred]
                choice = pred
        dist[uid] = best + dag.node(uid).duration
        best_pred[uid] = choice
        for succ in dag.edges[uid]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if processed != len(dag.nodes):
        raise ValueError(
            f"dependency graph for step {dag.step} has a cycle "
            f"({processed}/{len(dag.nodes)} nodes ordered)"
        )
    if not dist:
        return []
    tail = max(dist, key=lambda uid: (dist[uid], -uid))
    path: List[DagNode] = []
    cursor: Optional[int] = tail
    while cursor is not None:
        path.append(dag.node(cursor))
        cursor = best_pred[cursor]
    path.reverse()
    return path
