"""Trace exporters: Chrome ``trace_event`` JSON, compact JSONL, digests.

The Chrome format is the interchange target — the emitted JSON loads
unmodified in Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.
Simulated seconds become microseconds (the format's unit); each
:attr:`TraceEvent.track` becomes a named thread so channels, the step
timeline, and the chaos lane render as separate rows.

JSONL is the canonical machine form: one sorted-key JSON object per event,
floats via ``repr`` (shortest round-trip — stable across CPython versions),
no whitespace variance.  :func:`canonical_digest` hashes it; the golden-trace
regression suite stores those digests and a byte change anywhere in the
timeline fails the comparison.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import CATEGORIES, PHASES, TraceEvent

#: Microseconds per simulated second (Chrome trace timestamps are in us).
_US = 1e6


def _tracks_of(events: Sequence[TraceEvent]) -> List[str]:
    """Track names in first-appearance order (stable tid assignment)."""
    tracks: List[str] = []
    for event in events:
        if event.track not in tracks:
            tracks.append(event.track)
    return tracks


def to_chrome(
    events: Sequence[TraceEvent],
    pid: int = 0,
    process_name: str = "repro",
    tids: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """Events as a Chrome ``trace_event`` JSON object (dict form).

    Returns the ``{"traceEvents": [...], ...}`` object format so metadata
    (process/thread names, time unit) travels with the events.

    ``tids`` optionally pins specific tracks to specific thread ids (the
    serving layer passes its stable per-job assignment); the remaining
    tracks receive the smallest unused ids in first-appearance order, so
    no two tracks can ever share a tid.  A ``tids`` map that itself
    assigns one id twice raises :class:`ValueError`.  ``None`` — the
    default — reproduces the historical pure first-appearance numbering
    byte-for-byte.
    """
    trace: List[Dict[str, Any]] = []
    tracks = _tracks_of(events)
    pinned = dict(tids) if tids else {}
    if len(set(pinned.values())) != len(pinned):
        raise ValueError(f"tid map assigns one tid to multiple tracks: {pinned!r}")
    used = set(pinned.values())
    tids = {}
    next_tid = 0
    for track in tracks:
        if track in pinned:
            tids[track] = pinned[track]
        else:
            while next_tid in used:
                next_tid += 1
            tids[track] = next_tid
            used.add(next_tid)
            next_tid += 1
    trace.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    )
    for track, tid in tids.items():
        trace.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for event in events:
        row: Dict[str, Any] = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.ph,
            "ts": event.ts * _US,
            "pid": pid,
            "tid": tids[event.track],
            "args": dict(event.args),
        }
        if event.ph == "X":
            row["dur"] = event.dur * _US
        if event.ph == "i":
            row["s"] = "t"  # instant scope: thread
        trace.append(row)
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def combine_chrome(
    labeled: Sequence[Tuple[str, Sequence[TraceEvent]]]
) -> Dict[str, Any]:
    """Merge several traces into one Chrome JSON, one process per trace.

    Used by ``repro grid --trace``: every grid point ran on its own clock
    (each starts at t=0), so points must not share a timeline row —
    separate pids keep them side by side in Perfetto instead of
    interleaved.
    """
    merged: List[Dict[str, Any]] = []
    for pid, (label, events) in enumerate(labeled):
        merged.extend(to_chrome(events, pid=pid, process_name=label)["traceEvents"])
    return {"traceEvents": merged, "displayTimeUnit": "ms"}


def chrome_json(events: Sequence[TraceEvent], **kwargs: Any) -> str:
    """Chrome trace as a JSON string."""
    return json.dumps(to_chrome(events, **kwargs), sort_keys=True)


def write_chrome(events: Sequence[TraceEvent], path: str, **kwargs: Any) -> None:
    """Write the Chrome trace JSON to ``path``."""
    with open(path, "w") as handle:
        handle.write(chrome_json(events, **kwargs))


# ----------------------------------------------------------------- JSONL


def _canonical_value(value: Any) -> Any:
    """Reduce an args value to a JSON-stable primitive."""
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value  # json emits repr(), shortest round-trip
    return str(value)


def to_jsonl(events: Sequence[TraceEvent]) -> str:
    """One compact, sorted-key JSON object per line — the canonical form."""
    lines = []
    for event in events:
        lines.append(
            json.dumps(
                {
                    "name": event.name,
                    "cat": event.cat,
                    "ph": event.ph,
                    "ts": event.ts,
                    "dur": event.dur,
                    "track": event.track,
                    "args": {
                        key: _canonical_value(val)
                        for key, val in sorted(event.args.items())
                    },
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def canonical_digest(events: Sequence[TraceEvent]) -> str:
    """SHA-256 of the canonical JSONL — the golden-trace fingerprint."""
    return hashlib.sha256(to_jsonl(events).encode("utf-8")).hexdigest()


def from_jsonl(text: str) -> List[TraceEvent]:
    """Parse canonical JSONL back into events (the :func:`to_jsonl` inverse).

    Round-trip stable: ``canonical_digest(from_jsonl(to_jsonl(events))) ==
    canonical_digest(events)`` for any event list — :func:`to_jsonl`
    already reduces args values to JSON-stable primitives, so re-export is
    a fixed point.  Blank lines are skipped; a malformed line raises
    :class:`ValueError` naming its line number.  Note the ring buffer's
    ``dropped`` count does not travel through JSONL: an import only sees
    the surviving window.
    """
    events: List[TraceEvent] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON ({exc})") from exc
        if not isinstance(obj, dict):
            raise ValueError(f"line {lineno}: event must be a JSON object")
        missing = {"name", "cat", "ph", "ts", "dur", "track", "args"} - set(obj)
        if missing:
            raise ValueError(f"line {lineno}: missing keys {sorted(missing)}")
        if obj["cat"] not in CATEGORIES:
            raise ValueError(f"line {lineno}: unknown category {obj['cat']!r}")
        if obj["ph"] not in PHASES:
            raise ValueError(f"line {lineno}: unknown phase {obj['ph']!r}")
        if not isinstance(obj["args"], dict):
            raise ValueError(f"line {lineno}: args must be an object")
        events.append(
            TraceEvent(
                name=obj["name"],
                cat=obj["cat"],
                ph=obj["ph"],
                ts=obj["ts"],
                dur=obj["dur"],
                track=obj["track"],
                args=dict(obj["args"]),
            )
        )
    return events


# ------------------------------------------------------------- validation


def validate_chrome(obj: Any) -> int:
    """Validate a loaded Chrome trace against the schema this repo emits.

    Raises :class:`ValueError` naming the first violation; returns the
    number of non-metadata events on success.  CI runs this against the
    smoke-run artifact so a malformed export cannot merge.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"trace must be a JSON object, got {type(obj).__name__}")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace is missing the 'traceEvents' list")
    count = 0
    for index, row in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(row, dict):
            raise ValueError(f"{where}: event must be an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in row:
                raise ValueError(f"{where}: missing required key {key!r}")
        ph = row["ph"]
        if ph == "M":
            continue  # metadata rows carry no timestamp
        count += 1
        if ph not in PHASES:
            raise ValueError(f"{where}: unknown phase {ph!r}")
        if "cat" not in row or row["cat"] not in CATEGORIES:
            raise ValueError(
                f"{where}: category {row.get('cat')!r} not in {sorted(CATEGORIES)}"
            )
        ts = row.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: ts must be a non-negative number, got {ts!r}")
        if ph == "X":
            dur = row.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"{where}: complete event needs non-negative dur, got {dur!r}"
                )
        if not isinstance(row.get("args", {}), dict):
            raise ValueError(f"{where}: args must be an object")
    return count
