"""Self-contained single-file HTML rendering of an insight artifact.

:func:`render_insight_html` turns the canonical dict from
:meth:`repro.obs.insight.InsightCollector.report` into one HTML file with
every byte inline — CSS, a small table-sorting script, and server-side
generated SVG charts — so the report opens from disk with no network access
and survives artifact stores that strip sidecar files:

* an **occupancy stacked timeline** (hot/warm/cold/other fast-tier bytes
  over simulated time),
* a **top-N tensor table** (click a header to re-sort client-side),
* a **churn heatmap** (per-tensor migrated bytes per time bin).

Rendering is deterministic: same artifact dict, same bytes out.
"""

from __future__ import annotations

import html as _html
import json
from typing import Any, Dict, List, Sequence, Tuple

#: Stacked-area palette: hot, warm, cold, other (unattributed occupancy).
_COLORS = ("#d7263d", "#f4a259", "#4f9dde", "#c9c9c9")

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 68rem;
       color: #1d2330; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { border: 1px solid #d5d9e0; padding: 0.3rem 0.5rem; text-align: right; }
th { background: #eef1f5; cursor: pointer; user-select: none; }
td:first-child, th:first-child { text-align: left; }
.legend span { display: inline-block; margin-right: 1rem; font-size: 0.85rem; }
.legend i { display: inline-block; width: 0.8rem; height: 0.8rem;
            margin-right: 0.3rem; vertical-align: middle; }
.meta { color: #5b6372; font-size: 0.85rem; }
svg { background: #fafbfc; border: 1px solid #d5d9e0; }
"""

_SORT_JS = """
document.querySelectorAll("table.sortable th").forEach(function (th, col) {
  th.addEventListener("click", function () {
    var table = th.closest("table");
    var rows = Array.from(table.querySelectorAll("tbody tr"));
    var dir = th.dataset.dir === "asc" ? -1 : 1;
    th.dataset.dir = dir === 1 ? "asc" : "desc";
    rows.sort(function (a, b) {
      var x = a.children[col].dataset.v, y = b.children[col].dataset.v;
      var nx = parseFloat(x), ny = parseFloat(y);
      if (!isNaN(nx) && !isNaN(ny)) return dir * (nx - ny);
      return dir * x.localeCompare(y);
    });
    rows.forEach(function (row) { table.querySelector("tbody").appendChild(row); });
  });
});
"""


def _fmt_bytes(value: float) -> str:
    value = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{value:.0f} B"
        value /= 1024.0
    return f"{value:.1f} GiB"  # pragma: no cover - loop always returns


def _svg_occupancy(samples: Sequence[Sequence[float]], width: int = 960,
                   height: int = 240) -> str:
    """Stacked-area SVG of the hot/warm/cold/other occupancy samples."""
    if len(samples) < 2:
        return "<p class=\"meta\">Not enough occupancy samples to chart.</p>"
    t0 = samples[0][0]
    t1 = samples[-1][0]
    span = (t1 - t0) or 1.0
    top = max(sample[5] for sample in samples) or 1.0
    pad = 4

    def x_of(t: float) -> float:
        return pad + (t - t0) / span * (width - 2 * pad)

    def y_of(v: float) -> float:
        return height - pad - v / top * (height - 2 * pad)

    # Cumulative stacks per sample: hot, hot+warm, hot+warm+cold, +other.
    stacks: List[List[float]] = []
    for _, hot, warm, cold, other, _occ in samples:
        stacks.append([hot, hot + warm, hot + warm + cold,
                       hot + warm + cold + other])
    parts: List[str] = []
    lower = [0.0] * len(samples)
    for layer in range(4):
        upper = [stack[layer] for stack in stacks]
        points = [
            f"{x_of(samples[i][0]):.2f},{y_of(upper[i]):.2f}"
            for i in range(len(samples))
        ] + [
            f"{x_of(samples[i][0]):.2f},{y_of(lower[i]):.2f}"
            for i in range(len(samples) - 1, -1, -1)
        ]
        parts.append(
            f'<polygon fill="{_COLORS[layer]}" fill-opacity="0.85" '
            f'points="{" ".join(points)}"/>'
        )
        lower = upper
    axis = (
        f'<text x="{pad}" y="12" font-size="10">{_fmt_bytes(top)}</text>'
        f'<text x="{pad}" y="{height - pad - 2}" font-size="10">'
        f"t={t0:.4g}s → t={t1:.4g}s</text>"
    )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="100%" height="{height}">'
        + "".join(parts)
        + axis
        + "</svg>"
    )


def _svg_heatmap(rows: Sequence[Tuple[str, Sequence[float]]], t0: float,
                 t1: float, bins: int, width: int = 960) -> str:
    """Per-tensor migrated-bytes heatmap; one row per tensor, one cell per bin."""
    if not rows:
        return "<p class=\"meta\">No migrations to map.</p>"
    cell_h = 16
    label_w = 220
    height = cell_h * len(rows) + 20
    cell_w = (width - label_w) / bins
    peak = max((max(cells) for _, cells in rows), default=0.0) or 1.0
    parts: List[str] = []
    for r, (label, cells) in enumerate(rows):
        y = r * cell_h
        parts.append(
            f'<text x="4" y="{y + cell_h - 4}" font-size="10">'
            f"{_html.escape(label[:34])}</text>"
        )
        for c, value in enumerate(cells):
            if value <= 0.0:
                continue
            alpha = 0.15 + 0.85 * (value / peak)
            parts.append(
                f'<rect x="{label_w + c * cell_w:.2f}" y="{y}" '
                f'width="{cell_w:.2f}" height="{cell_h - 1}" '
                f'fill="#7a1fa2" fill-opacity="{alpha:.3f}">'
                f"<title>{_html.escape(label)}: {_fmt_bytes(value)}</title></rect>"
            )
    parts.append(
        f'<text x="{label_w}" y="{height - 6}" font-size="10">'
        f"t={t0:.4g}s → t={t1:.4g}s ({bins} bins)</text>"
    )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="100%" height="{height}">'
        + "".join(parts)
        + "</svg>"
    )


def _tensor_label(row: Dict[str, Any]) -> str:
    label = f"{row['name']}#{row['tid']}"
    if row["episode"]:
        label += f".{row['episode']}"
    if row["scope"] != "main":
        label = f"{row['scope']}/{label}"
    return label


def render_insight_html(report: Dict[str, Any], top: int = 20,
                        heat_bins: int = 48) -> str:
    """Render the artifact as one self-contained HTML page."""
    meta = report.get("meta", {})
    title_bits = [str(meta[key]) for key in ("model", "policy") if key in meta]
    title = "Insight report" + (f" — {' / '.join(title_bits)}" if title_bits else "")

    tensors = sorted(
        report["tensors"], key=lambda r: (-r["migrated_bytes"], -r["bytes_touched"],
                                          r["scope"], r["tid"], r["episode"])
    )
    shown = tensors[:top]

    # Churn heatmap over the sampled time span.
    samples = report["occupancy"]
    if samples:
        t0, t1 = samples[0][0], samples[-1][0]
    else:
        t0, t1 = 0.0, max(
            (e["finish"] for e in report["migrations"]), default=1.0
        )
    span = (t1 - t0) or 1.0
    heat_rows: List[Tuple[str, List[float]]] = []
    for row in shown:
        if row["migrated_bytes"] <= 0:
            continue
        cells = [0.0] * heat_bins
        for entry in row["lineage"]:
            index = int((entry["t"] - t0) / span * heat_bins)
            cells[min(max(index, 0), heat_bins - 1)] += entry["bytes"]
        heat_rows.append((_tensor_label(row), cells))

    table_rows: List[str] = []
    for row in shown:
        cells = [
            (_tensor_label(row), _tensor_label(row)),
            (row["kind"], row["kind"]),
            (row["nbytes"], _fmt_bytes(row["nbytes"])),
            (row["accesses"], str(row["accesses"])),
            (row["bytes_touched"], _fmt_bytes(row["bytes_touched"])),
            (row["migrated_bytes"], _fmt_bytes(row["migrated_bytes"])),
            (row["thrash"], f"{row['thrash']:.3f}"),
            (row["pingpong"], str(row["pingpong"])),
            (row["wasted_prefetch_bytes"], _fmt_bytes(row["wasted_prefetch_bytes"])),
            (row["stall"], f"{row['stall']:.6f}"),
        ]
        tds = "".join(
            f'<td data-v="{_html.escape(str(sort_key))}">{_html.escape(text)}</td>'
            for sort_key, text in cells
        )
        table_rows.append(f"<tr>{tds}</tr>")
    headers = ("tensor", "kind", "size", "accesses", "touched", "migrated",
               "thrash", "ping-pong", "wasted prefetch", "stall (s)")
    table = (
        '<table class="sortable"><thead><tr>'
        + "".join(f"<th>{h}</th>" for h in headers)
        + "</tr></thead><tbody>"
        + "".join(table_rows)
        + "</tbody></table>"
    )

    legend = "".join(
        f'<span><i style="background:{color}"></i>{name}</span>'
        for color, name in zip(_COLORS, ("hot", "warm", "cold", "other"))
    )

    totals = report["totals"]
    totals_bits = "; ".join(
        f"{key} = {_fmt_bytes(totals[key]) if key.endswith(('bytes', 'attributed')) else totals[key]}"
        for key in sorted(totals)
    )

    serve_html = ""
    serve = report.get("serve")
    if serve:
        alert_count = sum(1 for window in serve["windows"] if window["alert"])
        rows = "".join(
            f"<tr><td data-v=\"{w['t0']}\">{w['t0']:.4g}</td>"
            f"<td data-v=\"{w['jobs']}\">{w['jobs']}</td>"
            f"<td data-v=\"{w['attainment'] if w['attainment'] is not None else -1}\">"
            f"{'' if w['attainment'] is None else format(w['attainment'], '.0%')}</td>"
            f"<td data-v=\"{w['burn'] if w['burn'] is not None else -1}\">"
            f"{'' if w['burn'] is None else format(w['burn'], '.2f')}</td>"
            f"<td data-v=\"{int(w['alert'])}\">{'ALERT' if w['alert'] else ''}</td></tr>"
            for w in serve["windows"]
        )
        serve_html = (
            f"<h2>SLO burn-rate ({serve['jobs']} jobs, objective "
            f"{serve['objective']:.0%}, {alert_count} alert windows)</h2>"
            '<table class="sortable"><thead><tr><th>window start</th>'
            "<th>jobs</th><th>attainment</th><th>burn</th><th></th>"
            f"</tr></thead><tbody>{rows}</tbody></table>"
            f'<p class="meta">Retained job traces (reservoir): '
            f"{_html.escape(', '.join(serve['sampled_jobs']) or '(none)')}</p>"
        )

    embedded = json.dumps(report, sort_keys=True, separators=(",", ":"))
    return (
        "<!doctype html><html><head><meta charset=\"utf-8\">"
        f"<title>{_html.escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{_html.escape(title)}</h1>"
        f'<p class="meta">schema {_html.escape(report["schema"])}; '
        f"{len(report['tensors'])} tensor episodes; "
        f"{len(report['migrations'])} migration events; {totals_bits}</p>"
        "<h2>Fast-tier occupancy (stacked)</h2>"
        f'<p class="legend">{legend}</p>'
        + _svg_occupancy(samples)
        + f"<h2>Top tensors (by migrated bytes, showing {len(shown)} of "
        f"{len(tensors)})</h2>"
        + table
        + "<h2>Churn heatmap</h2>"
        + _svg_heatmap(heat_rows, t0, t1, heat_bins)
        + serve_html
        + f'<script type="application/json" id="insight-data">{embedded}</script>'
        + f"<script>{_SORT_JS}</script>"
        "</body></html>"
    )


def write_insight_html(report: Dict[str, Any], path: str, **kwargs: Any) -> None:
    """Render and write the HTML report to ``path``."""
    with open(path, "w") as handle:
        handle.write(render_insight_html(report, **kwargs))
