"""Typed sim-time metrics registry (counters, gauges, histograms, series).

``repro.obs.metrics`` is the quantitative half of the observability layer:
where :mod:`repro.obs.trace` records *when* things happened, this module
records *how much* and *how they distribute*.  A single
:class:`MetricsRegistry` is the namespace every substrate component records
into, holding four metric kinds:

* :class:`Counter` — a named monotonic accumulator (bytes migrated, faults
  taken).  ``add`` rejects negative amounts: every counted quantity only
  ever grows, and a negative delta slipping in would silently corrupt the
  differential checks that re-derive counter values from event traces.
* :class:`Gauge` — a point-in-time level that may move both ways (queue
  backlog, used fraction).
* :class:`Histogram` — a fixed log-spaced binning of observations
  (transfer sizes, queueing delays, prefetch lags).  The bin edges are
  fixed at construction so merged or diffed snapshots always line up.
* :class:`Timeline` — fixed-width time-binned accumulation (the Figure 9
  bandwidth-over-time plot).
* :class:`TimeSeries` — a bounded ``(t, value)`` sampler driven by the
  simulation clock (:meth:`MetricsRegistry.bind_clock`), for level curves
  like fast-tier occupancy.

Exposition is deterministic both ways: :meth:`MetricsRegistry.to_json`
emits canonical JSON (sorted keys, compact separators — byte-stable across
runs and insertion orders) and :meth:`MetricsRegistry.to_prometheus` emits
the Prometheus text format with cumulative histogram buckets.

Like the tracer, the registry is zero-overhead when not asked for: the
machine always owns one registry for its counters (they predate this
module), but the *detailed* sampling sites (histograms, series) only run
when a caller explicitly attached a registry via ``metrics=`` — every such
site is a single ``is not None`` check, keeping un-metered runs
byte-identical to builds predating this module.

:mod:`repro.sim.stats` remains as a deprecated compatibility shim
re-exporting :class:`Counter`, :class:`Timeline`, and a
:class:`StatsRegistry` alias of :class:`MetricsRegistry`.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.sim.clock import Clock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timeline",
    "TimeSeries",
    "MetricsRegistry",
]


class Counter:
    """A named monotonic accumulator.

    ``add`` rejects negative amounts: every quantity counted (bytes moved,
    faults taken, retries) only ever grows, and a negative delta slipping in
    would silently corrupt differential checks that re-derive counter values
    from event traces.  Use :meth:`reset` to start over.
    """

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} is monotonic; cannot add {amount!r}"
            )
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value!r})"


class Gauge:
    """A named level that may move in both directions (backlog, occupancy)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value!r})"


class Histogram:
    """Distribution of non-negative observations over fixed log-spaced bins.

    The bucket upper bounds are ``bins`` points spaced evenly in log space
    between ``lo`` and ``hi``, plus a final ``+inf`` overflow bucket.  The
    edges are fixed at construction — histograms with the same parameters
    always bin identically, so snapshots from different runs can be diffed
    or merged bucket-by-bucket.

    The defaults span nanoseconds-to-kiloseconds *and* bytes-to-terabytes
    (1e-9 .. 1e12, two buckets per decade), wide enough for every quantity
    the substrate observes without per-site tuning.
    """

    kind = "histogram"
    __slots__ = ("name", "lo", "hi", "edges", "counts", "count", "sum", "min", "max")

    def __init__(
        self, name: str, lo: float = 1e-9, hi: float = 1e12, bins: int = 42
    ) -> None:
        if not 0.0 < lo < hi:
            raise ValueError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
        if bins < 1:
            raise ValueError(f"need at least one bin, got {bins!r}")
        self.name = name
        self.lo = float(lo)
        self.hi = float(hi)
        ratio = math.log(hi / lo)
        #: bucket upper bounds; observations <= edges[i] land in bucket i,
        #: anything above ``hi`` lands in the implicit +inf overflow bucket
        self.edges: List[float] = [
            lo * math.exp(ratio * (i + 1) / bins) for i in range(bins)
        ]
        self.edges[-1] = float(hi)  # kill float drift on the top edge
        self.counts: List[int] = [0] * (bins + 1)  # + overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(
                f"histogram {self.name!r} takes non-negative values, got {value!r}"
            )
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile: the upper bound of the bucket where
        the cumulative count crosses ``q * count`` (the exact maximum for
        the overflow bucket).  0.0 on an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket in enumerate(self.counts):
            cumulative += bucket
            if cumulative >= target and bucket:
                if index == len(self.edges):
                    return self.max
                return self.edges[index]
        return self.max

    def nonzero_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` for occupied buckets (inf for overflow)."""
        out: List[Tuple[float, int]] = []
        for index, bucket in enumerate(self.counts):
            if bucket:
                bound = self.edges[index] if index < len(self.edges) else math.inf
                out.append((bound, bucket))
        return out

    def reset(self) -> None:
        self.counts = [0] * len(self.counts)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count}, sum={self.sum!r})"


class Timeline:
    """Accumulates quantities into fixed-width time bins.

    Used for bandwidth traces: ``record(t, nbytes)`` adds ``nbytes`` to the
    bin containing ``t``; :meth:`series` then yields ``(bin_start, rate)``
    pairs where ``rate`` is bytes per second within the bin.
    """

    kind = "timeline"

    def __init__(self, bin_width: float) -> None:
        if bin_width <= 0.0:
            raise ValueError(f"bin width must be positive, got {bin_width!r}")
        self.bin_width = float(bin_width)
        self._bins: Dict[int, float] = {}

    def record(self, when: float, amount: float) -> None:
        if when < 0.0:
            raise ValueError(f"cannot record at negative time {when!r}")
        index = int(when / self.bin_width)
        self._bins[index] = self._bins.get(index, 0.0) + amount

    def record_span(self, start: float, end: float, amount: float) -> None:
        """Spread ``amount`` uniformly over the interval [start, end)."""
        if end < start:
            raise ValueError(f"span end {end!r} precedes start {start!r}")
        if end == start:
            self.record(start, amount)
            return
        rate = amount / (end - start)
        if not math.isfinite(rate):
            # Span too short for finite rate arithmetic (denormal widths):
            # treat it as an instantaneous event.
            self.record(start, amount)
            return
        first = int(start / self.bin_width)
        last = int(end / self.bin_width)
        for index in range(first, last + 1):
            bin_start = index * self.bin_width
            bin_end = bin_start + self.bin_width
            overlap = min(end, bin_end) - max(start, bin_start)
            if overlap > 0.0:
                self._bins[index] = self._bins.get(index, 0.0) + rate * overlap

    def series(self) -> List[Tuple[float, float]]:
        """Return ``(bin_start_time, amount_per_second)`` sorted by time."""
        return [
            (index * self.bin_width, total / self.bin_width)
            for index, total in sorted(self._bins.items())
        ]

    def total(self) -> float:
        return sum(self._bins.values())

    def reset(self) -> None:
        self._bins.clear()


class TimeSeries:
    """Bounded ``(t, value)`` sampler driven by the simulation clock.

    ``sample(value)`` stamps the owning registry's bound clock (or takes an
    explicit ``ts``); the newest ``max_samples`` points are kept, oldest
    evicted first — the series is a sliding window, not an unbounded log.
    """

    kind = "series"
    __slots__ = ("name", "max_samples", "_samples", "_registry", "dropped")

    def __init__(
        self,
        name: str,
        max_samples: int = 4096,
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples!r}")
        self.name = name
        self.max_samples = max_samples
        self._samples: List[Tuple[float, float]] = []
        self._registry = registry
        self.dropped = 0

    def sample(self, value: float, ts: Optional[float] = None) -> None:
        if ts is None:
            ts = self._registry.now() if self._registry is not None else 0.0
        if len(self._samples) >= self.max_samples:
            del self._samples[0]
            self.dropped += 1
        self._samples.append((float(ts), float(value)))

    @property
    def samples(self) -> List[Tuple[float, float]]:
        """Retained ``(t, value)`` points in sample order."""
        return list(self._samples)

    def last(self) -> Optional[Tuple[float, float]]:
        return self._samples[-1] if self._samples else None

    def reset(self) -> None:
        self._samples.clear()
        self.dropped = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeSeries({self.name!r}, n={len(self._samples)})"


class MetricsRegistry:
    """Namespace of typed metrics with canonical exposition.

    One flat name space covers all kinds; asking for an existing name with
    a different kind (or a histogram/timeline with different parameters)
    raises instead of silently mixing shapes.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._clock: Optional["Clock"] = None
        self._help: Dict[str, str] = {}

    # ---------------------------------------------------------------- help

    def describe(self, name: str, text: str) -> None:
        """Attach Prometheus ``# HELP`` text to the metric called ``name``.

        Idempotent per name (last call wins); metrics without a description
        expose their dotted name as the help string.
        """
        self._help[name] = text

    # -------------------------------------------------------------- clock

    def bind_clock(self, clock: "Clock") -> None:
        """Adopt ``clock`` as the timestamp source for clockless samplers."""
        self._clock = clock

    def now(self) -> float:
        """Current simulated time (0.0 before a clock is bound)."""
        return self._clock.now if self._clock is not None else 0.0

    # ----------------------------------------------------------- accessors

    def _get(self, name: str, kind: str):
        metric = self._metrics.get(name)
        if metric is not None and metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        metric = self._get(name, "counter")
        if metric is None:
            metric = Counter(name)
            self._metrics[name] = metric
        return metric

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        metric = self._get(name, "gauge")
        if metric is None:
            metric = Gauge(name)
            self._metrics[name] = metric
        return metric

    def histogram(
        self, name: str, lo: float = 1e-9, hi: float = 1e12, bins: int = 42
    ) -> Histogram:
        """Get or create the histogram called ``name``.

        Bin geometry is fixed by the first call; later calls with different
        parameters raise to avoid silently mixing bucket layouts.
        """
        metric = self._get(name, "histogram")
        if metric is None:
            metric = Histogram(name, lo=lo, hi=hi, bins=bins)
            self._metrics[name] = metric
            return metric
        if (metric.lo, metric.hi, len(metric.edges)) != (float(lo), float(hi), bins):
            raise ValueError(
                f"histogram {name!r} already exists with lo={metric.lo!r} "
                f"hi={metric.hi!r} bins={len(metric.edges)}, requested "
                f"lo={lo!r} hi={hi!r} bins={bins!r}"
            )
        return metric

    def timeline(self, name: str, bin_width: float = 0.01) -> Timeline:
        """Get or create the timeline called ``name``.

        The bin width is fixed by the first call; later calls with a different
        width raise to avoid silently mixing resolutions.
        """
        metric = self._get(name, "timeline")
        if metric is None:
            metric = Timeline(bin_width)
            self._metrics[name] = metric
            return metric
        if metric.bin_width != bin_width:
            raise ValueError(
                f"timeline {name!r} already exists with bin width "
                f"{metric.bin_width!r}, requested {bin_width!r}"
            )
        return metric

    def series(self, name: str, max_samples: int = 4096) -> TimeSeries:
        """Get or create the time series called ``name``."""
        metric = self._get(name, "series")
        if metric is None:
            metric = TimeSeries(name, max_samples=max_samples, registry=self)
            self._metrics[name] = metric
        return metric

    # ------------------------------------------------------------ snapshots

    def counters(self, prefix: str = "") -> Dict[str, float]:
        """Snapshot of all counter values, optionally filtered by prefix."""
        return {
            name: metric.value
            for name, metric in self._metrics.items()
            if metric.kind == "counter" and name.startswith(prefix)
        }

    def metrics(self, kind: Optional[str] = None) -> Dict[str, object]:
        """All registered metrics (optionally of one kind), sorted by name."""
        return {
            name: metric
            for name, metric in sorted(self._metrics.items())
            if kind is None or metric.kind == kind
        }

    def reset(self) -> None:
        for metric in self._metrics.values():
            metric.reset()

    # ----------------------------------------------------------- exposition

    def snapshot(self) -> Dict[str, dict]:
        """Canonical nested-dict snapshot, keyed by kind then name."""
        out: Dict[str, dict] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timelines": {},
            "series": {},
        }
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.kind == "counter":
                out["counters"][name] = metric.value
            elif metric.kind == "gauge":
                out["gauges"][name] = metric.value
            elif metric.kind == "histogram":
                out["histograms"][name] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "min": metric.min if metric.count else None,
                    "max": metric.max if metric.count else None,
                    "buckets": [
                        [None if math.isinf(bound) else bound, count]
                        for bound, count in metric.nonzero_buckets()
                    ],
                }
            elif metric.kind == "timeline":
                out["timelines"][name] = {
                    "bin_width": metric.bin_width,
                    "total": metric.total(),
                    "series": [[t, rate] for t, rate in metric.series()],
                }
            else:  # series
                out["series"][name] = {
                    "dropped": metric.dropped,
                    "samples": [[t, v] for t, v in metric.samples],
                }
        return out

    def to_json(self) -> str:
        """Canonical JSON exposition: sorted keys, compact separators.

        Byte-stable for a given set of recorded values regardless of the
        order metrics were registered or updated in — diffable across runs
        the same way :func:`repro.obs.export.canonical_digest` is for
        traces.
        """
        return json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":"))

    def to_prometheus(self, namespace: str = "repro") -> str:
        """Prometheus text-format exposition (version 0.0.4).

        Counters, gauges, and histograms (with cumulative ``_bucket``
        samples, ``_sum`` and ``_count``) are exposed; timelines surface as
        a ``_total`` counter and time series as their latest value — the
        full temporal shapes belong in the JSON exposition, not in a
        point-in-time scrape.

        Every exposed family carries a ``# HELP`` line (the text set via
        :meth:`describe`, defaulting to the dotted metric name) ahead of
        its ``# TYPE`` line, and label values go through
        :func:`escape_label_value`, both per the exposition-format spec.
        """
        lines: List[str] = []

        def _head(flat: str, name: str, kind: str) -> None:
            text = self._help.get(name, name)
            lines.append(f"# HELP {flat} {_escape_help(text)}")
            lines.append(f"# TYPE {flat} {kind}")

        for name in sorted(self._metrics):
            metric = self._metrics[name]
            flat = _prom_name(namespace, name)
            if metric.kind == "counter":
                _head(flat, name, "counter")
                lines.append(f"{flat} {_prom_value(metric.value)}")
            elif metric.kind == "gauge":
                _head(flat, name, "gauge")
                lines.append(f"{flat} {_prom_value(metric.value)}")
            elif metric.kind == "histogram":
                _head(flat, name, "histogram")
                cumulative = 0
                for index, bound in enumerate(metric.edges):
                    cumulative += metric.counts[index]
                    le = escape_label_value(_prom_value(bound))
                    lines.append(f'{flat}_bucket{{le="{le}"}} {cumulative}')
                lines.append(f'{flat}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{flat}_sum {_prom_value(metric.sum)}")
                lines.append(f"{flat}_count {metric.count}")
            elif metric.kind == "timeline":
                _head(f"{flat}_total", name, "counter")
                lines.append(f"{flat}_total {_prom_value(metric.total())}")
            else:  # series
                last = metric.last()
                if last is not None:
                    _head(flat, name, "gauge")
                    lines.append(f"{flat} {_prom_value(last[1])}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(namespace: str, name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    flat = f"{namespace}_{name}" if namespace else name
    out = []
    for index, char in enumerate(flat):
        if char.isalnum() and (index > 0 or not char.isdigit()) or char in "_:":
            out.append(char)
        else:
            out.append("_")
    return "".join(out)


def _prom_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format (0.0.4).

    Backslash, double-quote, and line-feed are the three characters the
    spec requires escaping inside ``label="..."``; everything else passes
    through verbatim.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text: the spec escapes backslash and line-feed only."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")
