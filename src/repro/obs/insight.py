"""Tensor-level insight: residency timelines, heat, churn, SLO burn-rate.

The trace/metrics layers answer *when* and *how often*; this layer answers
the tensor-granularity questions Sentinel's whole design turns on — which
tensor thrashed, what fraction of fast-tier bytes were cold, which prefetch
was wasted — by deriving per-tensor analytics from a few low-cost hooks:

* **Residency timelines** — per tensor, a gap-free piecewise-constant
  timeline of how many of its bytes sat on the fast tier, flipping at each
  migration's landing instant (``transfer.finish``, matching
  ``PageTableEntry.effective_device``).  Segments tile the tensor's
  lifetime exactly: the first opens at allocation, each flip closes one and
  opens the next, the last closes at free (or finalize).
* **Heat accounting** — accesses and bytes-touched per tensor per step, and
  fast-tier occupancy split into hot/warm/cold bytes at every layer-end
  sample by last-touch recency (measured in layers, so thresholds are
  model- and platform-scale free).  Each sample carries an explicit
  ``other`` bucket (pages holding no live tensor bytes: fragmentation,
  in-flight promote reservations) so
  ``hot + warm + cold + other == measured occupancy`` holds exactly.
* **Churn analytics** — per-tensor migration lineage, a ping-pong detector
  (promote → demote → promote within a configurable window), wasted-prefetch
  accounting (prefetched bytes demoted or freed untouched), and a thrash
  score (migrated bytes over bytes touched).  Per-tensor stall attribution
  joins ``repro.obs.critpath`` step decompositions onto tensors in
  proportion to their in-step migrated bytes (:func:`join_stall_attribution`).
* **Serve-side aggregation** — windowed SLO attainment, multi-window
  burn-rate alerts, and seeded reservoir sampling of per-job names so trace
  retention stays bounded at serving scale.

Zero overhead when disabled: nothing constructs a collector on its own.  A
machine built without one carries ``insight=None`` and every hook site is a
single ``is None`` check, so un-instrumented runs — scalar or vectorized —
stay byte-identical to builds predating this module.

Byte-exactness caveat: tensor bytes are attributed to pages uniformly
across each share's page run (the allocator records which run backs a
share, not the offset within it).  The attribution is self-consistent —
flips mirror actual run state, so per-tensor fast bytes never leave
``[0, nbytes]`` beyond float error — and any migrated bytes that land on
pages holding no live tensor (fragmentation, freed tenants) are surfaced
in ``totals`` as ``*_unattributed`` rather than silently dropped.
"""

from __future__ import annotations

import heapq
import json
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.machine import Machine
    from repro.mem.page import PageTableEntry
    from repro.obs.trace import TraceEvent
    from repro.sim.channel import Transfer

#: Schema identifier stamped into every artifact this module writes.
INSIGHT_SCHEMA = "insight-report/v1"

#: Migration tags that mark speculative (prefetch-style) promotions for the
#: wasted-prefetch accounting.  Matching is by substring so policy-specific
#: tags ("capuchin-prefetch", "vdnn-prefetch", ...) are covered.
_PREFETCH_MARK = "prefetch"


@dataclass(frozen=True)
class InsightConfig:
    """Knobs for the insight collector.

    Heat thresholds are measured in *layers since last touch* (a global
    layer counter across the run), not simulated seconds, so the same
    config classifies sensibly across models and platforms.  The ping-pong
    window is in simulated seconds because it reconciles against trace
    timestamps; ``None`` means unbounded.
    """

    hot_layers: int = 1
    warm_layers: int = 8
    pingpong_window: Optional[float] = None
    slo_objective: float = 0.95
    serve_window: float = 0.05
    burn_threshold: float = 2.0
    burn_long_windows: int = 6
    reservoir_size: int = 8
    reservoir_seed: int = 1

    def __post_init__(self) -> None:
        if self.hot_layers < 0:
            raise ValueError(f"hot_layers must be >= 0, got {self.hot_layers!r}")
        if self.warm_layers < self.hot_layers:
            raise ValueError(
                f"warm_layers ({self.warm_layers!r}) must be >= hot_layers "
                f"({self.hot_layers!r})"
            )
        if self.pingpong_window is not None and self.pingpong_window <= 0:
            raise ValueError(
                f"pingpong_window must be positive or None, got "
                f"{self.pingpong_window!r}"
            )
        if not 0.0 < self.slo_objective < 1.0:
            raise ValueError(
                f"slo_objective must be in (0, 1), got {self.slo_objective!r}"
            )
        if self.serve_window <= 0:
            raise ValueError(f"serve_window must be positive, got {self.serve_window!r}")
        if self.burn_threshold <= 0:
            raise ValueError(
                f"burn_threshold must be positive, got {self.burn_threshold!r}"
            )
        if self.burn_long_windows < 1:
            raise ValueError(
                f"burn_long_windows must be >= 1, got {self.burn_long_windows!r}"
            )
        if self.reservoir_size < 1:
            raise ValueError(
                f"reservoir_size must be >= 1, got {self.reservoir_size!r}"
            )


@dataclass
class _PageSpan:
    """Pages [lo, hi) backing ``nbytes`` of one live tensor episode."""

    lo: int
    hi: int
    nbytes: int
    state: "_TensorState"
    dead: bool = False

    @property
    def npages(self) -> int:
        return self.hi - self.lo


class _TensorState:
    """One allocation episode of one tensor in one scope."""

    __slots__ = (
        "scope",
        "tid",
        "name",
        "kind",
        "nbytes",
        "preallocated",
        "episode",
        "alloc",
        "free",
        "fast_bytes",
        "seg_start",
        "segments",
        "accesses",
        "bytes_touched",
        "last_touch_layer",
        "heat",
        "lineage",
        "prefetch_pending",
        "wasted_prefetch",
        "migrated_bytes",
        "pingpong",
        "stall",
    )

    def __init__(
        self,
        scope: str,
        tid: int,
        name: str,
        kind: str,
        nbytes: int,
        preallocated: bool,
        episode: int,
        alloc: float,
        fast_bytes: float,
        layer: int,
    ) -> None:
        self.scope = scope
        self.tid = tid
        self.name = name
        self.kind = kind
        self.nbytes = nbytes
        self.preallocated = preallocated
        self.episode = episode
        self.alloc = alloc
        self.free: Optional[float] = None
        self.fast_bytes = fast_bytes
        self.seg_start = alloc
        self.segments: List[Tuple[float, float, float]] = []
        self.accesses = 0
        self.bytes_touched = 0
        self.last_touch_layer = layer
        self.heat: Dict[int, List[int]] = {}
        self.lineage: List[Dict[str, Any]] = []
        self.prefetch_pending = 0.0
        self.wasted_prefetch = 0.0
        self.migrated_bytes = 0.0
        self.pingpong = 0
        self.stall = 0.0

    def close_segment(self, now: float) -> None:
        if now > self.seg_start:
            self.segments.append((self.seg_start, now, self.fast_bytes))
            self.seg_start = now


class InsightScope:
    """Per-executor adapter binding hooks to a named scope.

    Implements both the :class:`repro.dnn.executor.StepObserver` protocol
    and the executor's per-access ``tracer`` protocol (duck-typed — no
    executor import, so the dependency points obs-ward only).  One scope
    per executor keeps tensor ids from different jobs/workloads apart.
    """

    __slots__ = ("_collector", "name")

    def __init__(self, collector: "InsightCollector", name: str) -> None:
        self._collector = collector
        self.name = name

    # -- StepObserver protocol -------------------------------------------
    def on_step_start(self, step: int, now: float) -> None:
        self._collector._settle(now)

    def on_tensor_allocated(self, tensor: Any, mapping: Any, now: float) -> None:
        self._collector._on_alloc(self.name, tensor, mapping, now)

    def on_tensor_freed(self, tensor: Any, mapping: Any, now: float) -> None:
        self._collector._on_free(self.name, tensor, now)

    def on_layer_end(self, layer: Any, now: float) -> None:
        self._collector._on_layer_end(now)

    def on_step_end(self, step: int, result: Any) -> None:
        self._collector._on_step_end(result.end_time)

    # -- per-access tracer protocol --------------------------------------
    def record(self, step: int, layer: Any, op: Any, access: Any, charge: Any, now: float) -> None:
        self._collector._on_access(self.name, step, access, now)


class InsightCollector:
    """Collects tensor-level analytics from executor/migration hooks.

    Wire-up (mirrors the pressure/RAS pattern):

    * ``Machine(insight=collector)`` — or ``Machine.for_platform`` — sets
      ``machine.migration.insight`` so promote/demote/discard/materialize
      notify the collector;
    * the harness/server obtains a per-executor :meth:`scope` and passes it
      as both an observer and the executor's per-access ``tracer``;
    * after the run, :meth:`finalize` closes open timelines and
      :meth:`report` emits the canonical artifact dict.

    The collector emits no trace events and touches no counters, so an
    attached tracer/metrics registry stays byte-identical to an
    insight-free run.
    """

    def __init__(self, config: Optional[InsightConfig] = None) -> None:
        self.config = config if config is not None else InsightConfig()
        self._machine: Optional["Machine"] = None
        self._live: Dict[Tuple[str, int], _TensorState] = {}
        self._done: List[_TensorState] = []
        self._episodes: Dict[Tuple[str, int], int] = {}
        self._spans: List[_PageSpan] = []
        self._dead_spans = 0
        #: min-heap of (finish, seq, event_index, [(lo, hi), ...])
        self._flips: List[Tuple[float, int, int, List[Tuple[int, int]]]] = []
        self._flip_seq = 0
        self._events: List[Dict[str, Any]] = []
        self._samples: List[Tuple[float, float, float, float, float, int]] = []
        self._layer_seq = 0
        self._finalized_at: Optional[float] = None
        self._dropped_flips = 0
        # serve-side aggregation
        self._serve_buckets: Dict[int, List[int]] = {}
        self._reservoir: List[str] = []
        self._jobs_seen = 0
        self._job_scopes: set = set()
        self._res_rng = random.Random(self.config.reservoir_seed)

    # ------------------------------------------------------------- wiring

    def bind(self, machine: "Machine") -> None:
        """Attach the machine whose fast tier the occupancy samples read."""
        if self._machine is not None and self._machine is not machine:
            raise ValueError("insight collector is already bound to a machine")
        self._machine = machine

    def scope(self, name: str) -> InsightScope:
        """Observer/tracer adapter for one executor (one tid namespace)."""
        return InsightScope(self, name)

    # ------------------------------------------------------ tensor hooks

    def _on_alloc(self, scope: str, tensor: Any, mapping: Any, now: float) -> None:
        self._settle(now)
        key = (scope, tensor.tid)
        episode = self._episodes.get(key, 0)
        self._episodes[key] = episode + 1
        from repro.mem.devices import DeviceKind

        fast = 0.0
        state = _TensorState(
            scope=scope,
            tid=tensor.tid,
            name=tensor.name,
            kind=getattr(tensor.kind, "name", str(tensor.kind)),
            nbytes=tensor.nbytes,
            preallocated=bool(tensor.preallocated),
            episode=episode,
            alloc=now,
            fast_bytes=0.0,
            layer=self._layer_seq,
        )
        for share in mapping.shares:
            if share.nbytes <= 0:
                continue
            run = share.run
            if run.effective_device(now) is DeviceKind.FAST:
                fast += share.nbytes
            self._spans.append(
                _PageSpan(
                    lo=run.vpn,
                    hi=run.vpn + run.npages,
                    nbytes=share.nbytes,
                    state=state,
                )
            )
        state.fast_bytes = fast
        self._live[key] = state

    def _on_free(self, scope: str, tensor: Any, now: float) -> None:
        self._settle(now)
        key = (scope, tensor.tid)
        state = self._live.pop(key, None)
        if state is None:
            return
        self._retire_state(state, now)

    def _retire_state(self, state: _TensorState, now: float) -> None:
        state.close_segment(max(now, state.seg_start))
        if not state.segments:
            # Zero-length lifetime (alloc and free at the same instant):
            # record one empty-duration segment so the timeline is explicit.
            state.segments.append((state.alloc, now, state.fast_bytes))
        state.free = now
        # Prefetched bytes the tensor died without touching are wasted.
        state.wasted_prefetch += state.prefetch_pending
        state.prefetch_pending = 0.0
        for span in self._spans:
            if span.state is state and not span.dead:
                span.dead = True
                self._dead_spans += 1
        self._compact_spans()
        self._done.append(state)

    def _compact_spans(self) -> None:
        if self._dead_spans * 2 > len(self._spans):
            self._spans = [span for span in self._spans if not span.dead]
            self._dead_spans = 0

    # ------------------------------------------------------- access hooks

    def _on_access(self, scope: str, step: int, access: Any, now: float) -> None:
        self._settle(now)
        state = self._live.get((scope, access.tensor.tid))
        if state is None:
            return
        nbytes = access.nbytes * access.passes
        state.accesses += 1
        state.bytes_touched += nbytes
        state.last_touch_layer = self._layer_seq
        cell = state.heat.setdefault(step, [0, 0])
        cell[0] += 1
        cell[1] += nbytes
        # The prefetched copy got used: it was not wasted.
        state.prefetch_pending = 0.0

    # ---------------------------------------------------- migration hooks

    def on_migration(
        self,
        direction: str,
        runs: Sequence["PageTableEntry"],
        transfer: "Transfer",
        page_size: int,
        tag: object,
        urgent: bool,
        now: float,
    ) -> None:
        """Called by the migration engine at promote/demote submission.

        Residency flips are queued for ``transfer.finish`` — the instant
        ``effective_device`` starts answering with the destination tier —
        and applied lazily before the next hook observes state.
        """
        self._settle(min(now, transfer.start))
        ranges = [(run.vpn, run.vpn + run.npages) for run in runs]
        nbytes = sum(run.npages for run in runs) * page_size
        event = {
            "kind": direction,
            "start": transfer.start,
            "finish": transfer.finish,
            "nbytes": nbytes,
            "tag": None if tag is None else str(tag),
            "urgent": bool(urgent),
            "attributed": 0.0,
        }
        index = len(self._events)
        self._events.append(event)
        heapq.heappush(
            self._flips, (transfer.finish, self._flip_seq, index, ranges)
        )
        self._flip_seq += 1

    def on_instant_flip(
        self, kind: str, run: "PageTableEntry", nbytes: int, now: float
    ) -> None:
        """Discard/materialize: the run changes tier with no copy, now."""
        self._settle(now)
        event = {
            "kind": kind,
            "start": now,
            "finish": now,
            "nbytes": nbytes,
            "tag": None,
            "urgent": False,
            "attributed": 0.0,
        }
        index = len(self._events)
        self._events.append(event)
        self._apply_flip(now, index, [(run.vpn, run.vpn + run.npages)])

    # -------------------------------------------------------- flip engine

    def _settle(self, now: float) -> None:
        """Apply every queued residency flip that has landed by ``now``."""
        while self._flips and self._flips[0][0] <= now:
            finish, _, index, ranges = heapq.heappop(self._flips)
            self._apply_flip(finish, index, ranges)

    def _apply_flip(
        self, when: float, event_index: int, ranges: List[Tuple[int, int]]
    ) -> None:
        event = self._events[event_index]
        promote = event["kind"] in ("promote", "materialize")
        prefetch = bool(event["tag"]) and _PREFETCH_MARK in event["tag"]
        moved_by_state: Dict[int, Tuple[_TensorState, float]] = {}
        for lo, hi in ranges:
            for span in self._spans:
                if span.dead or span.hi <= lo or span.lo >= hi:
                    continue
                overlap = min(span.hi, hi) - max(span.lo, lo)
                moved = span.nbytes * overlap / span.npages
                if moved <= 0.0:
                    continue
                sid = id(span.state)
                prev = moved_by_state.get(sid)
                moved_by_state[sid] = (
                    span.state,
                    moved if prev is None else prev[1] + moved,
                )
        for state, moved in moved_by_state.values():
            state.close_segment(when)
            if promote:
                state.fast_bytes = min(state.nbytes, state.fast_bytes + moved)
                if prefetch:
                    state.prefetch_pending += moved
            else:
                # Fast bytes leaving untouched since their prefetch landed
                # are the wasted-prefetch signal.
                if state.prefetch_pending > 0.0:
                    wasted = min(state.prefetch_pending, moved)
                    state.wasted_prefetch += wasted
                    state.prefetch_pending -= wasted
                state.fast_bytes = max(0.0, state.fast_bytes - moved)
            state.migrated_bytes += moved
            state.lineage.append(
                {
                    "t": when,
                    "start": event["start"],
                    "kind": event["kind"],
                    "bytes": moved,
                    "tag": event["tag"],
                    "urgent": event["urgent"],
                    "pingpong": False,
                }
            )
            event["attributed"] += moved

    # ---------------------------------------------------------- sampling

    def _on_layer_end(self, now: float) -> None:
        self._layer_seq += 1
        self._settle(now)
        self._sample(now)

    def _on_step_end(self, now: float) -> None:
        self._settle(now)
        self._sample(now)

    def _sample(self, now: float) -> None:
        if self._machine is None:
            return
        hot = warm = cold = 0.0
        for state in self._live.values():
            if state.fast_bytes <= 0.0:
                continue
            age = self._layer_seq - state.last_touch_layer
            if age <= self.config.hot_layers:
                hot += state.fast_bytes
            elif age <= self.config.warm_layers:
                warm += state.fast_bytes
            else:
                cold += state.fast_bytes
        occupancy = self._machine.fast.used
        other = occupancy - hot - warm - cold
        sample = (now, hot, warm, cold, other, occupancy)
        if self._samples and self._samples[-1][0] == now:
            self._samples[-1] = sample
        else:
            self._samples.append(sample)

    # -------------------------------------------------------- serve hooks

    def on_attempt_end(self, scope: str, now: float) -> None:
        """A job attempt tore down: close its tensors' open timelines.

        ``Executor.teardown`` frees pages without observer callbacks, so
        the serving layer notifies the collector here instead.
        """
        self._settle(now)
        for key in [k for k in self._live if k[0] == scope]:
            self._retire_state(self._live.pop(key), now)

    def on_job_final(self, job: Any, now: float) -> None:
        """A job reached a terminal state: aggregate its SLO outcome."""
        self.on_attempt_end(job.name, now)
        self._job_scopes.add(job.name)
        bucket = int(now // self.config.serve_window)
        cell = self._serve_buckets.setdefault(bucket, [0, 0])
        cell[1] += 1
        if job.slo_met:
            cell[0] += 1
        # Reservoir-sample job names for bounded trace retention.
        self._jobs_seen += 1
        if len(self._reservoir) < self.config.reservoir_size:
            self._reservoir.append(job.name)
        else:
            slot = self._res_rng.randrange(self._jobs_seen)
            if slot < self.config.reservoir_size:
                self._reservoir[slot] = job.name

    def retained_events(
        self, events: Sequence["TraceEvent"]
    ) -> List["TraceEvent"]:
        """Filter a trace to the reservoir-sampled jobs plus shared tracks.

        Events on tracks belonging to finalized jobs *not* in the reservoir
        are dropped; machine-level tracks (migration, channels, serve, ...)
        pass through untouched.
        """
        keep = set(self._reservoir)
        return [
            event
            for event in events
            if event.track not in self._job_scopes or event.track in keep
        ]

    # ---------------------------------------------------------- finalize

    def finalize(self, now: float) -> None:
        """Close every open timeline; idempotent after the first call."""
        if self._finalized_at is not None:
            return
        self._settle(now)
        self._dropped_flips = len(self._flips)
        self._flips = []
        for key in sorted(self._live, key=lambda k: (k[0], k[1])):
            self._retire_state(self._live.pop(key), now)
        for state in self._done:
            self._flag_pingpong(state)
        self._finalized_at = now

    def _flag_pingpong(self, state: _TensorState) -> None:
        window = self.config.pingpong_window
        moves = [
            entry for entry in state.lineage if entry["kind"] in ("promote", "demote")
        ]
        count = 0
        for j in range(len(moves) - 2):
            a, b, c = moves[j], moves[j + 1], moves[j + 2]
            if (
                a["kind"] == "promote"
                and b["kind"] == "demote"
                and c["kind"] == "promote"
                and (window is None or c["t"] - a["t"] <= window)
            ):
                a["pingpong"] = b["pingpong"] = c["pingpong"] = True
                count += 1
        state.pingpong = count

    # ------------------------------------------------------------ report

    def summary(self) -> Dict[str, float]:
        """Scalar rollups for ``RunMetrics.extras`` (post-finalize)."""
        if self._finalized_at is None:
            raise ValueError("finalize() the collector before summary()")
        return {
            "insight.tensor_episodes": float(len(self._done)),
            "insight.pingpong_events": float(
                sum(state.pingpong for state in self._done)
            ),
            "insight.pingpong_tensors": float(
                sum(1 for state in self._done if state.pingpong)
            ),
            "insight.wasted_prefetch_bytes": float(
                sum(state.wasted_prefetch for state in self._done)
            ),
            "insight.migration_events": float(len(self._events)),
        }

    def report(self, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The canonical artifact dict (call :meth:`finalize` first)."""
        if self._finalized_at is None:
            raise ValueError("finalize() the collector before report()")
        tensors = sorted(
            self._done, key=lambda s: (s.scope, s.tid, s.episode)
        )
        totals: Dict[str, float] = {}
        for event in self._events:
            kind = event["kind"]
            totals[f"{kind}_events"] = totals.get(f"{kind}_events", 0) + 1
            totals[f"{kind}_bytes"] = totals.get(f"{kind}_bytes", 0) + event["nbytes"]
            totals[f"{kind}_attributed"] = (
                totals.get(f"{kind}_attributed", 0.0) + event["attributed"]
            )
        for kind in ("promote", "demote", "discard", "materialize"):
            if f"{kind}_bytes" in totals:
                totals[f"{kind}_unattributed"] = (
                    totals[f"{kind}_bytes"] - totals[f"{kind}_attributed"]
                )
        payload: Dict[str, Any] = {
            "schema": INSIGHT_SCHEMA,
            "meta": dict(meta) if meta else {},
            "config": {
                "hot_layers": self.config.hot_layers,
                "warm_layers": self.config.warm_layers,
                "pingpong_window": self.config.pingpong_window,
                "slo_objective": self.config.slo_objective,
                "serve_window": self.config.serve_window,
                "burn_threshold": self.config.burn_threshold,
                "reservoir_size": self.config.reservoir_size,
            },
            "finalized_at": self._finalized_at,
            "dropped_flips": self._dropped_flips,
            "tensors": [self._tensor_row(state) for state in tensors],
            "occupancy": [list(sample) for sample in self._samples],
            "migrations": [
                {key: event[key] for key in sorted(event)} for event in self._events
            ],
            "totals": totals,
        }
        serve = self._serve_section()
        if serve is not None:
            payload["serve"] = serve
        return payload

    def _tensor_row(self, state: _TensorState) -> Dict[str, Any]:
        return {
            "scope": state.scope,
            "tid": state.tid,
            "episode": state.episode,
            "name": state.name,
            "kind": state.kind,
            "nbytes": state.nbytes,
            "preallocated": state.preallocated,
            "alloc": state.alloc,
            "free": state.free,
            "residency": [list(segment) for segment in state.segments],
            "accesses": state.accesses,
            "bytes_touched": state.bytes_touched,
            "heat": {
                str(step): list(cell) for step, cell in sorted(state.heat.items())
            },
            "lineage": [
                {key: entry[key] for key in sorted(entry)}
                for entry in state.lineage
            ],
            "migrated_bytes": state.migrated_bytes,
            "pingpong": state.pingpong,
            "wasted_prefetch_bytes": state.wasted_prefetch,
            "thrash": state.migrated_bytes / max(1, state.bytes_touched),
            "stall": state.stall,
        }

    def _serve_section(self) -> Optional[Dict[str, Any]]:
        if not self._serve_buckets and not self._jobs_seen:
            return None
        width = self.config.serve_window
        objective = self.config.slo_objective
        threshold = self.config.burn_threshold
        long_n = self.config.burn_long_windows
        buckets = self._serve_buckets
        lo, hi = min(buckets), max(buckets)
        windows: List[Dict[str, Any]] = []
        alerts: List[float] = []
        for b in range(lo, hi + 1):
            ok, total = buckets.get(b, [0, 0])
            attainment = ok / total if total else None
            burn = (
                ((total - ok) / total) / (1.0 - objective) if total else None
            )
            span_ok = span_total = 0
            for back in range(b - long_n + 1, b + 1):
                cell = buckets.get(back)
                if cell is not None:
                    span_ok += cell[0]
                    span_total += cell[1]
            burn_long = (
                ((span_total - span_ok) / span_total) / (1.0 - objective)
                if span_total
                else None
            )
            alert = bool(
                total
                and burn is not None
                and burn >= threshold
                and burn_long is not None
                and burn_long >= threshold
            )
            if alert:
                alerts.append(b * width)
            windows.append(
                {
                    "t0": b * width,
                    "t1": (b + 1) * width,
                    "jobs": total,
                    "ok": ok,
                    "attainment": attainment,
                    "burn": burn,
                    "burn_long": burn_long,
                    "alert": alert,
                }
            )
        return {
            "window": width,
            "objective": objective,
            "threshold": threshold,
            "jobs": self._jobs_seen,
            "windows": windows,
            "alerts": alerts,
            "sampled_jobs": sorted(self._reservoir),
        }


# ----------------------------------------------------------- critpath join


def join_stall_attribution(report: Dict[str, Any], attribution: Any) -> None:
    """Distribute per-step migration stall onto tensors, in place.

    Each :class:`repro.obs.critpath.StepAttribution`'s ``migration_stall``
    is split across the tensors whose migrations landed inside the step's
    wall-span, in proportion to their in-step migrated bytes — the same
    proportionality the policies' stall charging uses.  Tensors without
    in-step migrations receive nothing; the per-step residual (stall with
    no attributable migration bytes) is recorded in
    ``report["totals"]["stall_unattributed"]``.
    """
    unattributed = 0.0
    for step in attribution.steps:
        stall = step.migration_stall
        if stall <= 0.0:
            continue
        weights: List[Tuple[Dict[str, Any], float]] = []
        total_bytes = 0.0
        for row in report["tensors"]:
            in_step = sum(
                entry["bytes"]
                for entry in row["lineage"]
                if step.start <= entry["t"] <= step.end
            )
            if in_step > 0.0:
                weights.append((row, in_step))
                total_bytes += in_step
        if total_bytes <= 0.0:
            unattributed += stall
            continue
        for row, in_step in weights:
            row["stall"] += stall * in_step / total_bytes
    report["totals"]["stall_unattributed"] = unattributed


# ------------------------------------------------------------- canonical IO


def insight_json(report: Dict[str, Any]) -> str:
    """The byte-stable canonical JSON form of an insight artifact."""
    return json.dumps(report, sort_keys=True, separators=(",", ":")) + "\n"


def write_insight(report: Dict[str, Any], path: str) -> None:
    """Write the canonical artifact to ``path``."""
    with open(path, "w") as handle:
        handle.write(insight_json(report))


def validate_insight(obj: Any) -> int:
    """Validate a loaded insight artifact; returns the tensor-row count.

    Checks the schema id, the presence and shape of every top-level
    section, residency-timeline contiguity, and the occupancy identity
    ``hot + warm + cold + other == occupancy`` per sample.  Raises
    :class:`ValueError` naming the first violation.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"artifact must be a JSON object, got {type(obj).__name__}")
    if obj.get("schema") != INSIGHT_SCHEMA:
        raise ValueError(f"schema must be {INSIGHT_SCHEMA!r}, got {obj.get('schema')!r}")
    for key in ("config", "tensors", "occupancy", "migrations", "totals"):
        if key not in obj:
            raise ValueError(f"artifact is missing section {key!r}")
    for index, row in enumerate(obj["tensors"]):
        where = f"tensors[{index}]"
        for key in ("scope", "tid", "nbytes", "alloc", "residency", "lineage"):
            if key not in row:
                raise ValueError(f"{where}: missing key {key!r}")
        segments = row["residency"]
        if not segments:
            raise ValueError(f"{where}: empty residency timeline")
        if segments[0][0] != row["alloc"]:
            raise ValueError(
                f"{where}: timeline starts at {segments[0][0]!r}, "
                f"allocated at {row['alloc']!r}"
            )
        for s_index in range(1, len(segments)):
            if segments[s_index][0] != segments[s_index - 1][1]:
                raise ValueError(
                    f"{where}: residency gap between segments "
                    f"{s_index - 1} and {s_index}"
                )
        if row["free"] is not None and segments[-1][1] != row["free"]:
            raise ValueError(
                f"{where}: timeline ends at {segments[-1][1]!r}, "
                f"freed at {row['free']!r}"
            )
        for s_index, (_, _, fast) in enumerate(segments):
            if fast < -1e-6 or fast > row["nbytes"] * (1 + 1e-9) + 1e-6:
                raise ValueError(
                    f"{where}: segment {s_index} fast bytes {fast!r} outside "
                    f"[0, {row['nbytes']}]"
                )
    for s_index, sample in enumerate(obj["occupancy"]):
        if len(sample) != 6:
            raise ValueError(f"occupancy[{s_index}]: expected 6 fields")
        _, hot, warm, cold, other, occupancy = sample
        if abs(hot + warm + cold + other - occupancy) > 1e-6:
            raise ValueError(
                f"occupancy[{s_index}]: hot+warm+cold+other != occupancy"
            )
    return len(obj["tensors"])
