"""Structured event tracing for simulation runs (observability layer).

``repro.obs`` records *when* things happened, not just how often: every
migration, protection fault, prefetch decision, channel transfer, chaos
injection, and training step becomes a timestamped :class:`TraceEvent` in a
ring buffer, carrying simulated time from the executor's clock.  The paper's
temporal claims (Figures 8-10: interval behaviour, bandwidth over time,
Case 1/2/3 breakdowns) are assertions about these events, which makes the
trace the ground truth that golden-snapshot and property-based regression
tests check against.

Zero overhead when disabled: no component ever constructs a tracer on its
own.  A :class:`~repro.mem.machine.Machine` built without one (the default)
carries ``tracer=None`` and every instrumentation site is a single
``is not None`` check that fails closed — the simulated timeline, metrics,
and outputs are bit-identical to a build without this module.

Exports load into Perfetto / ``chrome://tracing`` (:func:`to_chrome`), a
compact JSONL (:func:`to_jsonl`), and a human summary
(:func:`repro.harness.report.format_trace_summary`); :class:`TraceQuery`
answers the filtering/span/overlap questions experiments and tests ask.
"""

from repro.obs.trace import CATEGORIES, EventTracer, TraceEvent
from repro.obs.export import (
    canonical_digest,
    chrome_json,
    combine_chrome,
    from_jsonl,
    to_chrome,
    to_jsonl,
    validate_chrome,
    write_chrome,
)
from repro.obs.insight import (
    INSIGHT_SCHEMA,
    InsightCollector,
    InsightConfig,
    insight_json,
    join_stall_attribution,
    validate_insight,
    write_insight,
)
from repro.obs.html import render_insight_html, write_insight_html
from repro.obs.query import Span, TraceQuery
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timeline,
    TimeSeries,
)
from repro.obs.critpath import (
    Attribution,
    DagNode,
    StepAttribution,
    StepDag,
    TraceTruncatedError,
    attribute,
    build_step_dags,
    critical_path,
)

__all__ = [
    "CATEGORIES",
    "EventTracer",
    "TraceEvent",
    "Span",
    "TraceQuery",
    "canonical_digest",
    "chrome_json",
    "combine_chrome",
    "from_jsonl",
    "to_chrome",
    "to_jsonl",
    "validate_chrome",
    "write_chrome",
    "INSIGHT_SCHEMA",
    "InsightCollector",
    "InsightConfig",
    "insight_json",
    "join_stall_attribution",
    "validate_insight",
    "write_insight",
    "render_insight_html",
    "write_insight_html",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timeline",
    "TimeSeries",
    "Attribution",
    "StepAttribution",
    "DagNode",
    "StepDag",
    "TraceTruncatedError",
    "attribute",
    "build_step_dags",
    "critical_path",
]
