"""Query helper over event traces: filtering, spans, overlap accounting.

:class:`TraceQuery` is the read side of ``repro.obs``: experiments use it
to re-derive figure data from a trace (e.g. Figure 9's bandwidth series
from channel spans) and the regression suites use it to assert temporal
invariants — spans on a FIFO channel never overlap, every fault lands
inside a step span, counter totals match event totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.obs.trace import TraceEvent


@dataclass(frozen=True)
class Span:
    """A closed interval reconstructed from one ``X`` or a ``B``/``E`` pair."""

    name: str
    cat: str
    track: str
    start: float
    end: float
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, ts: float) -> bool:
        """Whether ``ts`` falls inside this span (closed interval)."""
        return self.start <= ts <= self.end


class TraceQuery:
    """Chainable filters and aggregations over a sequence of events."""

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        self.events: List[TraceEvent] = list(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # ------------------------------------------------------------ filtering

    def filter(
        self,
        cat: Optional[str] = None,
        name: Optional[str] = None,
        track: Optional[str] = None,
        tensor: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> "TraceQuery":
        """Events matching every given criterion (``tensor`` matches the
        ``tensor`` args key, so tensor-scoped questions need no lambda)."""
        out = []
        for event in self.events:
            if cat is not None and event.cat != cat:
                continue
            if name is not None and event.name != name:
                continue
            if track is not None and event.track != track:
                continue
            if tensor is not None and event.args.get("tensor") != tensor:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return TraceQuery(out)

    def between(self, start: float, end: float) -> "TraceQuery":
        """Events whose timestamp falls in ``[start, end)`` (``X`` events
        qualify if their span intersects the window; a zero-duration ``X``
        is treated like an instant at its timestamp, so one sitting exactly
        on ``start`` is included — a strict ``ts + dur > start`` test would
        drop it while admitting an ``i`` event at the same time)."""
        out = []
        for event in self.events:
            if event.ph == "X" and event.dur > 0.0:
                if event.ts < end and event.ts + event.dur > start:
                    out.append(event)
            elif start <= event.ts < end:
                out.append(event)
        return TraceQuery(out)

    # ---------------------------------------------------------------- spans

    def spans(
        self,
        cat: Optional[str] = None,
        name: Optional[str] = None,
        track: Optional[str] = None,
    ) -> List[Span]:
        """Spans from ``X`` events and LIFO-paired ``B``/``E`` events.

        Pairing is per track: an ``E`` closes the most recent open ``B`` on
        its track (the nesting discipline the emitters follow).  Unclosed
        ``B`` events are dropped — a truncated ring buffer must not invent
        intervals.  Filters apply to the resulting spans.
        """
        spans: List[Span] = []
        open_stacks: Dict[str, List[TraceEvent]] = {}
        for event in self.events:
            if event.ph == "X":
                spans.append(
                    Span(
                        name=event.name,
                        cat=event.cat,
                        track=event.track,
                        start=event.ts,
                        end=event.ts + event.dur,
                        args=dict(event.args),
                    )
                )
            elif event.ph == "B":
                open_stacks.setdefault(event.track, []).append(event)
            elif event.ph == "E":
                stack = open_stacks.get(event.track)
                if stack:
                    begin = stack.pop()
                    merged = dict(begin.args)
                    merged.update(event.args)
                    spans.append(
                        Span(
                            name=begin.name,
                            cat=begin.cat,
                            track=begin.track,
                            start=begin.ts,
                            end=event.ts,
                            args=merged,
                        )
                    )
        spans.sort(key=lambda span: (span.start, span.end, span.track, span.name))
        return [
            span
            for span in spans
            if (cat is None or span.cat == cat)
            and (name is None or span.name == name)
            and (track is None or span.track == track)
        ]

    def total_span_time(self, **criteria: Optional[str]) -> float:
        """Sum of span durations matching the :meth:`spans` criteria."""
        return sum(span.duration for span in self.spans(**criteria))

    def overlap_time(self, track: str, cat: Optional[str] = None) -> float:
        """Seconds covered by two or more spans at once on ``track``.

        Zero on a well-formed FIFO channel track — the property the
        trace-invariant suite asserts.
        """
        edges: List[tuple] = []
        for span in self.spans(cat=cat, track=track):
            edges.append((span.start, 1))
            edges.append((span.end, -1))
        edges.sort()
        depth = 0
        overlapped = 0.0
        previous = 0.0
        for ts, delta in edges:
            if depth >= 2:
                overlapped += ts - previous
            depth += delta
            previous = ts
        return overlapped

    def covering_span(
        self, ts: float, cat: Optional[str] = None, name: Optional[str] = None
    ) -> Optional[Span]:
        """The innermost (shortest) span containing ``ts``, or ``None``."""
        candidates = [span for span in self.spans(cat=cat, name=name) if span.contains(ts)]
        if not candidates:
            return None
        return min(candidates, key=lambda span: span.duration)

    # ----------------------------------------------------------- aggregates

    def sum_arg(self, key: str, default: float = 0.0) -> float:
        """Sum of a numeric args field across all events."""
        total = default
        for event in self.events:
            value = event.args.get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                total += value
        return total

    def count(self) -> int:
        return len(self.events)

    def categories(self) -> Dict[str, int]:
        """Event counts per category (summary-table fuel)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.cat] = counts.get(event.cat, 0) + 1
        return counts

    def tracks(self) -> List[str]:
        """Distinct track names in first-appearance order."""
        seen: List[str] = []
        for event in self.events:
            if event.track not in seen:
                seen.append(event.track)
        return seen

    def span_rate_series(
        self, bin_width: float, arg: str = "nbytes", **criteria: Optional[str]
    ) -> List[tuple]:
        """``(bin_start, arg_per_second)`` pairs from matching spans.

        Each span's ``arg`` total is spread uniformly over its duration —
        exactly how :class:`repro.obs.metrics.Timeline` builds the Figure 9
        bandwidth plot, but re-derived from the trace.
        """
        if bin_width <= 0.0:
            raise ValueError(f"bin width must be positive, got {bin_width!r}")
        bins: Dict[int, float] = {}
        for span in self.spans(**criteria):
            amount = span.args.get(arg)
            if not isinstance(amount, (int, float)) or isinstance(amount, bool):
                continue
            if span.duration <= 0.0:
                index = int(span.start / bin_width)
                bins[index] = bins.get(index, 0.0) + amount
                continue
            rate = amount / span.duration
            first = int(span.start / bin_width)
            last = int(span.end / bin_width)
            for index in range(first, last + 1):
                lo = index * bin_width
                hi = lo + bin_width
                cover = min(span.end, hi) - max(span.start, lo)
                if cover > 0.0:
                    bins[index] = bins.get(index, 0.0) + rate * cover
        return [
            (index * bin_width, total / bin_width)
            for index, total in sorted(bins.items())
        ]
