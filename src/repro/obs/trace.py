"""The event tracer: ring-buffered, simulated-time-stamped records.

Event model (a deliberate subset of Chrome's ``trace_event`` phases):

* ``"X"`` — a *complete* span whose duration is known at emission (the
  channel/migration case: completion times are analytic at submission);
* ``"B"``/``"E"`` — begin/end of a span whose end is not known up front
  (step and layer spans), paired per track in LIFO (nesting) order;
* ``"i"`` — an instant event (a decision, a fault, an injected error).

Timestamps are simulated seconds.  Components that receive ``now`` as an
argument stamp events with it; components deeper in the substrate (the
fault handler, the chaos injector) read the executor's clock through
:meth:`EventTracer.bind_clock` instead of threading ``now`` through every
call signature.

The buffer is a true ring: once ``capacity`` events are held, the oldest is
overwritten and ``dropped`` counts the loss — tracing a huge run degrades
to a sliding window instead of exhausting memory, the same contract a
kernel trace buffer offers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.clock import Clock

#: The event categories the simulator emits; one lane per subsystem.
CATEGORIES = frozenset(
    {
        "step",
        "migration",
        "fault",
        "prefetch",
        "channel",
        "chaos",
        "gpu",
        "pressure",
        "cluster",
        "serve",
        "ras",
        "admission",
    }
)

#: Allowed Chrome ``trace_event`` phases.
PHASES = frozenset({"B", "E", "X", "i"})


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped record.

    Attributes:
        name: what happened (``"promote"``, ``"step"``, ``"case3"``, ...).
        cat: one of :data:`CATEGORIES`.
        ph: Chrome phase — ``"X"`` complete, ``"B"``/``"E"`` span edges,
            ``"i"`` instant.
        ts: simulated time in seconds.
        dur: span length in seconds (``"X"`` events only).
        track: logical lane the event belongs to (exported as a Chrome
            thread); channel events use the channel name so per-channel
            FIFO ordering is visible and testable.
        args: free-form payload (byte counts, interval indices, tags...).
    """

    name: str
    cat: str
    ph: str
    ts: float
    dur: float = 0.0
    track: str = "main"
    args: Dict[str, Any] = field(default_factory=dict)


class EventTracer:
    """Collects :class:`TraceEvent` records in a bounded ring buffer.

    Args:
        capacity: maximum events held; beyond it the oldest are overwritten
            (and counted in :attr:`dropped`).
    """

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = capacity
        self.dropped = 0
        self._buffer: List[TraceEvent] = []
        self._head = 0  # next overwrite position once the buffer is full
        self._clock: Optional[Clock] = None

    # -------------------------------------------------------------- plumbing

    def bind_clock(self, clock: Clock) -> None:
        """Adopt ``clock`` as the timestamp source for clockless call sites.

        The executor binds its clock at construction; components that do not
        receive ``now`` (fault handler, chaos injector) then stamp events
        with the current simulated time automatically.
        """
        self._clock = clock

    def now(self) -> float:
        """Current simulated time (0.0 before any clock is bound)."""
        return self._clock.now if self._clock is not None else 0.0

    def _emit(self, event: TraceEvent) -> None:
        if event.cat not in CATEGORIES:
            raise ValueError(
                f"unknown trace category {event.cat!r}; expected one of "
                f"{sorted(CATEGORIES)}"
            )
        if event.ph not in PHASES:
            raise ValueError(f"unknown trace phase {event.ph!r}")
        if len(self._buffer) < self.capacity:
            self._buffer.append(event)
        else:
            self._buffer[self._head] = event
            self._head = (self._head + 1) % self.capacity
            self.dropped += 1

    # ------------------------------------------------------------- emission

    def instant(
        self,
        name: str,
        cat: str,
        ts: Optional[float] = None,
        track: str = "main",
        **args: Any,
    ) -> None:
        """Record a point event at ``ts`` (default: the bound clock's now)."""
        self._emit(
            TraceEvent(
                name=name,
                cat=cat,
                ph="i",
                ts=self.now() if ts is None else ts,
                track=track,
                args=args,
            )
        )

    def complete(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        track: str = "main",
        **args: Any,
    ) -> None:
        """Record a span whose duration is already known (an ``"X"`` event)."""
        if dur < 0.0:
            raise ValueError(f"span duration must be non-negative, got {dur!r}")
        self._emit(
            TraceEvent(
                name=name, cat=cat, ph="X", ts=ts, dur=dur, track=track, args=args
            )
        )

    def begin(
        self,
        name: str,
        cat: str,
        ts: Optional[float] = None,
        track: str = "main",
        **args: Any,
    ) -> None:
        """Open a span on ``track``; close it with a matching :meth:`end`."""
        self._emit(
            TraceEvent(
                name=name,
                cat=cat,
                ph="B",
                ts=self.now() if ts is None else ts,
                track=track,
                args=args,
            )
        )

    def end(
        self,
        name: str,
        cat: str,
        ts: Optional[float] = None,
        track: str = "main",
        **args: Any,
    ) -> None:
        """Close the most recent open span on ``track`` (LIFO pairing)."""
        self._emit(
            TraceEvent(
                name=name,
                cat=cat,
                ph="E",
                ts=self.now() if ts is None else ts,
                track=track,
                args=args,
            )
        )

    # -------------------------------------------------------------- reading

    @property
    def events(self) -> List[TraceEvent]:
        """Events in emission order (oldest first, post-ring-rotation)."""
        if len(self._buffer) < self.capacity or self._head == 0:
            return list(self._buffer)
        return self._buffer[self._head :] + self._buffer[: self._head]

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()
        self._head = 0
        self.dropped = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventTracer({len(self._buffer)}/{self.capacity} events, "
            f"dropped={self.dropped})"
        )
