"""BERT encoder builders (base and large).

Each transformer encoder layer is modelled as two managed layers — attention
and feed-forward — because their memory behaviour differs: attention saves
the (batch x heads x seq x seq) probability tensor for its backward pass
(the big long-lived intermediate that dominates BERT's footprint at long
sequence lengths), while the FFN saves the usual (batch x seq x 4H)
activation.
"""

from __future__ import annotations

from repro.dnn.graph import Graph
from repro.models.common import FP32, LayerCost, TrainStepBuilder

BERT_CONFIGS = {
    "bert-base": dict(layers=12, hidden=768, heads=12, seq=128),
    "bert-large": dict(layers=24, hidden=1024, heads=16, seq=384),
}


def build_bert(variant: str, batch_size: int) -> Graph:
    """A BERT training step for ``variant`` in :data:`BERT_CONFIGS`."""
    try:
        config = BERT_CONFIGS[variant]
    except KeyError:
        raise ValueError(
            f"unknown BERT variant {variant!r}; choose from {sorted(BERT_CONFIGS)}"
        ) from None
    layers = config["layers"]
    hidden = config["hidden"]
    heads = config["heads"]
    seq = config["seq"]

    token_bytes = batch_size * seq * hidden * FP32
    attn_matrix_bytes = batch_size * heads * seq * seq * FP32
    input_bytes = batch_size * seq * 8  # token + segment ids

    tb = TrainStepBuilder(variant, batch_size, input_bytes)
    tb.metadata.update(
        model_family="bert", layers=layers, hidden=hidden, seq=seq, recurrent=False
    )

    # Embedding lookup: the table is a big, sparsely-read weight.
    vocab = 30522
    tb.add_layer(
        LayerCost(
            name="embed",
            weight_bytes=vocab * hidden * FP32,
            out_bytes=token_bytes,
            flops=2.0 * batch_size * seq * hidden,
            small_temps=10,
        )
    )

    for index in range(layers):
        # Attention: QKV + output projections (4 H^2 weights); saves the
        # attention probabilities, hence the large out/workspace sizes.
        qkv_flops = 4 * 2.0 * batch_size * seq * hidden * hidden
        attn_flops = 2 * 2.0 * batch_size * heads * seq * seq * (hidden // heads)
        tb.add_layer(
            LayerCost(
                name=f"enc{index}.attn",
                weight_bytes=4 * hidden * hidden * FP32,
                out_bytes=token_bytes + attn_matrix_bytes,
                flops=qkv_flops + attn_flops,
                workspace_bytes=3 * token_bytes,  # packed Q,K,V scratch
                small_temps=14,
                saved_aux=2,
            )
        )
        # Feed-forward: H -> 4H -> H.
        tb.add_layer(
            LayerCost(
                name=f"enc{index}.ffn",
                weight_bytes=2 * hidden * 4 * hidden * FP32,
                out_bytes=token_bytes,
                flops=2 * 2.0 * batch_size * seq * hidden * 4 * hidden,
                workspace_bytes=batch_size * seq * 4 * hidden * FP32,
                small_temps=12,
                saved_aux=3,
            )
        )

    # Masked-LM head over the tied embedding.
    tb.add_layer(
        LayerCost(
            name="mlm_head",
            weight_bytes=hidden * hidden * FP32,
            out_bytes=batch_size * seq * hidden * FP32,
            flops=2.0 * batch_size * seq * hidden * vocab / 8,
            small_temps=8,
        )
    )
    return tb.finish()
