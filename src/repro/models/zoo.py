"""Model registry with the paper's small/large batch configurations.

Batch sizes follow Table III's structure: a "small" batch whose peak memory
fits comfortably within typical DRAM (used in Figure 7's 20%-of-peak
experiments) and a "large" batch stressing capacity (Figure 8 / Table V).
The CPU experiments use ResNet-32 for the small-batch runs and ResNet-200 /
BERT-large for the large-batch runs, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.dnn.graph import Graph
from repro.models.bert import build_bert
from repro.models.dcgan import build_dcgan
from repro.models.gpt import build_gpt
from repro.models.lstm import build_lstm
from repro.models.mobilenet import build_mobilenet
from repro.models.resnet import build_resnet


@dataclass(frozen=True)
class ModelSpec:
    """A named model configuration with its evaluation batch sizes."""

    name: str
    builder: Callable[[int], Graph]
    small_batch: int
    large_batch: int
    description: str = ""

    def build(self, batch_size: Optional[int] = None, scale: str = "small") -> Graph:
        """Build the graph at an explicit batch size or a named scale."""
        if batch_size is None:
            if scale == "small":
                batch_size = self.small_batch
            elif scale == "large":
                batch_size = self.large_batch
            else:
                raise ValueError(f"scale must be 'small' or 'large', got {scale!r}")
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size!r}")
        return self.builder(batch_size)


MODELS: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        ModelSpec(
            name="resnet32",
            builder=lambda batch: build_resnet(32, batch),
            small_batch=1024,
            large_batch=4096,
            description="CIFAR-10 ResNet-32, the paper's characterization model",
        ),
        ModelSpec(
            name="resnet200",
            builder=lambda batch: build_resnet(200, batch),
            small_batch=8,
            large_batch=32,
            description="ImageNet bottleneck ResNet-200 (large-batch CPU runs)",
        ),
        ModelSpec(
            name="bert-base",
            builder=lambda batch: build_bert("bert-base", batch),
            small_batch=16,
            large_batch=64,
            description="BERT-base, seq 128",
        ),
        ModelSpec(
            name="bert-large",
            builder=lambda batch: build_bert("bert-large", batch),
            small_batch=4,
            large_batch=16,
            description="BERT-large, seq 384",
        ),
        ModelSpec(
            name="lstm",
            builder=lambda batch: build_lstm(batch),
            small_batch=256,
            large_batch=1024,
            description="2x1024 LSTM LM, 50-step BPTT (recurrent: defeats vDNN)",
        ),
        ModelSpec(
            name="mobilenet",
            builder=lambda batch: build_mobilenet(batch),
            small_batch=32,
            large_batch=256,
            description="MobileNet-v1 at 224x224 (activation-dominated)",
        ),
        ModelSpec(
            name="gpt-small",
            builder=lambda batch: build_gpt("gpt-small", batch),
            small_batch=8,
            large_batch=32,
            description="GPT decoder, 12x768, seq 256 (weight-dominated)",
        ),
        ModelSpec(
            name="gpt-medium",
            builder=lambda batch: build_gpt("gpt-medium", batch),
            small_batch=4,
            large_batch=16,
            description="GPT decoder, 24x1024, seq 512",
        ),
        ModelSpec(
            name="dcgan",
            builder=lambda batch: build_dcgan(batch),
            small_batch=64,
            large_batch=2048,
            description="DCGAN generator+discriminator at 64x64",
        ),
    )
}


def build_model(
    name: str, batch_size: Optional[int] = None, scale: str = "small"
) -> Graph:
    """Build a registered model by name."""
    try:
        spec = MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; available: {sorted(MODELS)}"
        ) from None
    return spec.build(batch_size=batch_size, scale=scale)
