"""Shared machinery for building training-step graphs.

:class:`TrainStepBuilder` wraps :class:`~repro.dnn.graph.GraphBuilder` with
the structure common to all trained networks:

* a **forward pass** of parameterized layers, each saving the tensors its
  backward pass will need (the long-lived intermediates the paper migrates);
* a **loss layer**;
* a mirrored **backward pass**, where each layer reads its saved forward
  inputs, produces a weight gradient (short-lived — consumed by the
  optimizer op in the same layer) and an input gradient (alive exactly two
  layers, handed to the next backward layer), and applies the update to the
  preallocated weights and optimizer state;
* per-layer populations of **small short-lived temporaries** (shape
  metadata, scalar stats, index buffers — Observation 1) and occasional
  medium workspace buffers (im2col/transpose scratch);
* a handful of **hot global tensors** (step counter, learning rate, loss
  scale) touched by every layer, reproducing the >100-access hot set of
  Observation 2.

Builders in this package describe *what the step does to memory*; numerics
are out of scope by design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dnn.graph import GraphBuilder, Graph, Phase
from repro.dnn.ops import TensorAccess
from repro.dnn.tensor import Tensor, TensorKind

FP32 = 4

#: Deterministic size cycle for small short-lived temporaries (bytes).
#: Chosen below one 4 KiB page so ~98% of short-lived tensors are "small".
SMALL_TEMP_SIZES = (16, 32, 64, 24, 128, 48, 256, 96, 512, 40, 1024, 80)


@dataclass
class LayerCost:
    """Compute/temp parameters of one trainable forward layer."""

    name: str
    weight_bytes: int
    out_bytes: int
    flops: float
    #: medium scratch (im2col / transpose) allocated and dropped in-layer
    workspace_bytes: int = 0
    #: count of tiny short-lived temporaries emitted in the layer
    small_temps: int = 10
    #: main-memory passes over the weights per use (recurrent cells reuse
    #: their weights once per timestep, driving their access counts >100)
    weight_passes: int = 1
    #: whether the input activation must be saved for the backward pass
    saves_input: bool = True
    #: extra saved intermediates (each of ``out_bytes``): frameworks keep
    #: several per block for backward (pre-BN, pre-activation, skip sums),
    #: which is what makes the peak footprint several times larger than any
    #: single tensor
    saved_aux: int = 0


@dataclass
class _BackwardSpec:
    layer: LayerCost
    weight: Optional[Tensor]
    opt_state: Optional[Tensor]
    saved_input: Optional[Tensor]
    output: Tensor
    saved_aux: List[Tensor] = field(default_factory=list)


class TrainStepBuilder:
    """Builds one training step: forward layers, loss, mirrored backward."""

    def __init__(self, name: str, batch_size: int, input_bytes: int) -> None:
        self.builder = GraphBuilder(name, batch_size)
        self._backward: List[_BackwardSpec] = []
        self._temp_serial = 0
        # Hot globals: touched by every layer, forward and backward.  With
        # 2-4 touches per layer over ~70-300 layers these are the paper's
        # >100-access hot set — a few MB of runtime state (stream
        # workspaces, RNG state, counters) against gigabytes of cold data
        # (Observation 2).
        self.step_counter = self.builder.global_tensor("global.step", 8)
        self.learning_rate = self.builder.global_tensor("global.lr", 4)
        self.loss_scale = self.builder.global_tensor("global.loss_scale", 4)
        self.workspace = self.builder.global_tensor(
            "runtime.workspace", 2 * 1024 * 1024
        )
        self.rng_state = self.builder.global_tensor("runtime.rng", 1024 * 1024)
        self.input = self.builder.input("input.batch", input_bytes)
        self.activation: Tensor = self.input
        self._loss_emitted = False

    @property
    def metadata(self) -> dict:
        return self.builder.metadata

    # ------------------------------------------------------------ internals

    def _small_temps(self, prefix: str, count: int) -> List[Tensor]:
        temps = []
        for _ in range(count):
            size = SMALL_TEMP_SIZES[self._temp_serial % len(SMALL_TEMP_SIZES)]
            temps.append(self.builder.temp(f"{prefix}.t{self._temp_serial}", size))
            self._temp_serial += 1
        return temps

    def _emit_temp_ops(self, prefix: str, temps: List[Tensor]) -> None:
        """Tiny setup ops writing then reading the layer's temporaries."""
        if not temps:
            return
        self.builder.op(
            f"{prefix}.setup",
            flops=1e3 * len(temps),
            reads=[self.step_counter, self.rng_state, self.workspace],
            writes=list(temps),
        )
        self.builder.op(
            f"{prefix}.meta",
            flops=1e3 * len(temps),
            reads=list(temps) + [self.step_counter],
            writes=[self.rng_state, self.workspace],
        )

    # -------------------------------------------------------------- forward

    def add_layer(
        self,
        cost: LayerCost,
        input_tensor: Optional[Tensor] = None,
        shared_weight: Optional[Tensor] = None,
        shared_opt: Optional[Tensor] = None,
    ) -> Tensor:
        """Emit one forward layer; returns its output activation.

        ``shared_weight`` reuses an existing weight tensor instead of
        creating one (recurrent cells) — the backward layer then computes a
        gradient against it but only the layer that *owns* the optimizer
        state (``shared_opt`` passed, or the weight's creator) applies the
        update, matching accumulate-then-apply BPTT.
        """
        b = self.builder
        x_in = input_tensor if input_tensor is not None else self.activation
        if shared_weight is not None:
            weight: Optional[Tensor] = shared_weight
            opt_state = shared_opt
        else:
            weight = (
                b.weight(f"{cost.name}.w", cost.weight_bytes)
                if cost.weight_bytes > 0
                else None
            )
            opt_state = (
                b.weight(f"{cost.name}.opt", cost.weight_bytes)
                if cost.weight_bytes > 0
                else None
            )
        with b.layer(cost.name, Phase.FORWARD):
            temps = self._small_temps(cost.name, cost.small_temps)
            self._emit_temp_ops(cost.name, temps)
            out = b.tensor(f"{cost.name}.out", cost.out_bytes, TensorKind.ACTIVATION)
            # Tiled kernels stream their input more than once from main
            # memory (im2col lowering plus the GEMM's panel re-reads).
            reads = [
                TensorAccess(x_in, x_in.nbytes, is_write=False, passes=2),
                # The kernel stages partial results through the runtime's
                # shared scratch workspace — touched by every layer's main
                # op, which is what makes it hot.
                TensorAccess(
                    self.workspace, self.workspace.nbytes, is_write=False, passes=2
                ),
            ]
            if weight is not None:
                reads.append(
                    TensorAccess(
                        weight, weight.nbytes, is_write=False, passes=cost.weight_passes
                    )
                )
            writes = [
                TensorAccess(out, out.nbytes, is_write=True),
                TensorAccess(
                    self.workspace, self.workspace.nbytes, is_write=True, passes=2
                ),
            ]
            if cost.workspace_bytes > 0:
                workspace = b.temp(f"{cost.name}.ws", cost.workspace_bytes)
                # im2col-style scratch: written by the lowering, re-read by
                # the kernel, dead at layer end.
                writes.append(TensorAccess(workspace, workspace.nbytes, is_write=True))
                reads.append(TensorAccess(workspace, workspace.nbytes, is_write=False))
            saved_aux = [
                b.tensor(f"{cost.name}.save{k}", cost.out_bytes, TensorKind.ACTIVATION)
                for k in range(cost.saved_aux)
            ]
            writes.extend(
                TensorAccess(t, t.nbytes, is_write=True) for t in saved_aux
            )
            b.op(f"{cost.name}.main", flops=cost.flops, reads=reads, writes=writes)
            # Post-op (bias/BN/activation): streams the output once more and
            # touches the hot globals.
            b.op(
                f"{cost.name}.post",
                flops=cost.out_bytes / FP32,
                reads=[out, self.learning_rate],
                writes=[TensorAccess(out, out.nbytes, is_write=True)],
            )
        self._backward.append(
            _BackwardSpec(
                layer=cost,
                weight=weight,
                opt_state=opt_state,
                saved_input=x_in if cost.saves_input else None,
                output=out,
                saved_aux=saved_aux,
            )
        )
        self.activation = out
        return out

    # ----------------------------------------------------- loss + backward

    def finish(self) -> Graph:
        """Emit the loss layer and the mirrored backward pass; seal."""
        if self._loss_emitted:
            raise RuntimeError("finish() called twice")
        self._loss_emitted = True
        b = self.builder

        with b.layer("loss", Phase.FORWARD):
            temps = self._small_temps("loss", 6)
            self._emit_temp_ops("loss", temps)
            loss = b.temp("loss.value", 4)
            grad = b.tensor("loss.grad", self.activation.nbytes, TensorKind.GRADIENT)
            b.op(
                "loss.softmax_xent",
                flops=self.activation.nbytes / FP32 * 8,
                reads=[self.activation, self.loss_scale],
                writes=[loss, grad],
            )

        for spec in reversed(self._backward):
            grad = self._emit_backward_layer(spec, grad)

        return b.finish()

    def _emit_backward_layer(self, spec: _BackwardSpec, grad_in: Tensor) -> Tensor:
        b = self.builder
        cost = spec.layer
        name = f"{cost.name}.bwd"
        with b.layer(name, Phase.BACKWARD):
            temps = self._small_temps(name, max(4, cost.small_temps - 2))
            self._emit_temp_ops(name, temps)

            # dX: produced here, consumed by the *next* backward layer
            # (lifetime two layers — long-lived but barely).
            grad_out = None
            if spec.saved_input is not None:
                grad_out = b.tensor(
                    f"{name}.dx", spec.saved_input.nbytes, TensorKind.GRADIENT
                )
                reads = [
                    TensorAccess(grad_in, grad_in.nbytes, is_write=False, passes=2),
                    TensorAccess(
                        self.workspace, self.workspace.nbytes, is_write=False
                    ),
                ]
                reads.extend(
                    TensorAccess(t, t.nbytes, is_write=False) for t in spec.saved_aux
                )
                if spec.weight is not None:
                    reads.append(
                        TensorAccess(
                            spec.weight,
                            spec.weight.nbytes,
                            is_write=False,
                            passes=cost.weight_passes,
                        )
                    )
                b.op(
                    f"{name}.grad_input",
                    flops=cost.flops,
                    reads=reads,
                    writes=[grad_out],
                )

            if spec.weight is not None:
                dw = b.tensor(f"{name}.dw", spec.weight.nbytes, TensorKind.GRADIENT)
                grad_w_reads = [TensorAccess(grad_in, grad_in.nbytes, is_write=False, passes=2)]
                if spec.saved_input is not None:
                    grad_w_reads.append(
                        TensorAccess(
                            spec.saved_input, spec.saved_input.nbytes, is_write=False
                        )
                    )
                b.op(
                    f"{name}.grad_weight",
                    flops=cost.flops,
                    reads=grad_w_reads,
                    writes=[dw],
                )
                if spec.opt_state is not None:
                    # Optimizer: reads dW and state, updates weights in place.
                    b.op(
                        f"{name}.apply",
                        flops=spec.weight.nbytes / FP32 * 4,
                        reads=[
                            dw,
                            spec.opt_state,
                            self.learning_rate,
                            self.step_counter,
                        ],
                        writes=[spec.weight, spec.opt_state],
                    )
            elif grad_out is None:
                # Pass-through layer with neither weights nor saved input:
                # still consumes the incoming gradient.
                b.op(
                    f"{name}.passthrough",
                    flops=grad_in.nbytes / FP32,
                    reads=[grad_in],
                    writes=[],
                )
        return grad_out if grad_out is not None else grad_in
