"""ResNet builders: CIFAR-style (ResNet-32) and ImageNet-style (ResNet-200).

CIFAR ResNets follow He et al.'s 6n+2 recipe: a 3x3 stem at 32x32x16, three
stages of ``n`` basic blocks at (16, 32x32), (32, 16x16), (64, 8x8), global
pool and a tiny FC.  ImageNet ResNets use bottleneck blocks over four stages
at 56/28/14/7 spatial resolution.  Each residual block is modelled as one
layer (the paper's management granularity), with its convolutions' weights,
its saved input activation, an im2col workspace, and the usual population of
small temporaries.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.dnn.graph import Graph
from repro.models.common import FP32, LayerCost, TrainStepBuilder

#: blocks per stage for the 6n+2 CIFAR family
CIFAR_DEPTHS: Dict[int, int] = {20: 3, 32: 5, 44: 7, 56: 9, 110: 18}

#: blocks per stage for the ImageNet bottleneck family
IMAGENET_DEPTHS: Dict[int, Tuple[int, int, int, int]] = {
    50: (3, 4, 6, 3),
    101: (3, 4, 23, 3),
    152: (3, 8, 36, 3),
    200: (3, 24, 36, 3),
}


def _act_bytes(batch: int, channels: int, spatial: int) -> int:
    return batch * channels * spatial * spatial * FP32


def _conv_flops(batch: int, cin: int, cout: int, k: int, spatial: int) -> float:
    return 2.0 * batch * cin * cout * k * k * spatial * spatial


def build_cifar_resnet(depth: int, batch_size: int) -> Graph:
    """CIFAR-10 ResNet of the given depth (depth = 6n+2)."""
    if depth not in CIFAR_DEPTHS:
        raise ValueError(
            f"unsupported CIFAR ResNet depth {depth}; choose from "
            f"{sorted(CIFAR_DEPTHS)}"
        )
    blocks_per_stage = CIFAR_DEPTHS[depth]
    input_bytes = _act_bytes(batch_size, 3, 32)
    tb = TrainStepBuilder(f"resnet{depth}", batch_size, input_bytes)
    tb.metadata.update(model_family="resnet-cifar", depth=depth)

    # Stem: 3x3 conv, 3 -> 16 channels at 32x32.
    tb.add_layer(
        LayerCost(
            name="stem",
            weight_bytes=3 * 3 * 3 * 16 * FP32,
            out_bytes=_act_bytes(batch_size, 16, 32),
            flops=_conv_flops(batch_size, 3, 16, 3, 32),
            workspace_bytes=_act_bytes(batch_size, 3 * 9, 32) // 4,
            small_temps=14,
            saved_aux=2,
        )
    )

    stages = ((16, 32), (32, 16), (64, 8))
    for stage_index, (channels, spatial) in enumerate(stages):
        for block in range(blocks_per_stage):
            # Basic block: two 3x3 convs, each its own managed layer (the
            # paper's add_layer() granularity — ResNet-32 has ~32 of them).
            cin = channels if not (block == 0 and stage_index > 0) else channels // 2
            for conv in (1, 2):
                conv_cin = cin if conv == 1 else channels
                weight_bytes = 3 * 3 * conv_cin * channels * FP32
                if conv == 1 and cin != channels:
                    weight_bytes += cin * channels * FP32  # 1x1 projection
                tb.add_layer(
                    LayerCost(
                        name=f"s{stage_index + 1}b{block + 1}c{conv}",
                        weight_bytes=weight_bytes,
                        out_bytes=_act_bytes(batch_size, channels, spatial),
                        flops=_conv_flops(batch_size, conv_cin, channels, 3, spatial),
                        workspace_bytes=_act_bytes(batch_size, conv_cin * 9, spatial)
                        // 16,
                        small_temps=12,
                        saved_aux=2,
                    )
                )

    # Global average pool + FC head.
    tb.add_layer(
        LayerCost(
            name="head",
            weight_bytes=64 * 10 * FP32,
            out_bytes=batch_size * 10 * FP32,
            flops=2.0 * batch_size * 64 * 10,
            small_temps=8,
        )
    )
    return tb.finish()


def build_imagenet_resnet(depth: int, batch_size: int) -> Graph:
    """ImageNet bottleneck ResNet (50/101/152/200 layers)."""
    if depth not in IMAGENET_DEPTHS:
        raise ValueError(
            f"unsupported ImageNet ResNet depth {depth}; choose from "
            f"{sorted(IMAGENET_DEPTHS)}"
        )
    stage_blocks = IMAGENET_DEPTHS[depth]
    input_bytes = _act_bytes(batch_size, 3, 224)
    tb = TrainStepBuilder(f"resnet{depth}", batch_size, input_bytes)
    tb.metadata.update(model_family="resnet-imagenet", depth=depth)

    # Stem: 7x7/2 conv to 64 channels at 112x112, then 3x3/2 max pool.
    tb.add_layer(
        LayerCost(
            name="stem",
            weight_bytes=7 * 7 * 3 * 64 * FP32,
            out_bytes=_act_bytes(batch_size, 64, 112),
            flops=_conv_flops(batch_size, 3, 64, 7, 112),
            workspace_bytes=_act_bytes(batch_size, 3 * 49, 112) // 4,
            small_temps=10,
            saved_aux=2,
        )
    )
    tb.add_layer(
        LayerCost(
            name="maxpool",
            weight_bytes=0,
            out_bytes=_act_bytes(batch_size, 64, 56),
            flops=9.0 * batch_size * 64 * 56 * 56,
            small_temps=6,
        )
    )

    widths = (64, 128, 256, 512)
    spatials = (56, 28, 14, 7)
    for stage_index, (width, spatial, blocks) in enumerate(
        zip(widths, spatials, stage_blocks)
    ):
        out_channels = width * 4
        for block in range(blocks):
            if block == 0:
                cin = 64 if stage_index == 0 else widths[stage_index - 1] * 4
            else:
                cin = out_channels
            # Bottleneck: 1x1 (cin->w), 3x3 (w->w), 1x1 (w->4w).
            weight_bytes = (
                cin * width + 3 * 3 * width * width + width * out_channels
            ) * FP32
            if block == 0:
                weight_bytes += cin * out_channels * FP32  # projection
            flops = (
                _conv_flops(batch_size, cin, width, 1, spatial)
                + _conv_flops(batch_size, width, width, 3, spatial)
                + _conv_flops(batch_size, width, out_channels, 1, spatial)
            )
            tb.add_layer(
                LayerCost(
                    name=f"s{stage_index + 1}b{block + 1}",
                    weight_bytes=weight_bytes,
                    out_bytes=_act_bytes(batch_size, out_channels, spatial),
                    flops=flops,
                    workspace_bytes=_act_bytes(batch_size, width * 9, spatial) // 16,
                    small_temps=14,
                    saved_aux=5,
                )
            )

    tb.add_layer(
        LayerCost(
            name="head",
            weight_bytes=2048 * 1000 * FP32,
            out_bytes=batch_size * 1000 * FP32,
            flops=2.0 * batch_size * 2048 * 1000,
            small_temps=8,
        )
    )
    return tb.finish()


def build_resnet(depth: int, batch_size: int) -> Graph:
    """Dispatch to the CIFAR or ImageNet family by depth."""
    if depth in CIFAR_DEPTHS:
        return build_cifar_resnet(depth, batch_size)
    if depth in IMAGENET_DEPTHS:
        return build_imagenet_resnet(depth, batch_size)
    raise ValueError(f"no ResNet recipe for depth {depth}")
