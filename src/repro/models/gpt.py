"""GPT-style decoder builder.

The paper's introduction motivates heterogeneous memory with
hundred-billion-parameter language models; this builder provides a
decoder-only transformer whose memory profile is *weight-dominated* —
unlike every other zoo model, the per-layer parameter blocks (attention +
MLP, tied across nothing) outweigh the activations at small batch sizes.
That stresses a different corner of the runtime: the hot set is large,
periodic, and preallocated, so Sentinel's migration must cycle weights
through fast memory rather than activations.
"""

from __future__ import annotations

from repro.dnn.graph import Graph
from repro.models.common import FP32, LayerCost, TrainStepBuilder

GPT_CONFIGS = {
    "gpt-small": dict(layers=12, hidden=768, heads=12, seq=256),
    "gpt-medium": dict(layers=24, hidden=1024, heads=16, seq=512),
}


def build_gpt(variant: str, batch_size: int) -> Graph:
    """A GPT training step for ``variant`` in :data:`GPT_CONFIGS`."""
    try:
        config = GPT_CONFIGS[variant]
    except KeyError:
        raise ValueError(
            f"unknown GPT variant {variant!r}; choose from {sorted(GPT_CONFIGS)}"
        ) from None
    layers = config["layers"]
    hidden = config["hidden"]
    heads = config["heads"]
    seq = config["seq"]

    token_bytes = batch_size * seq * hidden * FP32
    # Causal attention: the score matrix is ~half of BERT's at equal seq.
    attn_matrix_bytes = batch_size * heads * seq * seq * FP32 // 2
    vocab = 50257

    tb = TrainStepBuilder(variant, batch_size, batch_size * seq * 8)
    tb.metadata.update(
        model_family="gpt", layers=layers, hidden=hidden, seq=seq, recurrent=False
    )

    tb.add_layer(
        LayerCost(
            name="embed",
            weight_bytes=vocab * hidden * FP32,
            out_bytes=token_bytes,
            flops=2.0 * batch_size * seq * hidden,
            small_temps=8,
            saved_aux=1,
        )
    )

    for index in range(layers):
        tb.add_layer(
            LayerCost(
                name=f"blk{index}.attn",
                weight_bytes=4 * hidden * hidden * FP32,
                out_bytes=token_bytes + attn_matrix_bytes,
                flops=(
                    4 * 2.0 * batch_size * seq * hidden * hidden
                    + 2 * 2.0 * batch_size * heads * seq * seq * (hidden // heads) / 2
                ),
                workspace_bytes=3 * token_bytes,
                small_temps=12,
                saved_aux=2,
            )
        )
        tb.add_layer(
            LayerCost(
                name=f"blk{index}.mlp",
                weight_bytes=2 * hidden * 4 * hidden * FP32,
                out_bytes=token_bytes,
                flops=2 * 2.0 * batch_size * seq * hidden * 4 * hidden,
                workspace_bytes=batch_size * seq * 4 * hidden * FP32,
                small_temps=10,
                saved_aux=2,
            )
        )

    # The LM head projects to the (huge) vocabulary; its logits dominate
    # short-sequence activations.
    tb.add_layer(
        LayerCost(
            name="lm_head",
            weight_bytes=hidden * vocab * FP32,
            out_bytes=batch_size * seq * vocab * FP32 // 16,  # chunked logits
            flops=2.0 * batch_size * seq * hidden * vocab,
            small_temps=8,
        )
    )
    return tb.finish()
