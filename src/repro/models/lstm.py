"""LSTM language-model builder.

The distinctive property for memory management is *recurrence*: one
timestep is one managed layer, every timestep reuses the same gate weights
(so the weights accumulate one main-memory pass per timestep — they are the
hot tensors of Observation 2), and every timestep's hidden/cell states are
saved until its backward (BPTT) layer runs.  The recursive structure is
recorded in ``graph.metadata["recurrent"]`` because vDNN's conv-only
strategy cannot handle it (paper Table V: vDNN fails on LSTM and BERT).
"""

from __future__ import annotations

from repro.dnn.graph import Graph
from repro.models.common import FP32, LayerCost, TrainStepBuilder

LSTM_CONFIGS = {
    "lstm": dict(layers=2, hidden=1024, seq=50, vocab=10000),
}


def build_lstm(
    batch_size: int,
    layers: int = 2,
    hidden: int = 1024,
    seq: int = 50,
    vocab: int = 10000,
) -> Graph:
    """A ``seq``-step truncated-BPTT training step of a stacked LSTM."""
    if seq < 2:
        raise ValueError(f"need at least 2 timesteps, got {seq!r}")
    input_bytes = batch_size * seq * 8  # token ids
    tb = TrainStepBuilder("lstm", batch_size, input_bytes)
    tb.metadata.update(
        model_family="lstm", layers=layers, hidden=hidden, seq=seq, recurrent=True
    )

    # 4 gates, input and recurrent weights, for each stacked layer — one
    # managed weight blob shared by every timestep layer.  Its per-step
    # access count is therefore ~2*seq (forward + backward timesteps): the
    # >100-access hot set of Observation 2.
    gate_weight_bytes = layers * 4 * (2 * hidden) * hidden * FP32
    state_bytes = batch_size * layers * hidden * FP32
    gate_flops = layers * 2.0 * batch_size * 4 * (2 * hidden) * hidden
    gate_weights = tb.builder.weight("cell.w", gate_weight_bytes)
    gate_opt = tb.builder.weight("cell.opt", gate_weight_bytes)

    tb.add_layer(
        LayerCost(
            name="embed",
            weight_bytes=vocab * hidden * FP32,
            out_bytes=batch_size * seq * hidden * FP32,
            flops=2.0 * batch_size * seq * hidden,
            small_temps=8,
        )
    )

    for t in range(seq):
        # One timestep across the whole stack.  Only the first timestep owns
        # the optimizer state, so the update is applied exactly once per
        # step (accumulate-then-apply BPTT); every other timestep still
        # reads the weights and produces a gradient against them.
        tb.add_layer(
            LayerCost(
                name=f"step{t}",
                weight_bytes=gate_weight_bytes,
                out_bytes=state_bytes,
                flops=gate_flops,
                workspace_bytes=batch_size * layers * 4 * hidden * FP32,
                small_temps=12,
                saved_aux=2,
            ),
            shared_weight=gate_weights,
            shared_opt=gate_opt if t == 0 else None,
        )

    tb.add_layer(
        LayerCost(
            name="proj",
            weight_bytes=hidden * vocab * FP32,
            out_bytes=batch_size * vocab * FP32,
            flops=2.0 * batch_size * hidden * vocab,
            small_temps=8,
        )
    )

    graph = tb.finish()
    return graph
