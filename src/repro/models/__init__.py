"""Synthetic model zoo.

Builders for the five DNN families the paper evaluates (Table III):
ResNet (CIFAR-style ResNet-32 and ImageNet-style ResNet-50/101/152/200),
BERT (base/large), a 2-layer LSTM language model, MobileNet-v1, and DCGAN —
plus a GPT-style decoder (weight-dominated, the regime the paper's intro
motivates) and a seeded synthetic generator for property testing.

Each builder produces a :class:`repro.dnn.Graph` for one training step whose
tensor population reproduces the paper's characterization: many small
short-lived temporaries per layer (Observation 1), a small set of very hot
tensors against a long tail of cold ones (Observation 2), and interleaved
long/short-lived allocations that create page-level false sharing under
packed allocation (Observation 3).
"""

from repro.models.common import TrainStepBuilder, LayerCost
from repro.models.zoo import MODELS, ModelSpec, build_model

__all__ = [
    "TrainStepBuilder",
    "LayerCost",
    "MODELS",
    "ModelSpec",
    "build_model",
]
