"""DCGAN builder.

One GAN training step runs two networks: the generator (transposed
convolutions from a latent vector up to a 64x64 image) and the
discriminator (strided convolutions back down to a score).  For memory
management the salient structure is that the generator's activations stay
live across the *discriminator's* forward and backward passes — longer
lifetimes than a feedforward classifier — before the generator's own
backward consumes them.
"""

from __future__ import annotations

from repro.dnn.graph import Graph
from repro.models.common import FP32, LayerCost, TrainStepBuilder


def build_dcgan(batch_size: int, latent_dim: int = 100, base_channels: int = 128) -> Graph:
    """A DCGAN training step (generator + discriminator) at 64x64x3."""
    if base_channels <= 0:
        raise ValueError(f"base channels must be positive, got {base_channels!r}")
    input_bytes = batch_size * latent_dim * FP32
    tb = TrainStepBuilder("dcgan", batch_size, input_bytes)
    tb.metadata.update(model_family="dcgan", latent_dim=latent_dim)

    # Generator: latent -> 4x4x8c -> 8x8x4c -> 16x16x2c -> 32x32xc -> 64x64x3.
    gen_plan = (
        (base_channels * 8, 4),
        (base_channels * 4, 8),
        (base_channels * 2, 16),
        (base_channels, 32),
        (3, 64),
    )
    cin = latent_dim
    for index, (cout, spatial) in enumerate(gen_plan):
        weight_bytes = 4 * 4 * cin * cout * FP32
        act_bytes = batch_size * cout * spatial * spatial * FP32
        tb.add_layer(
            LayerCost(
                name=f"gen{index + 1}",
                weight_bytes=weight_bytes,
                out_bytes=act_bytes,
                flops=2.0 * batch_size * 16 * cin * cout * spatial * spatial,
                workspace_bytes=act_bytes // 4,
                small_temps=12,
                saved_aux=3,
            )
        )
        cin = cout

    # Discriminator: one step scores both the generated batch and a real
    # batch with the same weights (two passes, as in GAN training).
    disc_plan = (
        (base_channels, 32),
        (base_channels * 2, 16),
        (base_channels * 4, 8),
        (base_channels * 8, 4),
    )
    real_batch = tb.builder.input("real.batch", batch_size * 3 * 64 * 64 * FP32)
    disc_weights = []
    disc_cin = cin
    for index, (cout, spatial) in enumerate(disc_plan):
        disc_weights.append(
            (
                tb.builder.weight(f"disc{index + 1}.w", 4 * 4 * disc_cin * cout * FP32),
                tb.builder.weight(
                    f"disc{index + 1}.opt", 4 * 4 * disc_cin * cout * FP32
                ),
            )
        )
        disc_cin = cout
    for pass_name, pass_input, owns_opt in (("fake", None, True), ("real", real_batch, False)):
        pass_cin = cin
        current = pass_input
        for index, (cout, spatial) in enumerate(disc_plan):
            weight, opt = disc_weights[index]
            act_bytes = batch_size * cout * spatial * spatial * FP32
            current = tb.add_layer(
                LayerCost(
                    name=f"disc{index + 1}.{pass_name}",
                    weight_bytes=weight.nbytes,
                    out_bytes=act_bytes,
                    flops=2.0 * batch_size * 16 * pass_cin * cout * spatial * spatial,
                    workspace_bytes=act_bytes // 4,
                    small_temps=12,
                    saved_aux=3,
                ),
                input_tensor=current,
                shared_weight=weight,
                shared_opt=opt if owns_opt else None,
            )
            pass_cin = cout
    cin = disc_cin

    tb.add_layer(
        LayerCost(
            name="disc_head",
            weight_bytes=cin * 4 * 4 * FP32,
            out_bytes=batch_size * FP32,
            flops=2.0 * batch_size * cin * 16,
            small_temps=8,
        )
    )
    return tb.finish()
