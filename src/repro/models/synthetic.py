"""Seeded random workload generator.

Property tests need training-step graphs the implementation was never tuned
on: random layer counts, tensor sizes spanning bytes to hundreds of MB,
random lifetime structure (how many layers an intermediate survives), and
random compute/memory balance.  :func:`random_graph` produces such graphs
deterministically from a seed, always structurally valid (the builder
enforces the same invariants as the model zoo), so the executor, profiler,
and every policy can be fuzzed against workloads with no hand-picked
structure.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.dnn.graph import Graph, GraphBuilder, Phase
from repro.dnn.ops import TensorAccess
from repro.dnn.tensor import TensorKind


def random_graph(
    seed: int,
    min_layers: int = 2,
    max_layers: int = 24,
    max_tensor_bytes: int = 64 * 1024 * 1024,
    batch_size: Optional[int] = None,
) -> Graph:
    """A random—but valid—training-step graph.

    Structure: a forward chain of layers, each producing an activation
    consumed by the next and optionally saving intermediates with random
    lifetimes, followed by a mirrored backward chain.  Sizes are
    log-uniform so tiny metadata tensors and large activations both occur.
    """
    rng = random.Random(seed)
    num_forward = rng.randint(min_layers, max_layers)
    batch = batch_size if batch_size is not None else rng.choice((1, 4, 16, 64))

    def log_uniform(low: int, high: int) -> int:
        import math

        return int(math.exp(rng.uniform(math.log(low), math.log(high))))

    b = GraphBuilder(f"synthetic-{seed}", batch_size=batch)
    hot = b.global_tensor("hot", log_uniform(8, 4096))
    x = b.input("input", log_uniform(1024, max_tensor_bytes))
    activation = x

    saved = []  # (tensor, produced_layer) for the backward chain
    weights = []
    for index in range(num_forward):
        weight = None
        if rng.random() < 0.8:
            weight = b.weight(f"w{index}", log_uniform(64, max_tensor_bytes // 4))
            weights.append(weight)
        with b.layer(f"fwd{index}"):
            out = b.tensor(f"act{index}", log_uniform(256, max_tensor_bytes))
            reads = [activation, hot]
            if weight is not None:
                reads.append(
                    TensorAccess(
                        weight, weight.nbytes, is_write=False, passes=rng.randint(1, 3)
                    )
                )
            writes = [out]
            for t in range(rng.randint(0, 6)):
                temp = b.temp(f"tmp{index}_{t}", log_uniform(8, 8192))
                writes.append(temp)
            b.op(
                f"main{index}",
                flops=rng.uniform(1e5, 1e10),
                reads=reads,
                writes=writes,
            )
            if rng.random() < 0.5:
                extra = b.tensor(f"save{index}", log_uniform(256, max_tensor_bytes // 2))
                b.op(f"save{index}", flops=1e4, reads=[out], writes=[extra])
                saved.append((extra, index))
        activation = out
        saved.append((out, index))

    with b.layer("loss"):
        grad = b.tensor("loss.grad", activation.nbytes, TensorKind.GRADIENT)
        b.op("loss", flops=1e5, reads=[activation, hot], writes=[grad])

    for index in reversed(range(num_forward)):
        with b.layer(f"bwd{index}", Phase.BACKWARD):
            consumed = [t for t, produced in saved if produced == index]
            reads = [grad, hot] + consumed
            new_grad = b.tensor(f"grad{index}", log_uniform(256, max_tensor_bytes), TensorKind.GRADIENT)
            writes = [new_grad]
            for t in range(rng.randint(0, 4)):
                temp = b.temp(f"btmp{index}_{t}", log_uniform(8, 4096))
                writes.append(temp)
            b.op(f"bmain{index}", flops=rng.uniform(1e5, 1e10), reads=reads, writes=writes)
            if index < len(weights) and rng.random() < 0.7:
                weight = weights[min(index, len(weights) - 1)]
                b.op(
                    f"apply{index}",
                    flops=weight.nbytes,
                    reads=[new_grad],
                    writes=[weight],
                )
        grad = new_grad

    return b.finish()
