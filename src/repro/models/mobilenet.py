"""MobileNet-v1 builder.

MobileNet's memory profile is the opposite of ResNet's: tiny weights
(depthwise-separable convolutions) against large early activations at
224x224 input, so its footprint is activation-dominated — which is why the
paper's large-batch MobileNet run stresses fast memory despite the small
model.  Each depthwise+pointwise pair is one managed layer.
"""

from __future__ import annotations

from repro.dnn.graph import Graph
from repro.models.common import FP32, LayerCost, TrainStepBuilder

#: (channels_out, stride) per depthwise-separable pair, after the stem.
MOBILENET_V1_PAIRS = (
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
)


def build_mobilenet(batch_size: int, width_mult: float = 1.0) -> Graph:
    """A MobileNet-v1 training step at 224x224 input."""
    if width_mult <= 0:
        raise ValueError(f"width multiplier must be positive, got {width_mult!r}")

    def ch(base: int) -> int:
        return max(8, int(base * width_mult))

    input_bytes = batch_size * 3 * 224 * 224 * FP32
    tb = TrainStepBuilder("mobilenet", batch_size, input_bytes)
    tb.metadata.update(model_family="mobilenet", width_mult=width_mult)

    spatial = 112
    cin = ch(32)
    tb.add_layer(
        LayerCost(
            name="stem",
            weight_bytes=3 * 3 * 3 * cin * FP32,
            out_bytes=batch_size * cin * spatial * spatial * FP32,
            flops=2.0 * batch_size * 3 * cin * 9 * spatial * spatial,
            workspace_bytes=batch_size * 27 * spatial * spatial * FP32 // 4,
            small_temps=10,
            saved_aux=2,
        )
    )

    for index, (cout_base, stride) in enumerate(MOBILENET_V1_PAIRS):
        cout = ch(cout_base)
        if stride == 2:
            spatial //= 2
        dw_bytes = batch_size * cin * spatial * spatial * FP32
        pw_bytes = batch_size * cout * spatial * spatial * FP32
        # Depthwise 3x3 and pointwise 1x1 are separate managed layers, as
        # they are separate ops (and add_layer() calls) in the framework.
        tb.add_layer(
            LayerCost(
                name=f"dw{index + 1}",
                weight_bytes=3 * 3 * cin * FP32,
                out_bytes=dw_bytes,
                flops=2.0 * batch_size * spatial * spatial * 9 * cin,
                workspace_bytes=dw_bytes // 4,
                small_temps=10,
                saved_aux=2,
            )
        )
        tb.add_layer(
            LayerCost(
                name=f"pw{index + 1}",
                weight_bytes=cin * cout * FP32,
                out_bytes=pw_bytes,
                flops=2.0 * batch_size * spatial * spatial * cin * cout,
                workspace_bytes=pw_bytes // 4,
                small_temps=10,
                saved_aux=2,
            )
        )
        cin = cout

    tb.add_layer(
        LayerCost(
            name="head",
            weight_bytes=cin * 1000 * FP32,
            out_bytes=batch_size * 1000 * FP32,
            flops=2.0 * batch_size * cin * 1000,
            small_temps=8,
        )
    )
    return tb.finish()
