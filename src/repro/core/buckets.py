"""Dynamic graphs and control dependencies (paper §IV-E).

Frameworks with dynamic shapes generate a different dataflow graph per
input size.  Sentinel's answer is *bucketed profiling*: input sizes are
grouped into at most :data:`MAX_BUCKETS` buckets, each bucket's graph is
profiled once, and training steps are dispatched to their bucket's managed
runtime.  Control flow inside a static graph is handled the same way — the
runtime fingerprints the dataflow (:meth:`repro.dnn.graph.Graph.signature`)
and triggers a fresh profile whenever an unseen signature appears.

:class:`BucketedSentinel` orchestrates per-bucket executors over a shared
machine.  Each bucket pays Sentinel's usual warm-up + profiling steps the
first time it runs; afterwards its steps are fully managed.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.runtime import SentinelConfig, SentinelPolicy
from repro.dnn.executor import Executor, StepResult
from repro.dnn.graph import Graph
from repro.mem.machine import Machine
from repro.mem.platforms import Platform

#: The paper bucketizes input sizes into "a small number of buckets
#: (at most 10)".
MAX_BUCKETS = 10


def bucketize(sizes: Sequence[int], max_buckets: int = MAX_BUCKETS) -> List[int]:
    """Choose bucket boundaries (upper bounds) for observed input sizes.

    Quantile-spaced over the distinct sizes, so skewed distributions still
    get resolution where the mass is.  Returns sorted, distinct bounds; an
    input is served by the smallest bucket whose bound covers it.
    """
    if not sizes:
        raise ValueError("need at least one observed input size")
    if max_buckets <= 0:
        raise ValueError(f"need at least one bucket, got {max_buckets!r}")
    distinct = sorted(set(sizes))
    if len(distinct) <= max_buckets:
        return distinct
    bounds = []
    for index in range(1, max_buckets + 1):
        position = round(index * (len(distinct) - 1) / max_buckets)
        bounds.append(distinct[position])
    return sorted(set(bounds))


@dataclass
class _Bucket:
    """One bucket's graph, runtime, and bookkeeping."""

    bound: int
    graph: Graph
    policy: SentinelPolicy
    executor: Executor
    steps_run: int = 0


class BucketedSentinel:
    """Sentinel across dynamic input sizes, one managed runtime per bucket.

    Args:
        platform: the heterogeneous-memory machine description.
        builder: ``builder(input_size) -> Graph`` for a bucket's padded size.
        bucket_bounds: bucket upper bounds (see :func:`bucketize`).
        fast_capacity: fast-tier size shared by all buckets.
        config: Sentinel configuration applied to every bucket.

    Each bucket owns an executor bound to the shared machine's platform; a
    fresh machine instance per bucket keeps capacity accounting exact for
    the bucket's steps (the paper's runtime similarly re-plans per graph).
    """

    def __init__(
        self,
        platform: Platform,
        builder: Callable[[int], Graph],
        bucket_bounds: Sequence[int],
        fast_capacity: Optional[int] = None,
        config: Optional[SentinelConfig] = None,
    ) -> None:
        if not bucket_bounds:
            raise ValueError("need at least one bucket bound")
        if len(bucket_bounds) > MAX_BUCKETS:
            raise ValueError(
                f"at most {MAX_BUCKETS} buckets (paper §IV-E); got "
                f"{len(bucket_bounds)}"
            )
        self.platform = platform
        self.builder = builder
        self.fast_capacity = fast_capacity
        self.config = config if config is not None else SentinelConfig()
        self._bounds = sorted(set(int(b) for b in bucket_bounds))
        self._buckets: Dict[int, _Bucket] = {}
        #: graph signatures that have been profiled (control-flow tracking)
        self._known_signatures: Dict[Tuple, int] = {}
        self.reprofiles = 0

    # ------------------------------------------------------------- dispatch

    @property
    def bounds(self) -> List[int]:
        return list(self._bounds)

    def bucket_for(self, input_size: int) -> int:
        """Bound of the bucket serving ``input_size`` (inputs are padded up)."""
        if input_size <= 0:
            raise ValueError(f"input size must be positive, got {input_size!r}")
        index = bisect.bisect_left(self._bounds, input_size)
        if index == len(self._bounds):
            raise ValueError(
                f"input size {input_size} exceeds the largest bucket "
                f"({self._bounds[-1]}); re-bucketize with the new size"
            )
        return self._bounds[index]

    def _materialize(self, bound: int) -> _Bucket:
        bucket = self._buckets.get(bound)
        if bucket is not None:
            return bucket
        graph = self.builder(bound)
        machine = Machine.for_platform(self.platform, fast_capacity=self.fast_capacity)
        policy = SentinelPolicy(
            SentinelConfig(**{**self.config.__dict__})
        )
        executor = Executor(graph, machine, policy)
        bucket = _Bucket(bound=bound, graph=graph, policy=policy, executor=executor)
        self._buckets[bound] = bucket
        signature = graph.signature()
        if signature not in self._known_signatures:
            self._known_signatures[signature] = bound
            self.reprofiles += 1
        return bucket

    # ------------------------------------------------------------ execution

    def run_step(self, input_size: int) -> StepResult:
        """Run one training step for an input of ``input_size``."""
        bucket = self._materialize(self.bucket_for(input_size))
        bucket.steps_run += 1
        return bucket.executor.run_step()

    def run_graph(self, graph: Graph) -> StepResult:
        """Run a step of an externally-built graph (control-flow variants).

        An unseen dataflow signature triggers profiling for that variant
        (the §IV-E rule: "whenever a new dataflow is encountered, Sentinel
        triggers profiling and makes migration decisions again").
        """
        signature = graph.signature()
        bound = self._known_signatures.get(signature)
        if bound is None:
            bound = -len(self._known_signatures) - 1  # synthetic key
            machine = Machine.for_platform(
                self.platform, fast_capacity=self.fast_capacity
            )
            policy = SentinelPolicy(SentinelConfig(**{**self.config.__dict__}))
            executor = Executor(graph, machine, policy)
            self._buckets[bound] = _Bucket(
                bound=bound, graph=graph, policy=policy, executor=executor
            )
            self._known_signatures[signature] = bound
            self.reprofiles += 1
        bucket = self._buckets[bound]
        bucket.steps_run += 1
        return bucket.executor.run_step()

    # ---------------------------------------------------------------- stats

    @property
    def profiled_buckets(self) -> int:
        """Buckets (or control-flow variants) that have a runtime."""
        return len(self._buckets)

    def overhead_steps(self) -> float:
        """Total profiling + trial steps across all buckets — the quantity
        the paper amortizes over millions of training steps."""
        return sum(b.policy.overhead_steps for b in self._buckets.values())
