"""The Sentinel runtime policy (paper §IV, §VI).

Lifecycle across training steps, exactly as implemented in the paper:

1. **Warm-up** — the first ``warmup_steps`` (10) steps run untouched:
   TensorFlow-default packed allocation, everything on slow memory.
2. **Profiling** — step 11 runs with page-aligned allocation and poisoned
   PTEs; the embedded :class:`~repro.core.profiler.ProfileCollector`
   attributes every main-memory access to a tensor and a layer.
3. **Managed** — from step 12 on:

   * allocation is *reorganized*: short-lived tensors co-allocate per
     layer, long-lived tensors co-allocate per exact lifetime, preallocated
     tensors never share pages (§IV-B);
   * short-lived tensors are placed in a reserved fast-memory pool and
     never migrate (§IV-C);
   * long-lived tensors are prefetched one migration interval ahead in
     descending access-count order, and eagerly demoted mid-interval once
     the remaining layers no longer need them (§IV-D);
   * the interval length comes from the Eq. 1/Eq. 2 performance model, and
     Case 3 (migration not done when the interval starts) is resolved by
     the paper's test-and-trial: one step waiting, one step leaving the
     tensors in slow memory, keep the faster choice.

Every mechanism can be disabled independently through
:class:`SentinelConfig`, which is how the Figure 13 ablation
("direct migration" / "+ determined MI" / "all") is produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro import accel
from repro.core.interval import IntervalPlan, choose_interval_length, evaluate_interval_length
from repro.core.profile import Profile
from repro.core.profiler import ProfileCollector
from repro.dnn.alloc import Allocator, GroupedAllocator, TensorMapping
from repro.dnn.graph import Graph, Layer
from repro.dnn.policy import PlacementPolicy, fits_fast
from repro.dnn.tensor import Tensor
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.page import PageTableEntry
from repro.sim.channel import Transfer

#: Policy lifecycle modes.
WARMUP = "warmup"
PROFILING = "profiling"
MANAGED = "managed"


@dataclass
class SentinelConfig:
    """Feature switches and tunables for the Sentinel policy.

    The defaults are full Sentinel; the Figure 13 ablations are:

    * direct migration — ``interval_opt=False, reserve_short=False,
      co_allocate=False``
    * "w/ det. MI"    — ``interval_opt=True, reserve_short=False,
      co_allocate=False``
    * "w/ all"        — the defaults
    """

    warmup_steps: int = 10
    co_allocate: bool = True
    reserve_short: bool = True
    interval_opt: bool = True
    #: pin the interval length (Figure 5 sweeps); overrides the optimizer
    fixed_interval_length: Optional[int] = None
    #: CPU Case-3 handling; GPU forces waiting regardless
    test_and_trial: bool = True
    max_interval_length: Optional[int] = None
    #: Case-3 patience budget (seconds of simulated time): if finishing the
    #: pending prefetch would stall longer than this, the runtime falls back
    #: to running the interval against the slow copies instead of waiting.
    #: ``None`` (default) keeps the paper's behaviour of unbounded waits.
    case3_wait_deadline: Optional[float] = None
    #: Bounded re-profiling: if the profiling step lost more than
    #: ``reprofile_loss_threshold`` of its fault samples (injected handler
    #: overflow), spend up to this many extra steps re-profiling before
    #: accepting the lossy profile as-is.
    max_reprofile_steps: int = 1
    reprofile_loss_threshold: float = 0.02

    def __post_init__(self) -> None:
        if self.warmup_steps < 0:
            raise ValueError(f"warmup steps must be >= 0: {self.warmup_steps!r}")
        if self.fixed_interval_length is not None and self.fixed_interval_length <= 0:
            raise ValueError(
                f"fixed interval length must be positive: "
                f"{self.fixed_interval_length!r}"
            )
        if self.case3_wait_deadline is not None and self.case3_wait_deadline <= 0:
            raise ValueError(
                f"case3 wait deadline must be positive: "
                f"{self.case3_wait_deadline!r}"
            )
        if self.max_reprofile_steps < 0:
            raise ValueError(
                f"max reprofile steps must be >= 0: {self.max_reprofile_steps!r}"
            )
        if not 0.0 <= self.reprofile_loss_threshold <= 1.0:
            raise ValueError(
                f"reprofile loss threshold must be in [0, 1]: "
                f"{self.reprofile_loss_threshold!r}"
            )


@dataclass
class _Case3State:
    """Test-and-trial bookkeeping for one interval index (§IV-D)."""

    status: str = "trial_wait"  # trial_wait -> trial_leave -> decided
    choice: str = "wait"
    wait_step: Optional[int] = None
    leave_step: Optional[int] = None
    wait_duration: Optional[float] = None
    leave_duration: Optional[float] = None


class SentinelPolicy(PlacementPolicy):
    """Sentinel on CPU-style heterogeneous memory (DRAM + Optane)."""

    name = "sentinel"
    requires_residency: Optional[bool] = False

    def __init__(self, config: Optional[SentinelConfig] = None) -> None:
        super().__init__()
        self.config = config if config is not None else SentinelConfig()
        self.mode = WARMUP
        self.profile: Optional[Profile] = None
        self.plan: Optional[IntervalPlan] = None
        self.allocator: Optional[Allocator] = None
        self._collector: Optional[ProfileCollector] = None
        self._mappings: Dict[int, TensorMapping] = {}
        self._current_layer = 0
        self._step = -1
        self._step_start = 0.0
        self._step_durations: Dict[int, float] = {}
        self._short_fast_bytes = 0
        self._alloc_demand = 0
        self._alloc_demand_by_layer: List[int] = []
        self._prefetch: Dict[int, List[Transfer]] = {}
        self._pending_prefetch: Dict[int, List[PageTableEntry]] = {}
        self._skip_prefetch: Set[int] = set()
        self._case3: Dict[int, _Case3State] = {}
        self._trial_active: Optional[int] = None
        #: overhead accounting for Table III
        self.profiling_steps_used = 0
        self.trial_steps_used = 0
        self.case2_occurrences = 0
        self.case3_occurrences = 0
        #: degradation accounting (fault-injection experiments)
        self.reprofile_steps_used = 0
        self.case3_fallbacks = 0
        self._profile_fault_base = (0, 0)
        #: event-driven prefetch bookkeeping, fed by TRANSFER_DONE
        #: subscriptions when an engine drives the run (Table III
        #: cross-check: landed == issued - aborted for fault-free runs)
        self.prefetch_landed_bytes = 0
        self.prefetch_landed_transfers = 0
        #: vectorized-path cache: per-interval prefetch candidate tids in
        #: hotness order, a pure function of (profile, plan) — see
        #: :meth:`_interval_candidates`
        self._interval_candidate_tids: Optional[List[Tuple[int, ...]]] = None
        #: vectorized-path cache: per-layer eviction candidates with their
        #: sort keys, a pure function of (profile, plan, config) — see
        #: :meth:`_evict_candidates`
        self._evict_candidates_by_layer: Dict[int, Tuple[Tuple[int, int], ...]] = {}

    def on_engine(self, engine) -> None:
        """Subscribe prefetch bookkeeping to channel-completion events.

        Counts the bytes of every prefetch-tagged transfer at the instant
        its last byte lands.  Pure internal accounting — no trace or
        metrics emission — so engine-driven runs keep the golden digests.
        """
        from repro.sim.engine import EventKind

        def on_done(event) -> None:
            transfer = event.payload.get("transfer")
            if transfer is None or transfer.aborted:
                return
            if transfer.tag == "prefetch":
                self.prefetch_landed_bytes += transfer.nbytes
                self.prefetch_landed_transfers += 1

        engine.subscribe(EventKind.TRANSFER_DONE, on_done)

    @property
    def _tracer(self):
        """The machine's event tracer, or ``None`` when tracing is off."""
        machine = self.machine
        return machine.tracer if machine is not None else None

    @property
    def _metrics(self):
        """The machine's detailed metrics registry, or ``None`` when off."""
        machine = self.machine
        return machine.metrics if machine is not None else None

    # ----------------------------------------------------------- allocation

    def make_allocator(self) -> Allocator:
        assert self.machine is not None
        self.allocator = GroupedAllocator(self.machine, self.place, self._group_of)
        return self.allocator

    def _group_of(self, tensor: Tensor):
        """Sentinel's co-allocation rules (paper §IV-B).

        Preallocated tensors never share pages in any phase; during
        profiling nothing shares (tensor-level counting); once managed,
        short-lived tensors share per layer and long-lived tensors share
        per exact lifetime; long and short never mix.
        """
        if tensor.preallocated:
            return None
        if self.mode == PROFILING:
            return None
        if self.mode == WARMUP or not self.config.co_allocate:
            return "arena"
        if tensor.short_lived:
            return ("short", tensor.alloc_layer)
        return ("long", tensor.alloc_layer, tensor.free_layer)

    def place(self, tensor: Tensor, now: float) -> DeviceKind:
        """Placement of fresh runs; slow until managed, then §IV-C/D rules."""
        machine = self.machine
        assert machine is not None
        if self.mode != MANAGED:
            return DeviceKind.SLOW
        if tensor.short_lived:
            if self.config.reserve_short:
                # The reservation guarantees room (RS >= the pool's peak);
                # falling through to slow would mean a misconfigured machine
                # below the paper's lower bound on fast memory.
                if fits_fast(machine, tensor.nbytes):
                    return DeviceKind.FAST
                return DeviceKind.SLOW
            return (
                DeviceKind.FAST
                if fits_fast(machine, tensor.nbytes)
                else DeviceKind.SLOW
            )
        # A long-lived tensor is created by the op running *right now*: its
        # writes and in-layer reads are imminent, so it belongs in fast
        # whenever there is room at all — the eager-eviction pass is
        # responsible for keeping that room available, and the short-lived
        # reservation is protected from *prefetch*, not from the working
        # set (both are "tensors needed by upcoming operations", §IV-D).
        if fits_fast(machine, tensor.nbytes):
            return DeviceKind.FAST
        return DeviceKind.SLOW

    def _reservation_headroom(self) -> int:
        """Fast-memory bytes held back for upcoming short-lived tensors."""
        if not self.config.reserve_short or self.plan is None:
            return 0
        return max(0, self.plan.reserved_short_bytes - self._short_fast_bytes)

    # ------------------------------------------------------------ lifecycle

    def on_step_start(self, step: int, now: float) -> float:
        self._step = step
        self._step_start = now
        self._current_layer = 0
        warmup = self.config.warmup_steps
        if step < warmup:
            self.mode = WARMUP
        elif step == warmup:
            self._begin_profiling()
        elif self.profile is None:
            if self._should_reprofile():
                # The profiling step lost too many fault samples (injected
                # handler overflow): spend one more step re-profiling rather
                # than planning intervals off an under-counted profile.
                self.reprofile_steps_used += 1
                self._begin_profiling()
            else:
                self._finish_profiling()
        return 0.0

    def _begin_profiling(self) -> None:
        machine = self.machine
        assert machine is not None
        self.mode = PROFILING
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(
                "profiling-begin",
                "step",
                step=self._step,
                reprofile=self.reprofile_steps_used > 0,
            )
        self.profiling_steps_used += 1
        self._interval_candidate_tids = None
        self._evict_candidates_by_layer.clear()
        self._collector = ProfileCollector()
        handler = machine.fault_handler
        self._profile_fault_base = (handler.faults_taken, handler.faults_dropped)
        machine.page_table.poison_all()
        machine.tlb.flush_all()
        # Preallocated tensors are already mapped; register them so their
        # counters are attributed from the first layer on.
        for mapping in self._mappings.values():
            self._collector.on_alloc(mapping.tensor, mapping)

    def _should_reprofile(self) -> bool:
        """Whether the just-finished profiling step was too lossy to trust."""
        if self.reprofile_steps_used >= self.config.max_reprofile_steps:
            return False
        machine = self.machine
        assert machine is not None
        handler = machine.fault_handler
        base_taken, base_dropped = self._profile_fault_base
        taken = handler.faults_taken - base_taken
        dropped = handler.faults_dropped - base_dropped
        if taken <= 0 or dropped <= 0:
            return False
        return dropped / taken > self.config.reprofile_loss_threshold

    def _finish_profiling(self) -> None:
        machine = self.machine
        graph = self.graph
        assert machine is not None and graph is not None
        assert self._collector is not None
        self.profile = self._collector.finalize(graph, machine)
        self._collector = None
        self.plan = self._make_plan()
        # Per-layer demand of fresh long-lived allocations: the space the
        # eviction pass must keep free so new tensors can land in fast.
        demand = [0] * self.profile.num_layers
        for record in self.profile.tensors.values():
            if record.preallocated or record.short_lived:
                continue
            if 0 <= record.alloc_layer < len(demand):
                demand[record.alloc_layer] += record.nbytes
        self._alloc_demand_by_layer = demand
        self._alloc_demand = max(demand, default=0)
        self.mode = MANAGED
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(
                "profiling-end",
                "step",
                step=self._step,
                interval_length=self.plan.interval_length,
                num_intervals=self.plan.num_intervals,
                reserved_short_bytes=self.plan.reserved_short_bytes,
            )

    def _make_plan(self) -> IntervalPlan:
        machine = self.machine
        assert machine is not None and self.profile is not None
        bandwidth = machine.platform.promote_bandwidth
        capacity = machine.fast.capacity
        if self.config.fixed_interval_length is not None:
            return evaluate_interval_length(
                self.profile, self.config.fixed_interval_length, capacity, bandwidth
            )
        if not self.config.interval_opt:
            # "Direct migration": react one layer ahead, no modelling.
            return evaluate_interval_length(self.profile, 1, capacity, bandwidth)
        return choose_interval_length(
            self.profile,
            capacity,
            bandwidth,
            max_interval_length=self.config.max_interval_length,
        )

    def on_step_end(self, step: int, now: float) -> float:
        machine = self.machine
        assert machine is not None
        duration = now - self._step_start
        self._step_durations[step] = duration
        if self.mode == PROFILING:
            machine.page_table.unpoison_all()
        self._settle_trials(step)
        self._prefetch.clear()
        self._pending_prefetch.clear()
        return 0.0

    # ---------------------------------------------------------------- hooks

    def on_alloc(self, tensor: Tensor, mapping: TensorMapping, now: float) -> None:
        self._mappings[tensor.tid] = mapping
        if self.mode == PROFILING and self._collector is not None:
            for share in mapping.shares:
                share.run.poisoned = True
            assert self.machine is not None
            self.machine.tlb.flush_all()
            self._collector.on_alloc(tensor, mapping)
        if (
            self.mode == MANAGED
            and tensor.short_lived
            and mapping.shares
            and mapping.shares[0].run.device is DeviceKind.FAST
        ):
            self._short_fast_bytes += tensor.nbytes
            if self.config.reserve_short:
                # §IV-C: the pool's pages are pinned — "tensors in this
                # space are never considered for migration".  The engine
                # refuses to move pinned runs, making the guarantee
                # structural rather than a policy convention.
                for share in mapping.shares:
                    share.run.pinned = True

    def on_free(self, tensor: Tensor, mapping: TensorMapping, now: float) -> None:
        self._mappings.pop(tensor.tid, None)
        if self.mode == PROFILING and self._collector is not None:
            self._collector.on_free(tensor, mapping, self._current_layer)
        if (
            self.mode == MANAGED
            and tensor.short_lived
            and mapping.shares
            and mapping.shares[0].run.device is DeviceKind.FAST
        ):
            self._short_fast_bytes = max(0, self._short_fast_bytes - tensor.nbytes)

    def on_layer_start(self, layer: Layer, now: float) -> float:
        self._current_layer = layer.index
        if self.mode != MANAGED or self.plan is None:
            return 0.0
        if layer.index % self.plan.interval_length != 0:
            return 0.0
        interval = self.plan.interval_of_layer(layer.index)
        stall = self._handle_interval_boundary(interval, now)
        return stall

    def charge_access(self, tensor, mapping, access, now: float):
        charge = super().charge_access(tensor, mapping, access, now)
        if (
            self.mode == MANAGED
            and not self.residency
            and charge.bytes_slow
            and self.profile is not None
        ):
            self._promote_on_access(tensor, mapping, now)
        return charge

    def _promote_on_access(self, tensor, mapping, now: float) -> None:
        """CPU miss path: a long-lived tensor being used from slow memory
        (prefetch could not fit it in time — Case 2 fallout) is promoted
        asynchronously so its remaining passes run at DRAM speed.  This is
        the access-count-ordered use of leftover fast memory §IV-D calls
        for when "certain tensors are left out in slow memory"."""
        record = self.profile.tensors.get(tensor.tid)
        if record is None or record.short_lived:
            return
        if record.next_touch_after(self._current_layer - 1) is None:
            return  # never used again; moving it would be pure waste
        machine = self.machine
        headroom = self._reservation_headroom()
        runs = [
            share.run
            for share in mapping.shares
            if share.run.device is DeviceKind.SLOW
            and not share.run.in_flight
            and share.run.initialized
        ]
        for run in runs:
            nbytes = run.npages * machine.page_size
            if machine.fast.free - headroom < nbytes:
                break
            machine.migration.promote([run], now, tag="on-access", urgent=True)

    def on_layer_end(self, layer: Layer, now: float) -> float:
        if self.mode == PROFILING and self._collector is not None:
            self._collector.on_layer_end(layer.index)
        self._current_layer = layer.index + 1
        if self.mode == MANAGED and self.plan is not None:
            self._evict_unneeded(layer.index, now)
            if self._pending_prefetch:
                self._retry_pending_prefetch(
                    self.plan.interval_of_layer(layer.index), now
                )
        return 0.0

    # --------------------------------------------------- interval machinery

    def _interval_candidates(self) -> List[Tuple[int, ...]]:
        """Per-interval prefetch candidates, hottest first (vectorized path).

        The scalar planner re-derives "which long-lived tensors does
        interval ``i`` touch, ordered by access count" at *every* interval
        boundary of every step by scanning all live mappings.  The answer
        is a pure function of the profile and the plan, so the vectorized
        path computes it once per plan; callers intersect with the live
        mapping table at use time.  Ordering matches the scalar sort key
        ``(-total_touches, tid)``, which is total (tids are unique), so
        filtered results are identical.
        """
        if self._interval_candidate_tids is None:
            assert self.profile is not None and self.plan is not None
            ordered = sorted(
                (r for r in self.profile.tensors.values() if r.long_lived),
                key=lambda r: (-r.total_touches, r.tid),
            )
            self._interval_candidate_tids = [
                tuple(
                    r.tid
                    for r in ordered
                    if r.touched_in(interval[0], interval[-1])
                )
                for interval in self.plan.intervals
            ]
        return self._interval_candidate_tids

    def _evict_candidates(
        self, layer_index: int, horizon: int, infinity: int
    ) -> Tuple[Tuple[int, int], ...]:
        """Eviction candidates for ``layer_index``, pre-sorted (vectorized).

        The scalar `_evict_unneeded` re-derives "which profiled tensors
        does no layer up to ``horizon`` touch again, coldest first" at
        every layer end by scanning all live mappings.  Both the time
        filter and the ``(-next_touch, tid)`` sort key are pure functions
        of (profile, plan, layer), so the vectorized path memoizes the
        sorted ``(tid, key)`` pairs per layer; callers re-check liveness
        and fast-residency, the only dynamic parts.  The sort key is total
        (tids are unique), so any runtime-filtered subsequence is in
        exactly the scalar order.
        """
        cached = self._evict_candidates_by_layer.get(layer_index)
        if cached is None:
            assert self.profile is not None
            reserve_short = self.config.reserve_short
            pairs = []
            for tid, record in self.profile.tensors.items():
                if record.short_lived and reserve_short:
                    continue
                next_touch = record.next_touch_after(layer_index)
                if next_touch is None or next_touch > horizon:
                    pairs.append(
                        (tid, next_touch if next_touch is not None else infinity)
                    )
            pairs.sort(key=lambda pair: (-pair[1], pair[0]))
            cached = tuple(pairs)
            self._evict_candidates_by_layer[layer_index] = cached
        return cached

    def _handle_interval_boundary(self, interval: int, now: float) -> float:
        """Case detection for this interval, prefetch for the next one.

        The current interval is re-checked first: under memory overcommit a
        tensor prefetched earlier can have been displaced again by
        on-demand eviction, and promoting it now is strictly better than
        stalling when its layer reaches it.
        """
        stall = self._resolve_case3(interval, now)
        self._issue_prefetch(interval, now + stall, lookahead=False)
        next_interval = interval + 1
        if next_interval < self.plan.num_intervals:
            self._issue_prefetch(next_interval, now + stall)
        return stall

    def _resolve_case3(self, interval: int, now: float) -> float:
        """If this interval's prefetch is unfinished, apply §IV-D Case 3."""
        pending = [
            t for t in self._prefetch.get(interval, ()) if t.finish > now
        ]
        if not pending:
            return 0.0
        self.case3_occurrences += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(
                "case3",
                "prefetch",
                ts=now,
                track="prefetch",
                interval=interval,
                pending=len(pending),
                lag=max(t.finish for t in pending) - now,
            )
        metrics = self._metrics
        if metrics is not None:
            metrics.histogram("prefetch.case3_lag").observe(
                max(t.finish for t in pending) - now
            )
        deadline = self.config.case3_wait_deadline
        if deadline is not None and max(t.finish for t in pending) - now > deadline:
            # Waiting would blow the per-interval patience budget (the copy
            # is crawling behind injected aborts/refusals): take the paper's
            # "leave tensors in slow memory" choice immediately.  The slow
            # copies stay the valid mapping until each transfer lands, so
            # the interval runs correctly, just at slow-tier speed.
            self.case3_fallbacks += 1
            if tracer is not None:
                tracer.instant(
                    "case3-fallback",
                    "prefetch",
                    ts=now,
                    track="prefetch",
                    interval=interval,
                )
            return 0.0
        if not self.config.test_and_trial:
            return self._wait_for(pending, now)

        state = self._case3.get(interval)
        if state is None:
            if self._trial_active is not None and self._trial_active != interval:
                # Serialize trials so step-duration comparisons stay clean.
                return self._wait_for(pending, now)
            state = _Case3State(wait_step=self._step)
            self._case3[interval] = state
            self._trial_active = interval
            self.trial_steps_used += 1
            return self._wait_for(pending, now)
        if state.status == "decided" and state.choice == "wait":
            return self._wait_for(pending, now)
        if state.status == "trial_wait" and state.wait_step == self._step:
            return self._wait_for(pending, now)
        # 'leave': let the interval run against slow copies.
        return 0.0

    def _wait_for(self, pending: List[Transfer], now: float) -> float:
        assert self.machine is not None
        finish = max(t.finish for t in pending)
        stall = max(0.0, finish - now)
        self.machine.migration.sync(finish)
        return stall

    def _issue_prefetch(
        self, interval: int, now: float, lookahead: bool = True
    ) -> None:
        """Promote the long-lived tensors interval ``interval`` needs (§IV-D).

        ``lookahead`` marks the normal one-interval-ahead call, which is
        where the Case-3 test-and-trial state machine advances; re-issues
        for the already-running interval only fill holes and must not
        perturb the trial.
        """
        assert self.machine is not None and self.profile is not None
        if interval in self._skip_prefetch:
            return
        state = self._case3.get(interval)
        if state is not None:
            if state.status == "trial_wait" and state.wait_step is not None:
                if lookahead and self._step > state.wait_step:
                    # Second trial step: try leaving the tensors in slow.
                    state.status = "trial_leave"
                    state.leave_step = self._step
                    self.trial_steps_used += 1
                    return
            elif state.status == "trial_leave" and state.leave_step == self._step:
                return
            elif state.status == "decided" and state.choice == "leave":
                return
        if accel.vectorized_enabled():
            mappings = self._mappings
            ordered_mappings = [
                mappings[tid]
                for tid in self._interval_candidates()[interval]
                if tid in mappings
            ]
        else:
            layers = self.plan.layers_of(interval)
            first, last = layers[0], layers[-1]
            candidates = []
            for tid, mapping in self._mappings.items():
                record = self.profile.tensors.get(tid)
                if record is None or record.short_lived:
                    continue
                if record.touched_in(first, last):
                    candidates.append((record.total_touches, tid, mapping))
            # Hottest first: if fast memory runs out mid-prefetch, what is
            # left behind in slow memory is the coldest data (paper §IV-D).
            candidates.sort(key=lambda item: (-item[0], item[1]))
            ordered_mappings = [mapping for _, _, mapping in candidates]
        runs: List[PageTableEntry] = []
        seen: Set[int] = set()
        for mapping in ordered_mappings:
            for share in mapping.shares:
                if share.run.vpn not in seen:
                    seen.add(share.run.vpn)
                    runs.append(share.run)
        if not runs:
            return
        transfers, skipped = self._promote_with_headroom(
            runs, now, self._reservation_headroom()
        )
        if skipped:
            self.case2_occurrences += 1
            # Retry as eager eviction frees space during upcoming layers.
            self._pending_prefetch[interval] = skipped
        if transfers:
            self._prefetch.setdefault(interval, []).extend(transfers)
        tracer = self._tracer
        if tracer is not None and (transfers or skipped):
            finish = max((t.finish for t in transfers), default=now)
            tracer.complete(
                "prefetch",
                "prefetch",
                ts=now,
                dur=max(0.0, finish - now),
                track="prefetch",
                interval=interval,
                nbytes=sum(t.nbytes for t in transfers),
                scheduled=len(transfers),
                skipped=len(skipped),
                lookahead=lookahead,
                case2=bool(skipped),
            )
        metrics = self._metrics
        if metrics is not None and transfers:
            metrics.histogram("prefetch.bytes").observe(
                sum(t.nbytes for t in transfers)
            )

    def _retry_pending_prefetch(self, current_interval: int, now: float) -> None:
        """Drain deferred prefetches once mid-interval demotions freed room."""
        for interval in sorted(self._pending_prefetch):
            if interval < current_interval:
                del self._pending_prefetch[interval]
                continue
            runs = [
                run
                for run in self._pending_prefetch[interval]
                if run.vpn in self.machine.page_table
                and run.device is DeviceKind.SLOW
                and not run.in_flight
            ]
            if not runs:
                del self._pending_prefetch[interval]
                continue
            transfers, skipped = self._promote_with_headroom(
                runs, now, self._reservation_headroom()
            )
            if transfers:
                self._prefetch.setdefault(interval, []).extend(transfers)
            if skipped:
                self._pending_prefetch[interval] = skipped
                break  # still no room; later intervals can wait
            del self._pending_prefetch[interval]

    def _promote_with_headroom(self, runs: List[PageTableEntry], now: float, headroom: int):
        """Promote runs one submission each (so the hottest arrive first and
        accesses can proceed as soon as *their* data lands, not when the
        whole batch does), keeping ``headroom`` bytes of fast memory free
        for the short-lived reservation."""
        machine = self.machine
        assert machine is not None
        page_size = machine.page_size
        # Keep room for the reservation *and* the layers' fresh allocations:
        # prefetched data that displaces the working set costs more than it
        # saves.
        budget = machine.fast.free - max(0, headroom) - self._upcoming_alloc_demand(1)
        if machine.pressure is not None:
            # The demand lane's reserve pool is invisible to prefetch.
            budget -= machine.pressure.reserve_bytes
        transfers: List[Transfer] = []
        skipped: List[PageTableEntry] = []
        for run in runs:
            if run.device is DeviceKind.FAST or run.in_flight:
                continue
            nbytes = run.npages * page_size
            if nbytes > budget:
                skipped.append(run)
                continue
            transfer, scheduled, more_skipped = machine.migration.promote(
                [run], now, tag="prefetch"
            )
            skipped.extend(more_skipped)
            if transfer is not None:
                transfers.append(transfer)
                budget -= nbytes
        return transfers, skipped

    def _space_deficit(self, now: float) -> int:
        """Fast-memory bytes that must still be vacated.

        Demand = the next interval's prefetch bytes still sitting on slow
        memory (exactly what the migration-in thread must land before that
        interval starts), the short-lived reservation, and room for the
        next layer's fresh allocations; supply = current free space plus
        demotions already in flight (their frames free when the copies
        land).
        """
        machine = self.machine
        assert machine is not None and self.profile is not None
        page_size = machine.page_size
        prefetch_remaining = 0
        next_interval = self.plan.interval_of_layer(self._current_layer) + 1
        if next_interval < self.plan.num_intervals:
            if accel.vectorized_enabled():
                # Same live-tensor intersection as the scalar scan below;
                # the summed quantities are ints, so the candidate-order
                # traversal is exact.
                mappings = self._mappings
                prefetch_remaining = sum(
                    mappings[tid].bytes_on(DeviceKind.SLOW, now)
                    for tid in self._interval_candidates()[next_interval]
                    if tid in mappings
                )
            else:
                layers = self.plan.layers_of(next_interval)
                first, last = layers[0], layers[-1]
                for tid, mapping in self._mappings.items():
                    record = self.profile.tensors.get(tid)
                    if record is None or record.short_lived:
                        continue
                    if record.touched_in(first, last):
                        prefetch_remaining += mapping.bytes_on(
                            DeviceKind.SLOW, now
                        )
        slack = max(machine.fast.capacity // 20, self._upcoming_alloc_demand())
        if not self.residency:
            # Demotion runs on an otherwise-idle helper thread on CPU:
            # vacating a few layers further ahead costs nothing on the
            # critical path and keeps allocations landing in DRAM.
            slack += self._upcoming_alloc_demand(4)
        demand = prefetch_remaining + self._reservation_headroom() + slack
        if machine.pressure is not None:
            # Eviction must also keep the governor's urgent-lane reserve
            # open, or every demand miss starts by evicting synchronously.
            demand += machine.pressure.reserve_bytes
        if accel.vectorized_enabled():
            inflight_demotes = machine.migration.in_flight_demote_bytes()
        else:
            inflight_demotes = sum(
                run.npages * page_size
                for run in machine.page_table.entries()
                if run.migrating_to is DeviceKind.SLOW
            )
        return demand - machine.fast.free - inflight_demotes

    def _upcoming_alloc_demand(self, lookahead: int = 2) -> int:
        """Fresh long-lived allocation bytes of the next ``lookahead``
        layers — the room eviction must keep open right now (the global
        maximum would hold back far too much on deep, uneven models)."""
        if not self._alloc_demand_by_layer:
            return self._alloc_demand
        start = self._current_layer
        window = self._alloc_demand_by_layer[start : start + lookahead]
        return sum(window)

    def _evict_unneeded(self, layer_index: int, now: float) -> None:
        """Mid-interval eager demotion (§IV-D, prevents Case 2).

        Long-lived tensors that no layer up to the end of the *next*
        interval touches again are demotion candidates; the coldest
        (farthest next use) leave first, and only as many as the projected
        space deficit requires — migrating out data that would have fit
        only to fetch it back later wastes the channel both ways.
        """
        assert self.machine is not None and self.profile is not None
        deficit = self._space_deficit(now)
        if deficit <= 0:
            return
        plan = self.plan
        interval = plan.interval_of_layer(layer_index)
        horizon = min(
            self.profile.num_layers - 1,
            (interval + 2) * plan.interval_length - 1,
        )
        infinity = self.profile.num_layers + 1
        evictable: Dict[int, int] = {}  # tid -> next touch (or infinity)
        if accel.vectorized_enabled():
            # The time filter and sort key are pure profile+plan functions
            # of the layer (see _evict_candidates); only liveness and
            # fast-residency are checked per call.
            mappings = self._mappings
            ordered = []
            for tid, key in self._evict_candidates(layer_index, horizon, infinity):
                mapping = mappings.get(tid)
                if mapping is None or mapping.bytes_on(DeviceKind.FAST, now) == 0:
                    continue
                evictable[tid] = key
                ordered.append(tid)
            if not evictable:
                return
        else:
            for tid, mapping in self._mappings.items():
                record = self.profile.tensors.get(tid)
                if record is None:
                    continue
                if record.short_lived and self.config.reserve_short:
                    # The reserved pool pins short-lived tensors in fast
                    # memory (§IV-C); without the reservation (ablation)
                    # they compete like everything else.
                    continue
                if mapping.bytes_on(DeviceKind.FAST, now) == 0:
                    continue
                next_touch = record.next_touch_after(layer_index)
                if next_touch is None or next_touch > horizon:
                    evictable[tid] = (
                        next_touch if next_touch is not None else infinity
                    )
            if not evictable:
                return
            ordered = sorted(evictable, key=lambda tid: (-evictable[tid], tid))
        runs: List[PageTableEntry] = []
        seen: Set[int] = set()
        page_size = self.machine.page_size
        chosen_bytes = 0
        assert self.allocator is not None
        for tid in ordered:
            if chosen_bytes >= deficit:
                break
            for share in self._mappings[tid].shares:
                run = share.run
                if run.vpn in seen or run.device is not DeviceKind.FAST:
                    continue
                seen.add(run.vpn)
                users = self.allocator.users_of(run)
                if users and not users.issubset(evictable.keys()):
                    continue  # page shared with a still-needed tensor
                runs.append(run)
                chosen_bytes += run.npages * page_size
        if runs:
            self.machine.migration.demote(runs, now, tag="evict")

    # --------------------------------------------------------------- trials

    def _settle_trials(self, step: int) -> None:
        for interval, state in self._case3.items():
            if state.status == "trial_wait" and state.wait_step == step:
                state.wait_duration = self._step_durations[step]
            elif state.status == "trial_leave" and state.leave_step == step:
                state.leave_duration = self._step_durations[step]
                assert state.wait_duration is not None
                state.choice = (
                    "wait"
                    if state.wait_duration <= state.leave_duration
                    else "leave"
                )
                state.status = "decided"
                if state.choice == "leave":
                    self._skip_prefetch.add(interval)
                if self._trial_active == interval:
                    self._trial_active = None

    # ---------------------------------------------------------------- stats

    @property
    def overhead_steps(self) -> float:
        """Profiling + trial steps (Table III's overhead accounting)."""
        return self.profiling_steps_used + self.trial_steps_used
