"""Dynamic tensor-level profiling (paper §III-A, §IV-B).

The mechanism: during the single profiling step every tensor is allocated
page-aligned (one tensor per page run), every PTE is poisoned, and each
main-memory access therefore takes a protection fault that increments the
run's counters.  Because the runtime knows where layers begin and end
(``add_layer()`` in the paper), a :class:`ProfileCollector` snapshots the
counters at each layer boundary and attributes access counts to layers —
the OS/runtime coordination that makes the profile *tensor-level* and
*layer-attributed* rather than page-level and flat.

Two entry points:

* :class:`ProfilingObserver` — an executor observer wrapping a collector,
  used by the characterization experiments.
* :class:`DynamicProfiler` — one-call orchestration: builds a fresh machine,
  runs one poisoned, page-aligned step of a graph, returns the
  :class:`~repro.core.profile.Profile` (plus overhead accounting).
  :class:`~repro.core.runtime.SentinelPolicy` embeds the same collector to
  profile in-place at step 11 of a live training run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.core.profile import Profile, TensorProfile
from repro.dnn.alloc import PageAlignedAllocator, TensorMapping
from repro.dnn.executor import Executor, StepObserver, StepResult
from repro.dnn.graph import Graph, Layer
from repro.dnn.policy import PlacementPolicy
from repro.dnn.tensor import Tensor
from repro.mem.machine import Machine
from repro.mem.platforms import Platform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.chaos import FaultInjector
    from repro.obs.trace import EventTracer


def estimate_layer_fast_times(graph: Graph, machine: Machine) -> List[float]:
    """Per-layer execution time with every operand in fast memory.

    The roofline the executor applies, priced at fast-tier bandwidth.  This
    is the ``T(MIL)`` building block of the interval performance model and
    needs no extra training steps — exactly why the paper's exploration of
    interval lengths is cheap.
    """
    times: List[float] = []
    throughput = machine.platform.compute_throughput
    fast = machine.fast
    for layer in graph.layers:
        total = 0.0
        for op in layer.ops:
            compute = op.flops / throughput
            mem = 0.0
            for access in op.accesses:
                mem += access.passes * fast.access_time(
                    access.nbytes, access.is_write
                )
            total += max(compute, mem)
        times.append(total)
    return times


def layer_short_lived_bytes(graph: Graph) -> List[int]:
    """Per-layer bytes of live short-lived tensors (the RS building block)."""
    sizes = [0] * graph.num_layers
    for tensor in graph.step_tensors():
        if tensor.short_lived:
            sizes[tensor.alloc_layer] += tensor.nbytes
    return sizes


def page_aligned_peak_bytes(graph: Graph, page_size: int) -> int:
    """Peak footprint if every tensor were padded to whole pages.

    The profiling phase's memory overhead (paper: <= ~2.4%, because tensors
    larger than a page dominate).
    """
    def padded(nbytes: int) -> int:
        return page_size * math.ceil(nbytes / page_size)

    prealloc = sum(padded(t.nbytes) for t in graph.preallocated())
    peak = prealloc
    for layer_index in range(graph.num_layers):
        live = prealloc
        for tensor in graph.step_tensors():
            assert tensor.free_layer is not None
            if tensor.alloc_layer <= layer_index <= tensor.free_layer:
                live += padded(tensor.nbytes)
        peak = max(peak, live)
    return peak


class ProfileCollector:
    """Accumulates per-tensor, per-layer access counts from run counters.

    Requires the profiling step to run on a page-aligned allocator so each
    run's counters belong to exactly one tensor; the collector verifies
    this via the one-share-per-run structure of the mappings it receives.
    """

    def __init__(self) -> None:
        self._live: Dict[int, TensorMapping] = {}
        self._counted: Dict[int, int] = {}
        self._pages: Dict[int, int] = {}
        self._records: Dict[int, TensorProfile] = {}
        self._settled: Set[int] = set()

    # ------------------------------------------------------------- plumbing

    def on_alloc(self, tensor: Tensor, mapping: TensorMapping) -> None:
        self._live[tensor.tid] = mapping
        self._counted[tensor.tid] = self._run_total(mapping)
        self._pages[tensor.tid] = max(
            1, sum(share.run.npages for share in mapping.shares)
        )
        self._records[tensor.tid] = TensorProfile(
            tid=tensor.tid,
            name=tensor.name,
            nbytes=tensor.nbytes,
            alloc_layer=tensor.alloc_layer,
            free_layer=tensor.free_layer,
            preallocated=tensor.preallocated,
        )

    @staticmethod
    def _run_total(mapping: TensorMapping) -> int:
        return sum(share.run.accesses for share in mapping.shares)

    def _settle(self, tid: int, layer_index: int) -> None:
        mapping = self._live.get(tid)
        if mapping is None:
            return
        current = self._run_total(mapping)
        delta = current - self._counted[tid]
        if delta > 0:
            # Fault counters tick once per page per pass; normalize by the
            # tensor's page count so "accesses" means streaming passes over
            # the tensor — the unit the paper compares hotness in (a 100 MB
            # tensor read once is colder than a 4-byte counter read 200
            # times, even though the former takes more faults).
            passes = max(1, round(delta / self._pages[tid]))
            touches = self._records[tid].touches_by_layer
            touches[layer_index] = touches.get(layer_index, 0) + passes
            self._counted[tid] = current

    def on_free(self, tensor: Tensor, mapping: TensorMapping, layer_index: int) -> None:
        """Read a dying tensor's counters before its runs are unmapped."""
        self._settle(tensor.tid, layer_index)
        self._live.pop(tensor.tid, None)
        self._counted.pop(tensor.tid, None)
        self._pages.pop(tensor.tid, None)
        self._settled.add(tensor.tid)

    def on_layer_end(self, layer_index: int) -> None:
        """Snapshot all live counters at a layer boundary (``add_layer()``)."""
        for tid in list(self._live):
            self._settle(tid, layer_index)

    # --------------------------------------------------------------- output

    def finalize(
        self,
        graph: Graph,
        machine: Machine,
        profiling_result: Optional[StepResult] = None,
    ) -> Profile:
        """Assemble the :class:`Profile` after the profiling step."""
        # Tensors still live (preallocated) get their final settle at the
        # last layer; on_layer_end already handled it if called, but be
        # safe for direct use.
        last_layer = graph.num_layers - 1
        for tid in list(self._live):
            self._settle(tid, last_layer)
        page_size = machine.page_size
        return Profile(
            graph_name=graph.name,
            signature=graph.signature(),
            num_layers=graph.num_layers,
            page_size=page_size,
            tensors=dict(self._records),
            layer_fast_times=estimate_layer_fast_times(graph, machine),
            layer_short_lived_bytes=layer_short_lived_bytes(graph),
            profiling_step_time=(
                profiling_result.duration if profiling_result else 0.0
            ),
            fault_count=machine.fault_handler.faults_taken,
            profiled_peak_bytes=page_aligned_peak_bytes(graph, page_size),
            packed_peak_bytes=graph.peak_memory_bytes(),
        )


class ProfilingObserver(StepObserver):
    """Executor observer driving a :class:`ProfileCollector`.

    Poisons the page table at step start so every access is counted, and
    unpoisons at step end so subsequent steps run at full speed.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.collector = ProfileCollector()
        self._current_layer = 0

    def on_step_start(self, step: int, now: float) -> None:
        self.machine.page_table.poison_all()
        self.machine.tlb.flush_all()
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.instant("poison-all", "fault", ts=now, track="faults", step=step)

    def on_tensor_allocated(
        self, tensor: Tensor, mapping: TensorMapping, now: float
    ) -> None:
        for share in mapping.shares:
            share.run.poisoned = True
        self.machine.tlb.flush_all()
        self.collector.on_alloc(tensor, mapping)

    def on_tensor_freed(
        self, tensor: Tensor, mapping: TensorMapping, now: float
    ) -> None:
        self.collector.on_free(tensor, mapping, self._current_layer)

    def on_layer_end(self, layer: Layer, now: float) -> None:
        self.collector.on_layer_end(layer.index)
        self._current_layer = layer.index + 1

    def on_step_end(self, step: int, result: StepResult) -> None:
        self.machine.page_table.unpoison_all()
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.instant(
                "unpoison-all",
                "fault",
                ts=result.end_time,
                track="faults",
                step=step,
            )


@dataclass
class ProfilingRun:
    """A profile plus the accounting of the step that produced it.

    Attributes:
        reprofiles: extra profiling passes spent because earlier passes lost
            too many fault samples (zero without fault injection).
    """

    profile: Profile
    step_result: StepResult
    reprofiles: int = 0


class DynamicProfiler:
    """One-call dynamic profiling of a graph on a fresh machine.

    Args:
        platform: platform to instantiate the machine from.
        injector: optional :class:`repro.chaos.FaultInjector`; with one
            attached the fault handler may drop samples, and a pass whose
            loss ratio exceeds ``loss_threshold`` is retried (bounded by
            ``max_reprofiles``) before the lossy profile is accepted.
        tracer: optional :class:`repro.obs.EventTracer` handed to the
            machine each pass, so profiling faults land in the trace.
    """

    def __init__(
        self,
        platform: Platform,
        injector: Optional["FaultInjector"] = None,
        max_reprofiles: int = 1,
        loss_threshold: float = 0.02,
        tracer: Optional["EventTracer"] = None,
    ) -> None:
        if max_reprofiles < 0:
            raise ValueError(f"max_reprofiles must be >= 0, got {max_reprofiles!r}")
        if not 0.0 <= loss_threshold <= 1.0:
            raise ValueError(
                f"loss_threshold must be in [0, 1], got {loss_threshold!r}"
            )
        self.platform = platform
        self.injector = injector
        self.max_reprofiles = max_reprofiles
        self.loss_threshold = loss_threshold
        self.tracer = tracer

    def run(self, graph: Graph) -> ProfilingRun:
        """Execute one poisoned, page-aligned step and build the profile.

        Everything is placed on slow memory (the paper's profiling phase
        runs entirely on slow memory and never consumes fast memory).
        """
        reprofiles = 0
        while True:
            machine = Machine(
                self.platform, injector=self.injector, tracer=self.tracer
            )
            policy = PlacementPolicy()  # place() defaults to SLOW everywhere
            policy.bind(machine, graph)
            policy.residency = False  # profiling reads in place, even on GPU HM
            allocator = PageAlignedAllocator(machine, policy.place)
            observer = ProfilingObserver(machine)
            executor = Executor(
                graph, machine, policy, allocator=allocator, observers=[observer]
            )
            result = executor.run_step()
            profile = observer.collector.finalize(graph, machine, result)
            handler = machine.fault_handler
            lossy = (
                handler.faults_taken > 0
                and handler.faults_dropped / handler.faults_taken
                > self.loss_threshold
            )
            if lossy and reprofiles < self.max_reprofiles:
                reprofiles += 1
                continue
            return ProfilingRun(
                profile=profile, step_result=result, reprofiles=reprofiles
            )
