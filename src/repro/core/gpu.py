"""Sentinel-GPU (paper §V).

Differences from the CPU policy, all from the paper:

* **Profiling** uses the customized pinned-memory mechanism: tensors stay in
  host memory, ``mlock`` is intercepted so PTEs can still be poisoned, and
  every GPU access crosses the PCIe link — so the profiling step is priced
  at interconnect bandwidth, not HBM bandwidth, and access counting loses
  nothing because the protection faults fire on the host side.
* **Two-copy synchronization**: tensors allocated before the training loop
  keep a pinned host copy for profiling and a device copy for training; the
  copies are reconciled once when profiling ends, a one-step cost.
* **Case 3 always waits**: a GPU kernel cannot run against host-resident
  operands at useful speed, so the test-and-trial algorithm is unnecessary —
  the runtime stalls until the prefetch completes (subject to Eq. 2's
  minimization of exactly that stall).
* **Residency faults evict**: when fast (device) memory is full, the
  coldest resident long-lived data — farthest next use per the profile, or
  least-recently-promoted before a profile exists — is demoted first.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.runtime import MANAGED, PROFILING, SentinelConfig, SentinelPolicy
from repro.dnn.alloc import TensorMapping
from repro.dnn.ops import TensorAccess
from repro.dnn.policy import AccessCharge
from repro.dnn.tensor import Tensor
from repro.mem.devices import DeviceKind
from repro.mem.page import PageTableEntry


#: On-demand eviction frees this much beyond the immediate request, so the
#: steady trickle of small allocations (temporaries) does not pay one
#: synchronous eviction each — the same batching a real device allocator does.
EVICTION_HEADROOM = 64 * 1024 * 1024


def evict_coldest(policy, nbytes: int, now: float, ranked_runs: List[PageTableEntry]) -> float:
    """Demote runs (coldest first) until ``nbytes`` of fast memory frees.

    Returns the stall: fast frames are only vacated when the copy-out
    completes, so on-demand eviction is synchronous pain — the behaviour
    that makes Unified Memory slow and that Sentinel's eager mid-interval
    demotion avoids.
    """
    machine = policy.machine
    assert machine is not None
    page_size = machine.page_size
    needed = (
        max(nbytes, min(EVICTION_HEADROOM, machine.fast.capacity // 8))
        - machine.fast.free
    )
    # Demotions already in flight will free their frames when they land;
    # waiting for the earliest sufficient ones beats queueing more copies
    # behind them.
    inflight = sorted(
        (
            run
            for run in machine.page_table.entries()
            if run.migrating_to is DeviceKind.SLOW
        ),
        key=lambda run: run.available_at,
    )
    pending_bytes = 0
    wait_until = now
    for run in inflight:
        if pending_bytes >= needed:
            break
        pending_bytes += run.npages * page_size
        wait_until = max(wait_until, run.available_at)
    remaining = needed - pending_bytes
    victims: List[PageTableEntry] = []
    reclaimed = 0
    if remaining > 0:
        for run in ranked_runs:
            if reclaimed >= remaining:
                break
            if run.pinned or run.in_flight or run.device is not DeviceKind.FAST:
                continue
            victims.append(run)
            reclaimed += run.npages * page_size
    if victims:
        # Urgent: a demand miss is waiting on this space, so an injected
        # transient refusal here would surface as a spurious OOM — the
        # engine retries the eviction through instead.
        transfer, _ = machine.migration.demote(
            victims, now, tag="evict-on-demand", urgent=True
        )
        if transfer is not None:
            wait_until = max(wait_until, transfer.finish)
    stall = 0.0 if wait_until <= now else wait_until - now
    tracer = machine.tracer
    if tracer is not None and (victims or stall > 0.0):
        tracer.complete(
            "evict-on-demand",
            "gpu",
            ts=now,
            dur=stall,
            track="gpu",
            nbytes=nbytes,
            reclaimed=reclaimed,
            victims=len(victims),
            inflight_bytes=pending_bytes,
        )
    if stall <= 0.0:
        return 0.0
    machine.migration.sync(wait_until)
    return stall


class SentinelGPUPolicy(SentinelPolicy):
    """Sentinel with GPU global memory as the fast tier."""

    name = "sentinel-gpu"
    requires_residency: Optional[bool] = None  # inherit (True on GPU_HM)

    def __init__(self, config: Optional[SentinelConfig] = None) -> None:
        import dataclasses

        config = config if config is not None else SentinelConfig()
        # Case 3 must wait on GPU (§V); replace rather than mutate so a
        # caller-shared config object is left untouched.
        config = dataclasses.replace(config, test_and_trial=False)
        super().__init__(config)
        self._synced_after_profiling = False

    # ------------------------------------------------------------ profiling

    def charge_access(
        self, tensor: Tensor, mapping: TensorMapping, access: TensorAccess, now: float
    ) -> AccessCharge:
        if self.mode != PROFILING:
            return super().charge_access(tensor, mapping, access, now)
        # Pinned-memory profiling: the GPU reads host-resident pages over
        # the interconnect; faults are taken host-side and counted.
        machine = self.machine
        assert machine is not None
        page_size = machine.page_size
        charge = AccessCharge()
        link_bw = machine.platform.promote_bandwidth
        for share in mapping.shares:
            run = share.run
            nbytes = access.nbytes * share.nbytes // tensor.nbytes
            if nbytes <= 0 and share.nbytes > 0:
                nbytes = min(share.nbytes, access.nbytes)
            if nbytes <= 0:
                continue
            pages = min(run.npages, max(1, -(-nbytes // page_size)))
            charge.fault += machine.fault_handler.on_access_pass(
                run, pages, access.is_write, passes=access.passes
            )
            charge.mem_time += access.passes * nbytes / link_bw
            charge.bytes_slow += nbytes * access.passes
        return charge

    def on_step_start(self, step: int, now: float) -> float:
        stall = super().on_step_start(step, now)
        if self.mode == MANAGED and not self._synced_after_profiling:
            # Reconcile the pinned profiling copies of preallocated tensors
            # with their device copies — paid once (§V).
            self._synced_after_profiling = True
            assert self.graph is not None and self.machine is not None
            sync_bytes = sum(t.nbytes for t in self.graph.preallocated())
            stall += sync_bytes / self.machine.platform.promote_bandwidth
            tracer = self._tracer
            if tracer is not None:
                tracer.instant(
                    "two-copy-sync",
                    "gpu",
                    ts=now,
                    track="gpu",
                    nbytes=sync_bytes,
                    step=step,
                )
        return stall

    # ------------------------------------------------------------ residency

    def _resolve_case3(self, interval: int, now: float) -> float:
        """Case 3 on GPU: the interval proceeds and each kernel stalls when
        (and only when) its own operands are still in flight — waiting for
        the whole prefetch batch at the boundary would serialize transfers
        that later layers could have hidden.  §V's "must wait" happens at
        access granularity through :meth:`ensure_resident`."""
        pending = [t for t in self._prefetch.get(interval, ()) if t.finish > now]
        if pending:
            self.case3_occurrences += 1
            tracer = self._tracer
            if tracer is not None:
                tracer.instant(
                    "case3",
                    "gpu",
                    ts=now,
                    track="gpu",
                    interval=interval,
                    pending=len(pending),
                )
        return 0.0

    def ensure_resident(self, run: PageTableEntry, now: float) -> float:
        if self.mode == PROFILING:
            return 0.0  # pinned-memory accesses read host pages in place
        return super().ensure_resident(run, now)

    def evict_for(self, nbytes: int, now: float) -> float:
        """Free device memory for an on-demand promotion (residency miss)."""
        assert self.machine is not None
        ranked = self._runs_coldest_first(now)
        return evict_coldest(self, nbytes, now, ranked)

    def _runs_coldest_first(self, now: float) -> List[PageTableEntry]:
        machine = self.machine
        assert machine is not None
        resident = machine.page_table.runs_on(DeviceKind.FAST)
        if self.profile is None:
            # No profile yet (warm-up): oldest mappings first.
            return resident
        layer = self._current_layer

        def coldness(run: PageTableEntry):
            users = (
                self.allocator.users_of(run) if self.allocator is not None else set()
            )
            next_touches = []
            for tid in users:
                record = self.profile.tensors.get(tid)
                if record is None:
                    continue
                touch = record.next_touch_after(layer - 1)
                next_touches.append(
                    touch if touch is not None else self.profile.num_layers + 1
                )
            # Runs nobody will touch again sort first (most evictable).
            return -(min(next_touches) if next_touches else self.profile.num_layers + 2)

        return sorted(resident, key=coldness)
