"""The tensor-level profile Sentinel's decisions are driven by.

A :class:`Profile` is what one profiling step produces: for every tensor,
its size, lifetime in layers, and the number of main-memory accesses —
attributed per layer thanks to the OS/runtime coordination (the fault
handler counts, the runtime snapshots the counters at each ``add_layer()``
boundary).  Everything Sentinel does afterwards — co-allocation grouping,
short-lived pool sizing (``RS``), interval planning (``Tensor(MIL)``,
``T(MIL)``), hotness-ordered migration — is a pure function of this object,
so it is deliberately a plain data structure with query helpers.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import accel


@dataclass
class TensorProfile:
    """Measured characteristics of one tensor."""

    tid: int
    name: str
    nbytes: int
    alloc_layer: int
    free_layer: Optional[int]
    preallocated: bool
    #: main-memory accesses per layer, as counted by the fault handler and
    #: attributed by the runtime's layer snapshots
    touches_by_layer: Dict[int, int] = field(default_factory=dict)

    @property
    def total_touches(self) -> int:
        return sum(self.touches_by_layer.values())

    @property
    def lifetime_layers(self) -> Optional[int]:
        if self.preallocated or self.free_layer is None:
            return None
        return self.free_layer - self.alloc_layer + 1

    @property
    def short_lived(self) -> bool:
        lifetime = self.lifetime_layers
        return lifetime is not None and lifetime <= 1

    @property
    def long_lived(self) -> bool:
        return not self.short_lived

    def access_layers(self) -> Tuple[int, ...]:
        return tuple(sorted(self.touches_by_layer))

    def _sorted_touch_layers(self) -> Tuple[int, ...]:
        """Sorted touch layers, cached once queries begin.

        The cache is built on first use; planning queries only start after
        the profiler has finalized the record, so the touch set is stable
        by then (the scalar path never caches and tolerates mutation).
        """
        cached = self.__dict__.get("_touch_cache")
        if cached is None:
            cached = tuple(sorted(self.touches_by_layer))
            self.__dict__["_touch_cache"] = cached
        return cached

    def lifetime_key(self) -> Tuple[int, Optional[int]]:
        """Co-allocation grouping key: tensors sharing it live in the exact
        same layers (paper §IV-B rule 2/3)."""
        return (self.alloc_layer, self.free_layer)

    def next_touch_after(self, layer: int) -> Optional[int]:
        """First layer strictly after ``layer`` that touches the tensor."""
        if accel.vectorized_enabled():
            layers = self._sorted_touch_layers()
            index = bisect_right(layers, layer)
            return layers[index] if index < len(layers) else None
        later = [l for l in self.touches_by_layer if l > layer]
        return min(later) if later else None

    def touched_in(self, first_layer: int, last_layer: int) -> bool:
        if accel.vectorized_enabled():
            layers = self._sorted_touch_layers()
            index = bisect_right(layers, first_layer - 1)
            return index < len(layers) and layers[index] <= last_layer
        return any(
            first_layer <= l <= last_layer for l in self.touches_by_layer
        )


@dataclass
class Profile:
    """One profiling step's output for a whole graph."""

    graph_name: str
    signature: Tuple
    num_layers: int
    page_size: int
    tensors: Dict[int, TensorProfile]
    #: per-layer estimated execution time with operands in fast memory
    #: (compute/fast-bandwidth roofline) — the T(MIL) building block
    layer_fast_times: List[float]
    #: per-layer peak bytes of live short-lived tensors — the RS building block
    layer_short_lived_bytes: List[int]
    #: wall time of the profiling step itself (includes fault overhead)
    profiling_step_time: float = 0.0
    #: protection faults taken during profiling
    fault_count: int = 0
    #: peak mapped bytes under page-aligned profiling allocation
    profiled_peak_bytes: int = 0
    #: peak packed (requested) bytes — the paper's "peak memory consumption"
    packed_peak_bytes: int = 0

    # ------------------------------------------------------------- queries

    def tensor(self, tid: int) -> TensorProfile:
        return self.tensors[tid]

    def short_lived_tensors(self) -> List[TensorProfile]:
        return [t for t in self.tensors.values() if t.short_lived]

    def long_lived_tensors(self) -> List[TensorProfile]:
        return [t for t in self.tensors.values() if t.long_lived]

    @property
    def memory_overhead(self) -> float:
        """Profiling-phase footprint increase (paper: at most ~2.4%)."""
        if self.packed_peak_bytes == 0:
            return 0.0
        return self.profiled_peak_bytes / self.packed_peak_bytes - 1.0

    def reserved_short_bytes(self, interval: Sequence[int]) -> int:
        """RS for one interval: peak live short-lived bytes over its layers."""
        return max((self.layer_short_lived_bytes[l] for l in interval), default=0)

    def rs(self, interval_length: int) -> int:
        """RS(MIL): the short-lived reservation the pool needs (Eq. 1/2).

        The pool is reserved at each interval's start and shrunk as pages
        die, so what matters is the worst interval's peak — near-constant in
        MIL, as the paper observes.
        """
        from repro.core.interval import partition_layers

        return max(
            (
                self.reserved_short_bytes(interval)
                for interval in partition_layers(self.num_layers, interval_length)
            ),
            default=0,
        )

    def long_lived_bytes_touched_in(self, first_layer: int, last_layer: int) -> int:
        """Bytes of long-lived tensors accessed within a layer range —
        the migration demand ``Tensor`` of one interval."""
        return sum(
            t.nbytes
            for t in self.tensors.values()
            if t.long_lived and t.touched_in(first_layer, last_layer)
        )

    def interval_fast_time(self, interval: Sequence[int]) -> float:
        """T for one interval: training time with operands in fast memory."""
        return sum(self.layer_fast_times[l] for l in interval)

    def fast_memory_lower_bound(self) -> int:
        """The paper's lower bound on fast memory size (§IV-E).

        Peak consumption of short-lived tensors (the reservation must hold
        them — migrating them is the pathological case §IV-C exists to
        prevent) plus the largest long-lived tensor (which must fit in fast
        memory while being used).  Below this bound the runtime degrades
        sharply (paper: easily >20% loss).
        """
        short_peak = max(self.layer_short_lived_bytes, default=0)
        largest_long = max(
            (t.nbytes for t in self.tensors.values() if t.long_lived), default=0
        )
        return short_peak + largest_long

    # -------------------------------------------------------- serialization

    def to_json(self) -> str:
        """Serialize the profile (what the paper's runtime would persist so
        re-runs of the same model skip the profiling step entirely)."""
        import json

        payload = {
            "graph_name": self.graph_name,
            "signature": _signature_to_jsonable(self.signature),
            "num_layers": self.num_layers,
            "page_size": self.page_size,
            "layer_fast_times": self.layer_fast_times,
            "layer_short_lived_bytes": self.layer_short_lived_bytes,
            "profiling_step_time": self.profiling_step_time,
            "fault_count": self.fault_count,
            "profiled_peak_bytes": self.profiled_peak_bytes,
            "packed_peak_bytes": self.packed_peak_bytes,
            "tensors": [
                {
                    "tid": t.tid,
                    "name": t.name,
                    "nbytes": t.nbytes,
                    "alloc_layer": t.alloc_layer,
                    "free_layer": t.free_layer,
                    "preallocated": t.preallocated,
                    "touches_by_layer": {
                        str(layer): count
                        for layer, count in t.touches_by_layer.items()
                    },
                }
                for t in self.tensors.values()
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "Profile":
        """Inverse of :meth:`to_json`.

        The signature round-trips as nested tuples so
        :meth:`repro.dnn.graph.Graph.signature` comparisons keep working.
        """
        import json

        payload = json.loads(text)
        tensors = {}
        for record in payload["tensors"]:
            tensors[record["tid"]] = TensorProfile(
                tid=record["tid"],
                name=record["name"],
                nbytes=record["nbytes"],
                alloc_layer=record["alloc_layer"],
                free_layer=record["free_layer"],
                preallocated=record["preallocated"],
                touches_by_layer={
                    int(layer): count
                    for layer, count in record["touches_by_layer"].items()
                },
            )
        return cls(
            graph_name=payload["graph_name"],
            signature=_signature_from_jsonable(payload["signature"]),
            num_layers=payload["num_layers"],
            page_size=payload["page_size"],
            tensors=tensors,
            layer_fast_times=list(payload["layer_fast_times"]),
            layer_short_lived_bytes=list(payload["layer_short_lived_bytes"]),
            profiling_step_time=payload["profiling_step_time"],
            fault_count=payload["fault_count"],
            profiled_peak_bytes=payload["profiled_peak_bytes"],
            packed_peak_bytes=payload["packed_peak_bytes"],
        )

    def hotness_rank(self) -> Dict[int, int]:
        """tid -> rank by descending access count (0 = hottest)."""
        ordered = sorted(
            self.tensors.values(), key=lambda t: (-t.total_touches, t.tid)
        )
        return {t.tid: rank for rank, t in enumerate(ordered)}

    def plan_index(self) -> "PlanIndex":
        """The cached numpy index the vectorized planner works from.

        Built lazily on first use and memoized on the profile; planning
        only begins after the profiler finalizes, so the underlying tensor
        records are stable by then.
        """
        cached = self.__dict__.get("_plan_index")
        if cached is None:
            cached = PlanIndex(self)
            self.__dict__["_plan_index"] = cached
        return cached


class PlanIndex:
    """Array view of a :class:`Profile` for vectorized interval planning.

    The interval performance model asks the same two questions for every
    candidate interval length: "how many long-lived bytes does each
    interval touch" (``Tensor_i``, Eq. 1) and "what is each interval's peak
    short-lived reservation" (``RS``, Eq. 1).  The scalar planner answers
    them by re-scanning every tensor's touch set per interval — O(layers x
    tensors) per candidate.  This index flattens the profile once into
    ``(tensor, touch-layer)`` pair arrays so each candidate is answered
    with integer array arithmetic, which is exact regardless of evaluation
    order — the vectorized planner is byte-identical to the scalar one by
    construction.
    """

    def __init__(self, profile: Profile) -> None:
        import numpy as np

        self.num_layers = profile.num_layers
        long_lived = [t for t in profile.tensors.values() if t.long_lived]
        self.nbytes = np.asarray(
            [t.nbytes for t in long_lived], dtype=np.int64
        )
        tensor_idx: List[int] = []
        touch_layer: List[int] = []
        for index, record in enumerate(long_lived):
            for layer in record.touches_by_layer:
                # Touches outside the step's layer range fall in no
                # interval (the scalar scan skips them the same way).
                if 0 <= layer < profile.num_layers:
                    tensor_idx.append(index)
                    touch_layer.append(layer)
        self.pair_tensor = np.asarray(tensor_idx, dtype=np.int64)
        self.pair_layer = np.asarray(touch_layer, dtype=np.int64)
        self.short_lived_bytes = np.asarray(
            profile.layer_short_lived_bytes, dtype=np.int64
        )

    def interval_tensor_bytes(self, interval_length: int) -> List[int]:
        """Eq. 1's ``Tensor_i`` for every interval of one candidate MIL.

        A tensor contributes its bytes to each distinct interval it touches
        — exactly ``long_lived_bytes_touched_in`` per interval, computed
        for all intervals at once.  Pure int64 arithmetic, so the result
        matches the scalar sums bit for bit.
        """
        import numpy as np

        num_intervals = -(-self.num_layers // interval_length)
        out = np.zeros(num_intervals, dtype=np.int64)
        if self.pair_tensor.size:
            key = self.pair_tensor * num_intervals + (
                self.pair_layer // interval_length
            )
            unique = np.unique(key)
            np.add.at(
                out, unique % num_intervals, self.nbytes[unique // num_intervals]
            )
        return [int(value) for value in out]

    def interval_rs(self, interval_length: int) -> int:
        """Eq. 1's ``RS(MIL)``: the worst interval's short-lived peak."""
        import numpy as np

        if not self.short_lived_bytes.size:
            return 0
        starts = np.arange(0, self.num_layers, interval_length)
        return int(np.maximum.reduceat(self.short_lived_bytes, starts).max())


def _signature_to_jsonable(value):
    if isinstance(value, tuple):
        return {"t": [_signature_to_jsonable(item) for item in value]}
    return value


def _signature_from_jsonable(value):
    if isinstance(value, dict) and "t" in value:
        return tuple(_signature_from_jsonable(item) for item in value["t"])
    return value
