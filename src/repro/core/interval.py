"""The migration-interval performance model (paper §IV-D, Eq. 1 and 2).

A training step is partitioned into equal-length intervals of whole layers.
At each interval's start Sentinel prefetches the long-lived tensors the
*next* interval needs, overlapping the copies with computation.  The
interval length ``MIL`` trades two failure modes:

* too long — the tensors to migrate for one interval exceed what fast
  memory can hold alongside the short-lived reservation ``RS``
  (**space constraint**, Eq. 1)::

      Tensor(MIL) < S - RS(MIL)

* too short — the computation time ``T(MIL)`` of an interval is too small
  to hide the migration, exposing copy time on the critical path
  (**goal**, Eq. 2)::

      argmin_MIL ( migration_time(MIL) - T(MIL) )

The exploration is a pure function of the profile (no training steps are
spent), which is why a one-dimensional scan suffices where SwapAdvisor
needs a genetic algorithm.

One refinement over the paper's notation: Eq. 2's migration time is written
there as ``(S - RS)/BW`` (the worst case of filling all available fast
memory); the realized demand per interval is ``Tensor_i/BW``.  We score
each candidate by its worst-interval *exposed* time
``max(0, Tensor_i/BW - T_{i-1})`` — the quantity Eq. 2 minimizes — which
yields the interior optimum of Figure 5 instead of degenerating to "largest
feasible MIL".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro import accel
from repro.core.profile import Profile


def partition_layers(num_layers: int, interval_length: int) -> List[List[int]]:
    """Split ``range(num_layers)`` into consecutive chunks of ``interval_length``."""
    if num_layers <= 0:
        raise ValueError(f"need at least one layer, got {num_layers!r}")
    if interval_length <= 0:
        raise ValueError(f"interval length must be positive, got {interval_length!r}")
    layers = list(range(num_layers))
    return [
        layers[start : start + interval_length]
        for start in range(0, num_layers, interval_length)
    ]


@dataclass
class IntervalPlan:
    """The chosen partition of a step into migration intervals."""

    interval_length: int
    intervals: List[List[int]]
    reserved_short_bytes: int
    #: per-interval long-lived migration demand (bytes)
    tensor_bytes: List[int]
    #: per-interval computation time estimate (operands in fast memory)
    fast_times: List[float]
    #: model's estimate of per-step exposed migration time
    estimated_exposure: float
    feasible: bool

    @property
    def num_intervals(self) -> int:
        return len(self.intervals)

    def interval_of_layer(self, layer_index: int) -> int:
        return layer_index // self.interval_length

    def layers_of(self, interval_index: int) -> List[int]:
        return self.intervals[interval_index]


def evaluate_interval_length(
    profile: Profile,
    interval_length: int,
    fast_capacity: int,
    promote_bandwidth: float,
) -> IntervalPlan:
    """Score one candidate MIL against Eq. 1 and Eq. 2.

    Two implementations, selected by :mod:`repro.accel`: the scalar
    reference re-scans every tensor per interval; the vectorized one
    answers all intervals of a candidate at once from the profile's
    :class:`~repro.core.profile.PlanIndex`.  ``Tensor_i`` and ``RS`` are
    integer quantities (order-free, hence exact either way) and the float
    ``fast_times``/exposure sums keep the scalar association order, so
    both paths produce bit-identical plans.
    """
    intervals = partition_layers(profile.num_layers, interval_length)
    if accel.vectorized_enabled():
        index = profile.plan_index()
        rs = index.interval_rs(interval_length)
        tensor_bytes = index.interval_tensor_bytes(interval_length)
        layer_fast_times = profile.layer_fast_times
        fast_times = [
            sum(layer_fast_times[interval[0] : interval[-1] + 1])
            for interval in intervals
        ]
    else:
        rs = profile.rs(interval_length)
        tensor_bytes = [
            profile.long_lived_bytes_touched_in(interval[0], interval[-1])
            for interval in intervals
        ]
        fast_times = [profile.interval_fast_time(interval) for interval in intervals]

    available = fast_capacity - rs
    feasible = available > 0 and all(t < available for t in tensor_bytes)

    # Prefetch for interval i runs during interval i-1; the first interval
    # has no predecessor to hide behind, so its demand is fully exposed.
    exposure = tensor_bytes[0] / promote_bandwidth if tensor_bytes else 0.0
    for i in range(1, len(intervals)):
        migration_time = tensor_bytes[i] / promote_bandwidth
        exposure += max(0.0, migration_time - fast_times[i - 1])

    return IntervalPlan(
        interval_length=interval_length,
        intervals=intervals,
        reserved_short_bytes=rs,
        tensor_bytes=tensor_bytes,
        fast_times=fast_times,
        estimated_exposure=exposure,
        feasible=feasible,
    )


def choose_interval_length(
    profile: Profile,
    fast_capacity: int,
    promote_bandwidth: float,
    max_interval_length: Optional[int] = None,
) -> IntervalPlan:
    """Scan MIL candidates and return the best plan (Eq. 1 then Eq. 2).

    Candidates violating the space constraint are discarded; among the
    feasible ones the plan with the smallest estimated exposed migration
    time wins, with larger MIL as the tie-break (fewer migration calls).
    If *no* candidate is feasible (fast memory below the paper's lower
    bound), the single-layer plan is returned marked infeasible so the
    runtime can still operate, degraded.
    """
    if fast_capacity <= 0:
        raise ValueError(f"fast capacity must be positive, got {fast_capacity!r}")
    if promote_bandwidth <= 0:
        raise ValueError(
            f"promote bandwidth must be positive, got {promote_bandwidth!r}"
        )
    limit = max_interval_length or profile.num_layers
    limit = max(1, min(limit, profile.num_layers))

    best: Optional[IntervalPlan] = None
    for mil in range(1, limit + 1):
        plan = evaluate_interval_length(
            profile, mil, fast_capacity, promote_bandwidth
        )
        if not plan.feasible:
            continue
        if (
            best is None
            or plan.estimated_exposure < best.estimated_exposure
            or (
                plan.estimated_exposure == best.estimated_exposure
                and plan.interval_length > best.interval_length
            )
        ):
            best = plan
    if best is not None:
        return best
    return evaluate_interval_length(profile, 1, fast_capacity, promote_bandwidth)
