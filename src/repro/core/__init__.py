"""Sentinel: the paper's runtime system.

* :mod:`repro.core.profile` — the tensor-level profile data model.
* :mod:`repro.core.profiler` — dynamic profiling via page-aligned allocation
  and PTE poisoning, coordinated between the (simulated) OS and the runtime.
* :mod:`repro.core.interval` — the migration-interval performance model
  (Equations 1 and 2).
* :mod:`repro.core.runtime` — the Sentinel placement policy for CPU-style
  heterogeneous memory (DRAM + Optane).
* :mod:`repro.core.gpu` — Sentinel-GPU: pinned-memory profiling and
  residency-required migration.
"""

from repro.core.profile import Profile, TensorProfile
from repro.core.profiler import DynamicProfiler, ProfilingObserver
from repro.core.interval import IntervalPlan, choose_interval_length, partition_layers
from repro.core.runtime import SentinelConfig, SentinelPolicy
from repro.core.gpu import SentinelGPUPolicy
from repro.core.buckets import MAX_BUCKETS, BucketedSentinel, bucketize

__all__ = [
    "Profile",
    "TensorProfile",
    "DynamicProfiler",
    "ProfilingObserver",
    "IntervalPlan",
    "choose_interval_length",
    "partition_layers",
    "SentinelConfig",
    "SentinelPolicy",
    "SentinelGPUPolicy",
    "BucketedSentinel",
    "bucketize",
    "MAX_BUCKETS",
]
