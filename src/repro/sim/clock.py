"""Simulation clock.

All times in the simulator are measured in seconds as floats.  The clock only
moves forward; attempts to move it backwards indicate a scheduling bug in the
caller and raise immediately rather than silently corrupting the timeline.
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised when the clock would be moved backwards."""


class Clock:
    """A monotonically non-decreasing simulation clock.

    >>> clock = Clock()
    >>> clock.advance(1.5)
    1.5
    >>> clock.advance_to(2.0)
    2.0
    >>> clock.now
    2.0
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds and return the new time."""
        if delta < 0.0:
            raise ClockError(f"cannot advance clock by negative delta {delta!r}")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Move the clock forward to absolute time ``when``.

        ``when`` in the past is a no-op only if it equals the current time;
        anything earlier raises :class:`ClockError`.
        """
        if when < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now!r} to {when!r}"
            )
        self._now = when
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.9f})"
