"""Lightweight statistics collection for simulation runs.

Three primitives cover everything the experiments need:

* :class:`Counter` — a named monotonic accumulator (bytes migrated, faults...).
* :class:`Timeline` — time-binned accumulation, used to reproduce the
  bandwidth-over-time plot of Figure 9.
* :class:`StatsRegistry` — a namespace of the two, so substrate components can
  record without threading many objects through call sites.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple


class Counter:
    """A named monotonic accumulator.

    ``add`` rejects negative amounts: every quantity counted (bytes moved,
    faults taken, retries) only ever grows, and a negative delta slipping in
    would silently corrupt differential checks that re-derive counter values
    from event traces.  Use :meth:`reset` to start over.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} is monotonic; cannot add {amount!r}"
            )
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value!r})"


class Timeline:
    """Accumulates quantities into fixed-width time bins.

    Used for bandwidth traces: ``record(t, nbytes)`` adds ``nbytes`` to the
    bin containing ``t``; :meth:`series` then yields ``(bin_start, rate)``
    pairs where ``rate`` is bytes per second within the bin.
    """

    def __init__(self, bin_width: float) -> None:
        if bin_width <= 0.0:
            raise ValueError(f"bin width must be positive, got {bin_width!r}")
        self.bin_width = float(bin_width)
        self._bins: Dict[int, float] = {}

    def record(self, when: float, amount: float) -> None:
        if when < 0.0:
            raise ValueError(f"cannot record at negative time {when!r}")
        index = int(when / self.bin_width)
        self._bins[index] = self._bins.get(index, 0.0) + amount

    def record_span(self, start: float, end: float, amount: float) -> None:
        """Spread ``amount`` uniformly over the interval [start, end)."""
        if end < start:
            raise ValueError(f"span end {end!r} precedes start {start!r}")
        if end == start:
            self.record(start, amount)
            return
        rate = amount / (end - start)
        if not math.isfinite(rate):
            # Span too short for finite rate arithmetic (denormal widths):
            # treat it as an instantaneous event.
            self.record(start, amount)
            return
        first = int(start / self.bin_width)
        last = int(end / self.bin_width)
        for index in range(first, last + 1):
            bin_start = index * self.bin_width
            bin_end = bin_start + self.bin_width
            overlap = min(end, bin_end) - max(start, bin_start)
            if overlap > 0.0:
                self._bins[index] = self._bins.get(index, 0.0) + rate * overlap

    def series(self) -> List[Tuple[float, float]]:
        """Return ``(bin_start_time, amount_per_second)`` sorted by time."""
        return [
            (index * self.bin_width, total / self.bin_width)
            for index, total in sorted(self._bins.items())
        ]

    def total(self) -> float:
        return sum(self._bins.values())

    def reset(self) -> None:
        self._bins.clear()


class StatsRegistry:
    """Namespace of named counters and timelines."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._timelines: Dict[str, Timeline] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def timeline(self, name: str, bin_width: float = 0.01) -> Timeline:
        """Get or create the timeline called ``name``.

        The bin width is fixed by the first call; later calls with a different
        width raise to avoid silently mixing resolutions.
        """
        existing = self._timelines.get(name)
        if existing is None:
            self._timelines[name] = Timeline(bin_width)
            return self._timelines[name]
        if existing.bin_width != bin_width:
            raise ValueError(
                f"timeline {name!r} already exists with bin width "
                f"{existing.bin_width!r}, requested {bin_width!r}"
            )
        return existing

    def counters(self, prefix: str = "") -> Dict[str, float]:
        """Snapshot of all counter values, optionally filtered by prefix."""
        return {
            name: c.value
            for name, c in self._counters.items()
            if name.startswith(prefix)
        }

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for timeline in self._timelines.values():
            timeline.reset()
