"""Deprecated compatibility shim over :mod:`repro.obs.metrics`.

This module used to define the ad-hoc statistics primitives (``Counter``,
``Timeline``, ``StatsRegistry``).  They now live in the typed metrics
registry at :mod:`repro.obs.metrics` — alongside gauges, log-spaced
histograms, sim-clock time series, and the Prometheus/canonical-JSON
expositions — and this module only re-exports them so existing imports
keep working.

The contracts are unchanged: ``Counter.add`` still rejects negative
amounts (the monotonic guarantee the differential trace suites rely on),
``Timeline`` still bins with the same arithmetic, and ``StatsRegistry`` is
the registry class itself under its historical name — ``counter()``,
``timeline()``, ``counters()``, and ``reset()`` behave identically, and
``isinstance`` checks against either name agree.

New code should import from :mod:`repro.obs.metrics` directly; see the
deprecation note in ``docs/INTERNALS.md``.
"""

from __future__ import annotations

import warnings

from repro.obs.metrics import Counter, MetricsRegistry, Timeline

warnings.warn(
    "repro.sim.stats is deprecated; import Counter/Timeline/MetricsRegistry "
    "from repro.obs.metrics instead",
    DeprecationWarning,
    stacklevel=2,
)

#: Historical name of :class:`repro.obs.metrics.MetricsRegistry`.  A plain
#: alias (not a subclass): registries constructed under either name are the
#: same type, so components can pass them interchangeably.
StatsRegistry = MetricsRegistry

__all__ = ["Counter", "Timeline", "StatsRegistry"]
