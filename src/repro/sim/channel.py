"""Finite-bandwidth transfer channels.

A :class:`BandwidthChannel` models a resource that moves bytes at a fixed
rate and serves requests first-come-first-served — e.g. one of Sentinel's two
page-migration helper threads, the PCIe link between CPU and GPU, or the
cache-fill path of Optane's Memory Mode.

Because requests are served FIFO at a constant rate, the completion time of a
transfer is known analytically the moment it is submitted::

    start  = max(submit_time, time the previous transfer finishes)
    finish = start + bytes / bandwidth

which lets the executor overlap computation with transfers without a general
event queue: it simply compares the clock against ``transfer.finish``.

When a channel is bound to a :class:`repro.sim.engine.Engine` (via
:meth:`BandwidthChannel.bind_engine`), each submission *additionally*
schedules a :data:`~repro.sim.engine.EventKind.TRANSFER_DONE` event at the
analytic finish time, so subscribers (migration commit, prefetch
bookkeeping, cluster stats) learn about completions without polling.  The
analytic model stays the source of truth for times either way — the engine
only changes *when code runs*, never *what times it computes*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import EventTracer
    from repro.sim.engine import Engine, Event


@dataclass(frozen=True)
class Transfer:
    """A scheduled transfer on a :class:`BandwidthChannel`.

    Attributes:
        nbytes: payload size in bytes.
        submitted: simulation time the request was issued.
        start: time the channel began serving the request.
        finish: time the last byte arrives; the payload is usable from then on.
        tag: opaque caller payload (e.g. the set of pages being migrated).
        aborted: the copy died mid-flight — the channel time through
            ``finish`` was burned but the payload never became usable.
    """

    nbytes: int
    submitted: float
    start: float
    finish: float
    tag: Any = None
    aborted: bool = False

    @property
    def duration(self) -> float:
        """Service time (excluding queueing delay)."""
        return self.finish - self.start

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting behind earlier transfers."""
        return self.start - self.submitted

    def done_by(self, when: float) -> bool:
        """Whether the transfer has fully completed at time ``when``."""
        return self.finish <= when


class BandwidthChannel:
    """FIFO transfer channel with fixed bandwidth.

    Args:
        bandwidth: bytes per second; must be positive.
        name: label used in stats and error messages.
        latency: fixed per-transfer setup cost in seconds (system call,
            TLB shootdown, DMA setup...), added once per submission.
        tracer: optional :class:`repro.obs.EventTracer`; every submission
            then emits a ``channel``-category complete span on a track named
            after the channel.  ``None`` (the default) records nothing and
            costs one ``is None`` check per submission.
        metrics: optional :class:`repro.obs.metrics.MetricsRegistry`; every
            submission then observes its payload size and queueing delay
            into per-channel histograms.  ``None`` (the default) records
            nothing, same contract as ``tracer``.
    """

    def __init__(
        self,
        bandwidth: float,
        name: str = "channel",
        latency: float = 0.0,
        tracer: Optional["EventTracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ):
        if bandwidth <= 0.0:
            raise ValueError(f"channel bandwidth must be positive, got {bandwidth!r}")
        if latency < 0.0:
            raise ValueError(f"channel latency must be non-negative, got {latency!r}")
        self.bandwidth = float(bandwidth)
        self.name = name
        self.latency = float(latency)
        self.tracer = tracer
        self.metrics = metrics
        self._next_free = 0.0
        self._busy_time = 0.0
        self._blocked_time = 0.0
        self._bytes_moved = 0
        self._aborted_transfers = 0
        self._history: List[Transfer] = []
        self._engine: Optional["Engine"] = None
        self._pending_events: List["Event"] = []

    def bind_engine(self, engine: "Engine") -> None:
        """Schedule a TRANSFER_DONE event for every future submission.

        The event fires at the transfer's analytic ``finish`` time with
        payload ``{"transfer": t, "channel": self}``.  Binding changes no
        computed times — it only gives subscribers a callback at the
        instant the last byte lands.
        """
        self._engine = engine

    @property
    def engine(self) -> Optional["Engine"]:
        """The bound event engine, if any."""
        return self._engine

    @property
    def next_free(self) -> float:
        """Earliest time a new transfer could start service."""
        return self._next_free

    @property
    def bytes_moved(self) -> int:
        """Total bytes moved over the channel's lifetime."""
        return self._bytes_moved

    @property
    def busy_time(self) -> float:
        """Total time the channel spent actively transferring."""
        return self._busy_time

    @property
    def aborted_transfers(self) -> int:
        """Number of submissions that died mid-flight (injected faults)."""
        return self._aborted_transfers

    @property
    def history(self) -> List[Transfer]:
        """All transfers in submission order (shared list, do not mutate)."""
        return self._history

    def service_time(self, nbytes: int) -> float:
        """Pure transfer time for ``nbytes`` ignoring queueing."""
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes {nbytes!r}")
        return self.latency + nbytes / self.bandwidth

    def submit(
        self, nbytes: int, now: float, tag: Any = None, aborted: bool = False
    ) -> Transfer:
        """Enqueue a transfer of ``nbytes`` at time ``now`` and return it.

        Zero-byte transfers are legal and complete after ``latency``; they are
        useful as synchronization markers.  An ``aborted`` submission models
        a copy that dies mid-flight: it occupies the channel like any other
        transfer (its bytes really crossed the wire), but the caller must not
        treat its payload as delivered.
        """
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes {nbytes!r}")
        start = max(now, self._next_free)
        finish = start + self.service_time(nbytes)
        transfer = Transfer(
            nbytes=nbytes,
            submitted=now,
            start=start,
            finish=finish,
            tag=tag,
            aborted=aborted,
        )
        self._next_free = finish
        self._busy_time += finish - start
        self._bytes_moved += nbytes
        if aborted:
            self._aborted_transfers += 1
        self._history.append(transfer)
        if self._engine is not None:
            from repro.sim.engine import EventKind

            event = self._engine.schedule_at(
                finish,
                EventKind.TRANSFER_DONE,
                name=self.name,
                payload={"transfer": transfer, "channel": self},
            )
            self._pending_events.append(event)
            if len(self._pending_events) > 64:
                self._prune_fired_events()
        if self.tracer is not None:
            self.tracer.complete(
                "xfer",
                "channel",
                ts=start,
                dur=finish - start,
                track=self.name,
                nbytes=nbytes,
                queued=start - now,
                aborted=aborted,
                tag=None if tag is None else str(tag),
            )
        if self.metrics is not None:
            self.metrics.counter(f"channel.{self.name}.transfers").add(1)
            self.metrics.histogram(f"channel.{self.name}.bytes").observe(nbytes)
            self.metrics.histogram(f"channel.{self.name}.queue_delay").observe(
                start - now
            )
        return transfer

    @property
    def blocked_time(self) -> float:
        """Total time the channel was held unavailable by failure episodes."""
        return self._blocked_time

    def block(self, now: float, duration: float) -> float:
        """Hold the channel unavailable for ``duration`` seconds from ``now``.

        Models a fabric blackout (a link flap, a switch reset on a
        network-attached slow tier).  The outage takes effect *immediately*:
        a transfer whose last byte has not landed by ``now`` is suspended
        for the outage and finishes ``duration`` later (its scheduled
        ``TRANSFER_DONE`` event is re-scheduled to the new finish time), and
        no new transfer can start until the blackout ends — queued work is
        pushed back exactly the way a long transfer would push it.  A
        completion can therefore never be delivered mid-outage.

        Callers that cached completion times from in-flight transfers (the
        migration engine stamps them on page runs) must refresh them after
        a block — see :meth:`repro.mem.migration.MigrationEngine.refresh_availability`.

        Returns the time at which the channel becomes available again.
        """
        if duration < 0.0:
            raise ValueError(f"blackout duration must be >= 0, got {duration!r}")
        # Suspend everything still in flight.  FIFO service makes finish
        # times monotone over the history, so only a suffix can be live.
        for transfer in reversed(self._history):
            if transfer.finish <= now:
                break
            object.__setattr__(transfer, "finish", transfer.finish + duration)
            if transfer.start > now:
                object.__setattr__(transfer, "start", transfer.start + duration)
        self._next_free = max(now, self._next_free) + duration
        self._blocked_time += duration
        if self._engine is not None:
            rescheduled: List["Event"] = []
            for event in self._pending_events:
                if event.cancelled:
                    continue
                if event.time <= now:
                    rescheduled.append(event)
                    continue
                # The completion must not fire mid-outage: cancel the stale
                # event and schedule a fresh one at the suspended transfer's
                # new finish time, payload intact.
                event.cancel()
                transfer = event.payload.get("transfer")
                when = (
                    transfer.finish
                    if transfer is not None
                    else event.time + duration
                )
                rescheduled.append(
                    self._engine.schedule_at(
                        when, event.kind, name=event.name, payload=event.payload
                    )
                )
            self._pending_events = rescheduled
        if self.tracer is not None:
            self.tracer.complete(
                "blackout",
                "channel",
                ts=now,
                dur=duration,
                track=self.name,
                nbytes=0,
            )
        if self.metrics is not None:
            self.metrics.counter(f"channel.{self.name}.blackouts").add(1)
            self.metrics.counter(f"channel.{self.name}.blocked_time").add(duration)
        return self._next_free

    def backlog_at(self, when: float) -> float:
        """Seconds of already-queued work remaining at time ``when``."""
        return max(0.0, self._next_free - when)

    def idle_from(self, when: float) -> bool:
        """Whether the channel has no queued work at time ``when``."""
        return self._next_free <= when

    def _prune_fired_events(self) -> None:
        if self._engine is None:
            self._pending_events = []
            return
        now = self._engine.now
        self._pending_events = [
            ev for ev in self._pending_events if ev.time > now and not ev.cancelled
        ]

    def reset(self) -> None:
        """Clear all queued/recorded work (used between simulated steps).

        Every counter the channel accumulates is zeroed: the FIFO horizon
        (``next_free``), busy time, bytes moved, the aborted-transfer
        count, and the history list.  If an engine is bound, completion
        events scheduled for not-yet-finished transfers are cancelled too —
        a reset channel must not deliver ghosts of discarded work.
        """
        self._next_free = 0.0
        self._busy_time = 0.0
        self._blocked_time = 0.0
        self._bytes_moved = 0
        self._aborted_transfers = 0
        self._history = []
        for event in self._pending_events:
            event.cancel()
        self._pending_events = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BandwidthChannel(name={self.name!r}, bw={self.bandwidth:.3e}, "
            f"next_free={self._next_free:.6f})"
        )
