"""Deterministic discrete-event simulation kernel.

Until this module existed the simulator was lockstep: the executor advanced
a single :class:`~repro.sim.clock.Clock` through each layer and every
asynchronous activity (page migration, cache fills) was *accounted for*
analytically — completion times computed at submission and compared against
the clock later.  That is exact for one workload, but it cannot model two
workloads contending for the same DDR/Optane/PCIe channels, because there is
no global ordering of "what happens next" across independent timelines.

:class:`Engine` supplies that ordering:

* a heap-ordered event queue with the stable tie-break ``(time, seq)`` —
  two events at the same instant fire in scheduling order, so runs are
  reproducible to the byte;
* typed events (:class:`EventKind`) with a subscription surface, so
  observers (migration commit, Sentinel prefetch bookkeeping, cluster
  statistics) react to completions without polling;
* named :class:`Resource` objects with FIFO or priority wait queues for
  serially-shared facilities;
* process-style coroutines (:class:`Process`) for long-running activities:
  a generator yields :class:`Timeout`/:class:`WaitUntil`/:class:`Acquire`
  directives and the engine resumes it at the right simulated instant,
  interleaved with every other process on the machine.

Determinism rules (the contract the differential and golden-trace suites
pin):

1. The only time source is the engine's clock; nothing reads wall time.
2. Events fire in ``(time, seq)`` order; ``seq`` increments per schedule
   call, so identical call sequences produce identical orders.
3. Callbacks/subscribers run synchronously inside :meth:`Engine._fire`, in
   subscription order, before the next event is popped.
4. Scheduling in the past raises :class:`EngineError` instead of silently
   reordering the timeline.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro import accel
from repro.sim.clock import Clock

__all__ = [
    "Engine",
    "EngineError",
    "Event",
    "EventKind",
    "Interrupt",
    "Process",
    "Resource",
    "Timeout",
    "WaitUntil",
    "Acquire",
]


class EngineError(RuntimeError):
    """Raised on scheduling bugs: past events, deadlocks, double resumes."""


class Interrupt(Exception):
    """Base class for exceptions thrown into a process via ``interrupt()``.

    Subclass it per concern (a request timeout, a machine failure) so the
    interrupted generator — or the code that owns it — can distinguish why
    it was cancelled.  Any exception type works with
    :meth:`Process.interrupt`; deriving from this class merely documents
    the intent and lets handlers catch the whole family at once.
    """


class EventKind(enum.Enum):
    """The event taxonomy (one lane per subsystem concern).

    Attributes:
        TIMER: a plain scheduled callback (``engine.call_at/call_later``).
        RESUME: a process resuming after a yield (timeout or wait).
        TRANSFER_DONE: a :class:`~repro.sim.channel.BandwidthChannel`
            transfer's last byte arrived; payload carries ``transfer`` and
            ``channel``.  Migration commit and prefetch bookkeeping
            subscribe to this.
        GRANT: a :class:`Resource` slot was granted to a waiter.
        FAULT: an injected fault fired (chaos/migration/device); payload
            names the concern.
        PRESSURE: a pressure-governor action (reclaim, spill, watermark).
        STEP: workload lifecycle (cluster step/workload boundaries).
        SERVE: serving-layer lifecycle (job arrival, admission, shedding,
            retry, restart, completion — see :mod:`repro.serve`).
        CUSTOM: anything else a caller schedules.
    """

    TIMER = "timer"
    RESUME = "resume"
    TRANSFER_DONE = "transfer-done"
    GRANT = "grant"
    FAULT = "fault"
    PRESSURE = "pressure"
    STEP = "step"
    SERVE = "serve"
    CUSTOM = "custom"


@dataclass
class Event:
    """One scheduled occurrence.

    Attributes:
        time: absolute simulated time the event fires.
        seq: global scheduling sequence number — the deterministic
            tie-break for simultaneous events.
        kind: the :class:`EventKind` lane (drives subscriptions).
        name: short human/trace label.
        payload: free-form data for subscribers.
        callback: optional ``fn(event)`` invoked when the event fires,
            before subscribers.
        cancelled: a cancelled event stays in the heap but fires nothing.
    """

    time: float
    seq: int
    kind: EventKind
    name: str = ""
    payload: Dict[str, Any] = field(default_factory=dict)
    callback: Optional[Callable[["Event"], None]] = None
    cancelled: bool = False

    def cancel(self) -> None:
        """Prevent the event from firing (O(1); it is skipped when popped)."""
        self.cancelled = True


# --------------------------------------------------------------- directives


@dataclass(frozen=True)
class Timeout:
    """Process directive: resume after ``delay`` simulated seconds."""

    delay: float


@dataclass(frozen=True)
class WaitUntil:
    """Process directive: resume at absolute time ``when`` (>= now)."""

    when: float


@dataclass(frozen=True)
class Acquire:
    """Process directive: block until a :class:`Resource` slot is granted.

    ``priority`` orders the wait queue when the resource is in priority
    mode (lower value is served first); FIFO resources ignore it.
    """

    resource: "Resource"
    priority: int = 0


class Process:
    """A generator coroutine driven by the engine.

    The generator yields directives (a plain ``float``/``int`` is shorthand
    for :class:`Timeout`) and is resumed by the engine at the corresponding
    simulated instant.  Its ``return`` value is captured as :attr:`result`.

    A waiting process can be cancelled from outside with :meth:`interrupt`:
    the exception is thrown into the generator at its current yield point,
    so ``try/except``/``finally`` blocks inside it run normally.  A process
    terminated by an uncaught interrupt records it in :attr:`error`.
    """

    def __init__(self, engine: "Engine", gen: Generator, name: str = "proc") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        #: the uncaught exception that terminated the process, if any
        self.error: Optional[BaseException] = None
        self._waiting = False
        #: the scheduled event that will resume this process (for cancel)
        self._pending: Optional[Event] = None
        #: the resource this process is queued on (or was just granted)
        self._blocked: Optional["Resource"] = None
        #: one resume trampoline for the process's whole lifetime — the
        #: dispatch fast path hands this to the scheduler instead of
        #: closing over a fresh lambda per yield
        self._resume = self._on_resume

    def _on_resume(self, _event: "Event") -> None:
        self._step()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("waiting" if self._waiting else "ready")
        return f"Process({self.name!r}, {state})"

    def waiting_on(self) -> str:
        """Human-readable description of what the process is blocked on.

        The deadlock diagnostics quote this, so it names the concrete
        resource or event rather than just saying "waiting".
        """
        if self.done:
            return "nothing (completed)"
        if self._blocked is not None and self._pending is None:
            resource = self._blocked
            return (
                f"resource {resource.name!r} "
                f"({resource.in_use}/{resource.capacity} slots held, "
                f"{resource.waiting} queued)"
            )
        if self._pending is not None:
            event = self._pending
            if event.cancelled:
                return (
                    f"cancelled {event.kind.value} event {event.name!r} "
                    "that will never fire"
                )
            return f"{event.kind.value} event {event.name!r} at t={event.time:.9f}"
        return "nothing (ready to run)"

    # The engine calls this to advance the generator to its next directive.
    def _step(self, value: Any = None) -> None:
        if self.done:
            raise EngineError(f"process {self.name!r} resumed after completion")
        self._waiting = False
        self._pending = None
        self._blocked = None
        try:
            directive = self.gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.engine._on_process_done(self)
            return
        self._dispatch(directive)

    def interrupt(self, exc: BaseException) -> None:
        """Throw ``exc`` into the process at its current yield point.

        The process is first detached from whatever it waits on — its
        pending resume/grant event is cancelled, it is removed from any
        resource wait queue, and an already-granted-but-undelivered slot is
        returned — then the exception is delivered via ``generator.throw``.
        Three outcomes:

        * the generator catches ``exc`` and yields again — the process
          continues with the new directive;
        * the generator catches ``exc`` and returns — the process completes
          normally with that return value;
        * ``exc`` propagates out — the process terminates and records the
          exception in :attr:`error` (it is not re-raised here; the caller
          decided to cancel, so cancellation succeeding is not an error).

        A *different* exception escaping the generator is a real bug in the
        process body and is re-raised.
        """
        if self.done:
            raise EngineError(
                f"cannot interrupt process {self.name!r}: already completed"
            )
        if self._pending is not None:
            self._pending.cancel()
            if self._blocked is not None:
                # A grant event was already scheduled: the slot is counted
                # as held, so hand it back to the next waiter.
                self._blocked.release()
        elif self._blocked is not None:
            self._blocked._remove_waiter(self)
        self._pending = None
        self._blocked = None
        self._waiting = False
        try:
            directive = self.gen.throw(exc)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.engine._on_process_done(self)
            return
        except BaseException as err:
            self.done = True
            self.error = err
            self.engine._on_process_done(self)
            if err is not exc:
                raise
            return
        self._dispatch(directive)

    def _dispatch(self, directive: Any) -> None:
        engine = self.engine
        self._waiting = True
        if isinstance(directive, (int, float)):
            self._pending = engine._schedule_resume(
                float(directive), self.name, self._resume
            )
        elif isinstance(directive, Timeout):
            self._pending = engine._schedule_resume(
                directive.delay, self.name, self._resume
            )
        elif isinstance(directive, WaitUntil):
            self._pending = engine._schedule_resume_at(
                directive.when, self.name, self._resume
            )
        elif isinstance(directive, Acquire):
            self._blocked = directive.resource
            directive.resource._enqueue(self, directive.priority)
        else:
            raise EngineError(
                f"process {self.name!r} yielded unsupported directive "
                f"{directive!r}"
            )


class Resource:
    """A named serially-shared facility with a deterministic wait queue.

    Args:
        name: label used in events and error messages.
        capacity: concurrent holders allowed (>= 1).
        priority: ``False`` (default) serves waiters FIFO; ``True`` serves
            by ``(priority, arrival seq)`` — lower priority value first,
            arrival order breaking ties.

    Processes acquire with ``grant = yield Acquire(resource)`` and must
    call :meth:`release` when finished.  Each grant fires a
    :data:`EventKind.GRANT` event so observers can audit contention.
    """

    def __init__(
        self, name: str = "resource", capacity: int = 1, priority: bool = False
    ) -> None:
        if capacity < 1:
            raise ValueError(f"resource capacity must be >= 1, got {capacity!r}")
        self.name = name
        self.capacity = capacity
        self.priority_mode = priority
        self.engine: Optional[Engine] = None
        self.in_use = 0
        self.grants = 0
        self._arrivals = itertools.count()
        self._waiters: List[Tuple[int, int, Process]] = []  # (prio, arrival, proc)

    def bind_engine(self, engine: "Engine") -> None:
        """Adopt ``engine`` as the scheduler for grant events."""
        self.engine = engine

    @property
    def waiting(self) -> int:
        """Processes currently queued for a slot."""
        return len(self._waiters)

    def _enqueue(self, process: Process, priority: int) -> None:
        if self.engine is None:
            self.bind_engine(process.engine)
        key = priority if self.priority_mode else 0
        heapq.heappush(self._waiters, (key, next(self._arrivals), process))
        self._grant_free_slots()

    def _grant_free_slots(self) -> None:
        engine = self.engine
        assert engine is not None
        while self._waiters and self.in_use < self.capacity:
            _, _, process = heapq.heappop(self._waiters)
            self.in_use += 1
            self.grants += 1
            event = engine.schedule(
                0.0,
                EventKind.GRANT,
                name=self.name,
                payload={"resource": self, "process": process},
                callback=lambda _ev, p=process: p._step(self),
            )
            # Record the grant on the process so interrupt() can cancel the
            # delivery and return the slot (_blocked stays set to us).
            process._pending = event

    def _remove_waiter(self, process: Process) -> None:
        """Drop ``process`` from the wait queue (interrupt support)."""
        remaining = [entry for entry in self._waiters if entry[2] is not process]
        if len(remaining) != len(self._waiters):
            self._waiters = remaining
            heapq.heapify(self._waiters)

    def release(self) -> None:
        """Return one slot; the next waiter (if any) is granted it."""
        if self.in_use <= 0:
            raise EngineError(f"resource {self.name!r} released more than acquired")
        self.in_use -= 1
        if self._waiters and self.engine is not None:
            self._grant_free_slots()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Resource({self.name!r}, {self.in_use}/{self.capacity} in use, "
            f"{len(self._waiters)} waiting)"
        )


class Engine:
    """The discrete-event scheduler: one heap, one clock, many processes.

    Args:
        clock: time source to drive; a fresh :class:`Clock` at 0 by
            default.  The executor passes its own clock so legacy
            accounting (stats registries, tracers bound to it) keeps
            stamping correctly.
    """

    #: retired RESUME events kept for reuse (bounds allocator churn without
    #: hoarding memory when many processes block at once)
    _RESUME_POOL_LIMIT = 64

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._subscribers: Dict[EventKind, List[Callable[[Event], None]]] = {}
        self._any_subscribers: List[Callable[[Event], None]] = []
        self.fired = 0  # events actually delivered (cancelled ones excluded)
        self._processes: List[Process] = []
        #: freelist of retired RESUME Event objects (see _schedule_resume)
        self._resume_pool: List[Event] = []

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled placeholders)."""
        return len(self._heap)

    # ------------------------------------------------------------ scheduling

    def schedule(
        self,
        delay: float,
        kind: EventKind = EventKind.TIMER,
        name: str = "",
        payload: Optional[Dict[str, Any]] = None,
        callback: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        """Schedule an event ``delay`` seconds from now (>= 0)."""
        if delay < 0.0:
            raise EngineError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(
            self.clock.now + delay, kind, name=name, payload=payload, callback=callback
        )

    def schedule_at(
        self,
        when: float,
        kind: EventKind = EventKind.TIMER,
        name: str = "",
        payload: Optional[Dict[str, Any]] = None,
        callback: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        """Schedule an event at absolute time ``when`` (>= now)."""
        if when < self.clock.now:
            raise EngineError(
                f"cannot schedule at {when!r}, now is {self.clock.now!r}"
            )
        event = Event(
            time=when,
            seq=next(self._seq),
            kind=kind,
            name=name,
            payload=payload if payload is not None else {},
            callback=callback,
        )
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    # Process-resume scheduling fast path.  Each yield of every process
    # schedules exactly one RESUME event, making these by far the most
    # allocated objects in a run; retired ones are recycled through
    # ``_resume_pool`` (refilled at pop time in step()/run(), strictly
    # after the event fired, so no live reference can observe the reuse).
    # A recycled event still draws a *fresh* sequence number — the
    # ``(time, seq)`` ordering contract is untouched; only the allocation
    # is saved.  The scalar reference path builds plain Events.

    def _schedule_resume(
        self, delay: float, name: str, callback: Callable[["Event"], None]
    ) -> Event:
        """Schedule a process resume ``delay`` seconds from now (>= 0)."""
        if delay < 0.0:
            raise EngineError(f"cannot schedule into the past (delay={delay!r})")
        return self._schedule_resume_at(self.clock.now + delay, name, callback)

    def _schedule_resume_at(
        self, when: float, name: str, callback: Callable[["Event"], None]
    ) -> Event:
        """Schedule a process resume at absolute time ``when`` (>= now)."""
        if when < self.clock.now:
            raise EngineError(
                f"cannot schedule at {when!r}, now is {self.clock.now!r}"
            )
        pool = self._resume_pool
        if pool and accel.vectorized_enabled():
            event = pool.pop()
            event.time = when
            event.seq = next(self._seq)
            event.name = name
            event.callback = callback
            event.cancelled = False
        else:
            event = Event(
                time=when,
                seq=next(self._seq),
                kind=EventKind.RESUME,
                name=name,
                callback=callback,
            )
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def _retire(self, event: Event) -> None:
        """Recycle a popped RESUME event into the freelist.

        Only called after the event left the heap (fired or cancelled), at
        which point nothing holds it: the owning process either cleared
        ``_pending`` (cancel path) or replaced it while the event's own
        callback ran (resume path).  Events of other kinds — and RESUME
        events when someone subscribed to them or to everything, since a
        handler may legitimately retain what it saw — are left to the
        garbage collector.
        """
        if (
            event.kind is EventKind.RESUME
            and not self._any_subscribers
            and not self._subscribers.get(EventKind.RESUME)
            and len(self._resume_pool) < self._RESUME_POOL_LIMIT
            and accel.vectorized_enabled()
        ):
            event.callback = None
            if event.payload:
                event.payload.clear()
            self._resume_pool.append(event)

    def emit(
        self,
        kind: EventKind,
        name: str = "",
        payload: Optional[Dict[str, Any]] = None,
    ) -> Event:
        """Fire an event at the current instant, synchronously.

        For occurrences that *happen now* as a side effect of running code
        (a pressure reclaim, an injected fault) rather than being scheduled
        ahead of time: subscribers run before ``emit`` returns.  The event
        still consumes a sequence number, so emitted and scheduled events
        share one deterministic total order.
        """
        event = Event(
            time=self.clock.now,
            seq=next(self._seq),
            kind=kind,
            name=name,
            payload=payload if payload is not None else {},
        )
        self._fire(event)
        return event

    # ---------------------------------------------------------- subscription

    def subscribe(
        self, kind: Optional[EventKind], handler: Callable[[Event], None]
    ) -> None:
        """Register ``handler`` for every fired event of ``kind``.

        ``kind=None`` subscribes to *all* events (tracing bridges).
        Handlers run synchronously, in subscription order, after the
        event's own callback.
        """
        if kind is None:
            self._any_subscribers.append(handler)
        else:
            self._subscribers.setdefault(kind, []).append(handler)

    def unsubscribe(
        self, kind: Optional[EventKind], handler: Callable[[Event], None]
    ) -> None:
        """Remove a previously-registered handler (no-op if absent)."""
        bucket = (
            self._any_subscribers
            if kind is None
            else self._subscribers.get(kind, [])
        )
        if handler in bucket:
            bucket.remove(handler)

    # -------------------------------------------------------------- processes

    def process(self, gen: Generator, name: str = "proc") -> Process:
        """Adopt generator ``gen`` as a process and start it immediately.

        The first segment runs synchronously up to its first yield, exactly
        like a thread that runs until it first blocks.
        """
        proc = Process(self, gen, name=name)
        self._processes.append(proc)
        proc._step()
        return proc

    def _on_process_done(self, proc: Process) -> None:
        if proc in self._processes:
            self._processes.remove(proc)

    @property
    def active_processes(self) -> List[Process]:
        """Processes spawned and not yet completed."""
        return list(self._processes)

    # ------------------------------------------------------------------- run

    def _fire(self, event: Event) -> None:
        self.fired += 1
        if event.callback is not None:
            event.callback(event)
        for handler in self._subscribers.get(event.kind, ()):
            handler(event)
        for handler in self._any_subscribers:
            handler(event)

    def step(self) -> Optional[Event]:
        """Pop and fire the next event; returns it (None if queue empty).

        Cancelled events are discarded silently and do not count as a step.
        Same-instant pops are coalesced onto one clock position: the clock
        only moves when the popped event's time actually differs, so a
        burst of simultaneous TIMER/TRANSFER_DONE/RESUME events costs one
        advance, not one per event — with ``(time, seq)`` firing order
        unchanged.
        """
        clock = self.clock
        while self._heap:
            _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                self._retire(event)
                continue
            if event.time != clock.now:
                clock.advance_to(event.time)
            self._fire(event)
            self._retire(event)
            return event
        return None

    def run(self, until: Optional[float] = None) -> None:
        """Fire events in order until the queue empties (or past ``until``).

        With ``until`` given, events strictly after it stay queued and the
        clock is left at the later of its current value and ``until``.
        """
        clock = self.clock
        while self._heap:
            time, _, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                self._retire(event)
                continue
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            if event.time != clock.now:
                clock.advance_to(event.time)
            self._fire(event)
            self._retire(event)
        if until is not None and until > self.clock.now:
            self.clock.advance_to(until)

    def run_until_complete(self, proc: Process) -> Any:
        """Fire events until ``proc`` finishes; returns its result.

        Events scheduled beyond the process's completion stay queued (a
        transfer finishing after a step ends is next step's business).
        Raises :class:`EngineError` if the queue drains first — that is a
        deadlock: the process waits on something nobody will ever fire.
        The error names every stuck process and what it is blocked on.
        """
        heap = self._heap
        clock = self.clock
        pop = heapq.heappop
        while not proc.done:
            # Inlined step(): this loop brackets every simulated instant of
            # an engine-driven training step, so the dispatch overhead is
            # paid once per event of the whole run.
            while heap:
                _, _, event = pop(heap)
                if event.cancelled:
                    self._retire(event)
                    continue
                break
            else:
                raise EngineError(
                    f"event queue drained but process {proc.name!r} never "
                    f"completed — deadlock: {self._stuck_report()}"
                )
            if event.time != clock.now:
                clock.advance_to(event.time)
            self._fire(event)
            self._retire(event)
        return proc.result

    def _stuck_report(self) -> str:
        """One line per unfinished process naming its blocking condition."""
        if not self._processes:
            return "no processes remain (completed process resumed?)"
        return "; ".join(
            f"process {proc.name!r} is waiting on {proc.waiting_on()}"
            for proc in self._processes
        )

    def ensure_quiescent(self) -> None:
        """Raise :class:`EngineError` if any spawned process never finished.

        :meth:`run` returns silently once the event queue drains, even when
        processes remain blocked on resources or cancelled events — callers
        that expect every process to complete (the cluster and serving
        harnesses) call this afterwards to turn a silent partial run into a
        diagnosable failure naming each stuck process.
        """
        if self._processes:
            raise EngineError(
                f"event queue drained with {len(self._processes)} unfinished "
                f"process(es) — deadlock: {self._stuck_report()}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Engine(now={self.clock.now:.9f}, pending={len(self._heap)}, "
            f"fired={self.fired})"
        )
