"""Simulation primitives shared by the memory substrate.

Two execution models coexist, by design:

* **Analytic timing** — DNN training steps are a deterministic schedule of
  layers and operations, so a single :class:`Clock` advances through the
  schedule and asynchronous work (page migration, cache fills) is modelled
  as transfers on :class:`BandwidthChannel` objects whose completion times
  are computed analytically at submission.  This is exact for one workload
  and is still how every duration in the simulator is *priced*.
* **Discrete events** — :class:`Engine` (``repro.sim.engine``) supplies a
  deterministic event kernel: heap-ordered ``(time, seq)`` queue, typed
  events, named :class:`Resource` wait queues, and generator
  :class:`Process` coroutines.  The executor's step body runs as a process
  on it, which is what lets N workloads share one machine's channels and
  capacity (``repro.harness.cluster``).  The engine changes *when code
  runs*, never *what times it computes* — single-workload runs are
  byte-identical under either driver (see DESIGN.md §9).
"""

from repro.sim.clock import Clock
from repro.sim.channel import BandwidthChannel, Transfer
from repro.sim.engine import (
    Acquire,
    Engine,
    EngineError,
    Event,
    EventKind,
    Process,
    Resource,
    Timeout,
    WaitUntil,
)
#: Deprecated re-exports (``Counter``/``Timeline``/``StatsRegistry``) are
#: resolved lazily so merely importing ``repro.sim`` does not trigger the
#: shim's ``DeprecationWarning`` — only actually touching the old names does.
_DEPRECATED = {"Counter", "Timeline", "StatsRegistry"}


def __getattr__(name: str):
    if name in _DEPRECATED:
        from repro.sim import stats

        return getattr(stats, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Clock",
    "BandwidthChannel",
    "Transfer",
    "Engine",
    "EngineError",
    "Event",
    "EventKind",
    "Process",
    "Resource",
    "Acquire",
    "Timeout",
    "WaitUntil",
    "Counter",
    "Timeline",
    "StatsRegistry",
]
