"""Discrete-time simulation primitives shared by the memory substrate.

The simulator is deliberately *not* a general discrete-event engine: DNN
training steps are a deterministic schedule of layers and operations, so the
executor advances a single :class:`Clock` through the schedule and models
asynchronous work (page migration, cache fills) as transfers on
:class:`BandwidthChannel` objects whose completion times are computed
analytically at submission.
"""

from repro.sim.clock import Clock
from repro.sim.channel import BandwidthChannel, Transfer
from repro.sim.stats import Counter, Timeline, StatsRegistry

__all__ = [
    "Clock",
    "BandwidthChannel",
    "Transfer",
    "Counter",
    "Timeline",
    "StatsRegistry",
]
