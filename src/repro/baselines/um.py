"""Unified Memory: on-demand page migration on GPU fault (§VII-C).

CUDA UM moves pages from host to device when a kernel faults on them and
evicts least-recently-used pages when device memory fills.  No profiling,
no prefetching: every miss's transfer sits on the kernel's critical path,
which is why UM is the normalization floor of Figure 12.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dnn.alloc import TensorMapping
from repro.dnn.ops import TensorAccess
from repro.dnn.policy import AccessCharge, PlacementPolicy
from repro.dnn.tensor import Tensor
from repro.mem.devices import DeviceKind
from repro.mem.page import PageTableEntry


class UnifiedMemoryPolicy(PlacementPolicy):
    """On-demand residency with LRU eviction."""

    name = "unified-memory"
    requires_residency = True

    #: GPU page faults are served in ~64 KiB groups, each with a host
    #: round-trip; this is what keeps demand paging far below PCIe line rate
    FAULT_GROUP_BYTES = 64 * 1024
    FAULT_SERVICE_TIME = 25e-6

    def __init__(self) -> None:
        super().__init__()
        self._last_access: Dict[int, float] = {}

    def ensure_resident(self, run, now: float) -> float:
        on_slow = run.device is DeviceKind.SLOW and not run.in_flight
        stall = super().ensure_resident(run, now)
        if on_slow and run.initialized:
            # Fault-group servicing overhead on top of the raw transfer.
            groups = -(-run.npages * self.machine.page_size // self.FAULT_GROUP_BYTES)
            stall += groups * self.FAULT_SERVICE_TIME
        return stall

    def place(self, tensor: Tensor, now: float) -> DeviceKind:
        # UM backs fresh allocations with host memory until first GPU touch.
        return DeviceKind.SLOW

    def charge_access(
        self, tensor: Tensor, mapping: TensorMapping, access: TensorAccess, now: float
    ) -> AccessCharge:
        charge = super().charge_access(tensor, mapping, access, now)
        for share in mapping.shares:
            self._last_access[share.run.vpn] = now
        return charge

    def evict_for(self, nbytes: int, now: float) -> float:
        from repro.core.gpu import evict_coldest

        assert self.machine is not None
        resident = self.machine.page_table.runs_on(DeviceKind.FAST)
        ranked: List[PageTableEntry] = sorted(
            resident, key=lambda run: self._last_access.get(run.vpn, -1.0)
        )
        return evict_coldest(self, nbytes, now, ranked)

    def on_free(self, tensor: Tensor, mapping: TensorMapping, now: float) -> None:
        for share in mapping.shares:
            self._last_access.pop(share.run.vpn, None)
