"""vDNN: convolution-input offloading on GPU [6].

vDNN's domain knowledge is narrow by design: after a convolution layer's
forward pass it offloads that layer's *input feature map* to host memory
and prefetches it back one layer before the matching backward layer needs
it.  Everything else — weights, other activations, workspaces — must stay
on the GPU.  Two consequences the paper measures:

* it cannot express recurrent graphs (LSTM, BERT's shared-weight
  recurrence over tokens in their framing) — construction fails loudly
  (Table V's "x" entries);
* its prefetch ignores layer-time imbalance, so transfers are frequently
  exposed (Figure 13 shows ~3x more exposed migration than Sentinel-GPU).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.dnn.alloc import TensorMapping
from repro.dnn.graph import Graph, Layer, Phase
from repro.dnn.policy import PlacementPolicy, fits_fast
from repro.dnn.tensor import Tensor, TensorKind
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.page import PageTableEntry


class UnsupportedModelError(RuntimeError):
    """The model's structure is outside a baseline's domain knowledge."""


class VDNNPolicy(PlacementPolicy):
    """Offload conv-layer inputs after forward use; prefetch one layer early."""

    name = "vdnn"
    requires_residency = True

    def __init__(self) -> None:
        super().__init__()
        self._mappings: Dict[int, TensorMapping] = {}
        #: layer index -> tids to offload at that layer's end (forward)
        self._offload_at: Dict[int, List[int]] = {}
        #: layer index -> tids to prefetch at that layer's start (backward)
        self._prefetch_at: Dict[int, List[int]] = {}

    def bind(self, machine: Machine, graph: Graph) -> None:
        super().bind(machine, graph)
        family = str(graph.metadata.get("model_family", ""))
        if graph.metadata.get("recurrent") or family in ("bert", "lstm"):
            raise UnsupportedModelError(
                f"vDNN only supports feedforward CNNs; {graph.name!r} "
                "(recurrent or attention-based) is outside its domain "
                "knowledge (paper Table V)"
            )
        from repro.baselines.common import select_for_pressure

        self._offload_at.clear()
        self._prefetch_at.clear()
        # vDNN targets the input feature maps of convolution layers: in our
        # graphs those are the ACTIVATION tensors saved from a forward layer
        # and consumed by exactly one backward layer.  vDNN_dyn offloads
        # only under pressure, and only as much as the deficit requires.
        candidates = []
        for tensor in graph.step_tensors():
            if tensor.kind is not TensorKind.ACTIVATION or tensor.short_lived:
                continue
            layers = tensor.access_layers()
            if not layers or tensor.free_layer is None:
                continue
            forward_uses = [
                l for l in layers if graph.layers[l].phase is Phase.FORWARD
            ]
            backward_uses = [
                l for l in layers if graph.layers[l].phase is Phase.BACKWARD
            ]
            if not forward_uses or not backward_uses:
                continue
            candidates.append((tensor, max(forward_uses), min(backward_uses)))
        chosen = select_for_pressure(
            candidates,
            graph.peak_memory_bytes(),
            machine.fast.capacity,
            size_of=lambda c: c[0].nbytes,
        )
        for tensor, offload_layer, use_layer in chosen:
            self._offload_at.setdefault(offload_layer, []).append(tensor.tid)
            self._prefetch_at.setdefault(max(0, use_layer - 1), []).append(tensor.tid)

    # ------------------------------------------------------------ placement

    def place(self, tensor: Tensor, now: float) -> DeviceKind:
        assert self.machine is not None
        # Everything lives on the GPU if it fits; only offloaded feature
        # maps ever leave.
        if fits_fast(self.machine, tensor.nbytes):
            return DeviceKind.FAST
        return DeviceKind.SLOW

    def on_alloc(self, tensor: Tensor, mapping: TensorMapping, now: float) -> None:
        self._mappings[tensor.tid] = mapping

    def on_free(self, tensor: Tensor, mapping: TensorMapping, now: float) -> None:
        self._mappings.pop(tensor.tid, None)

    # -------------------------------------------------------------- schedule

    def on_layer_start(self, layer: Layer, now: float) -> float:
        runs = self._runs(self._prefetch_at.get(layer.index, ()), DeviceKind.SLOW)
        if runs:
            assert self.machine is not None
            self.machine.migration.promote_each(runs, now, tag="vdnn-prefetch")
        return 0.0

    def on_layer_end(self, layer: Layer, now: float) -> float:
        runs = self._runs(self._offload_at.get(layer.index, ()), DeviceKind.FAST)
        if runs:
            assert self.machine is not None
            self.machine.migration.demote_each(runs, now, tag="vdnn-offload")
        return 0.0

    def _runs(self, tids, device: DeviceKind) -> List[PageTableEntry]:
        runs: List[PageTableEntry] = []
        seen: Set[int] = set()
        for tid in tids:
            mapping = self._mappings.get(tid)
            if mapping is None:
                continue
            for share in mapping.shares:
                run = share.run
                if run.vpn in seen or run.in_flight or run.pinned:
                    continue
                seen.add(run.vpn)
                if run.device is device:
                    runs.append(run)
        return runs

    # ------------------------------------------------------------ residency

    def evict_for(self, nbytes: int, now: float) -> float:
        """vDNN has no general eviction: only offloadable feature maps may
        leave the GPU.  Demote any fast-resident offload targets; if that is
        not enough the model simply does not fit (Table V's batch limit)."""
        from repro.core.gpu import evict_coldest

        assert self.machine is not None
        offloadable: List[PageTableEntry] = []
        for tids in self._offload_at.values():
            offloadable.extend(self._runs(tids, DeviceKind.FAST))
        return evict_coldest(self, nbytes, now, offloadable)
