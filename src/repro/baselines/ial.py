"""IAL: the improved active-list tiered-memory manager of [19].

The kernel approach Sentinel compares against on CPU: pages promoted to
DRAM when referenced repeatedly and tracked on a FIFO active list; when
DRAM fills, the oldest promoted pages are demoted back to PMM.  It is
application-agnostic, which is precisely its weakness on DNN training:

* it promotes *short-lived* pages that will be dead before the promotion
  even completes (bandwidth waste — the paper's Figure 9 shows IAL leaving
  most traffic on slow memory),
* page-level decisions suffer false sharing under arena allocation,
* promotion is reactive — a page earns its way up only after paying slow
  accesses, where Sentinel's profile-driven prefetch pays none.

IAL runs on the :class:`~repro.dnn.arena.ArenaAllocator` (the TensorFlow
default): pages persist across steps, so a page promoted while hosting one
step's tensor is still DRAM-resident when the arena hands the same chunk to
the next step's tensor.  That page-reuse persistence — not any tensor-level
knowledge — is what lets the kernel approach perform at all here.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.dnn.alloc import Allocator, TensorMapping
from repro.dnn.arena import ArenaAllocator
from repro.dnn.graph import Graph
from repro.dnn.ops import TensorAccess
from repro.dnn.policy import AccessCharge, PlacementPolicy
from repro.dnn.tensor import Tensor
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.page import PageTableEntry


class IALPolicy(PlacementPolicy):
    """FIFO active-list promotion/demotion over persistent arena pages."""

    name = "ial"
    requires_residency = False

    #: keep a slice of fast memory free so promotions are always admissible
    HEADROOM_FRACTION = 0.05

    #: references a run needs before it is promoted: the active list requires
    #: a page on the inactive list to be referenced again (and scans sample
    #: references), so early streaming passes do not promote
    PROMOTION_THRESHOLD = 1

    def __init__(self) -> None:
        super().__init__()
        # FIFO of promoted runs: insertion order = promotion order.
        self._active: "OrderedDict[int, PageTableEntry]" = OrderedDict()
        self._touch_counts: dict = {}
        self._scan_queue: "OrderedDict[int, PageTableEntry]" = OrderedDict()

    def bind(self, machine: Machine, graph: Graph) -> None:
        super().bind(machine, graph)
        self._active.clear()
        self._touch_counts.clear()
        self._scan_queue.clear()

    def make_allocator(self) -> Allocator:
        assert self.machine is not None
        return ArenaAllocator(self.machine, self.place)

    def place(self, tensor: Tensor, now: float) -> DeviceKind:
        # Fresh arena slabs land on PMM; DRAM residency is earned through
        # the active list (and persists with the pages).
        return DeviceKind.SLOW

    # ------------------------------------------------------------ promotion

    def _note_candidate(self, run: PageTableEntry) -> None:
        if run.device is not DeviceKind.SLOW or run.in_flight or run.pinned:
            return
        count = self._touch_counts.get(run.vpn, 0) + 1
        self._touch_counts[run.vpn] = count
        if count >= self.PROMOTION_THRESHOLD and run.vpn not in self._scan_queue:
            self._scan_queue[run.vpn] = run

    def charge_access(
        self, tensor: Tensor, mapping: TensorMapping, access: TensorAccess, now: float
    ) -> AccessCharge:
        charge = super().charge_access(tensor, mapping, access, now)
        # Reference-triggered candidacy, like the kernel's NUMA-balancing
        # hint faults: every touched slow run becomes a promotion candidate,
        # regardless of how useful promoting it will be — that obliviousness
        # is the baseline's defining behaviour.
        for share in mapping.shares:
            self._note_candidate(share.run)
        self._drain_scan_queue(now)
        return charge

    def on_layer_end(self, layer, now: float) -> float:
        self._drain_scan_queue(now)
        return 0.0

    def _drain_scan_queue(self, now: float) -> None:
        machine = self.machine
        assert machine is not None
        if not self._scan_queue:
            return
        page_size = machine.page_size
        headroom = int(machine.fast.capacity * self.HEADROOM_FRACTION)
        for vpn, run in list(self._scan_queue.items()):
            del self._scan_queue[vpn]
            if (
                vpn not in machine.page_table
                or run.device is not DeviceKind.SLOW
                or run.in_flight
            ):
                continue
            nbytes = run.npages * page_size
            self._evict_to_fit(nbytes + headroom, now)
            if not machine.fast.fits(nbytes):
                continue  # eviction still draining; rediscovered next touch
            _, scheduled, _ = machine.migration.promote([run], now, tag="ial")
            for promoted in scheduled:
                self._active[promoted.vpn] = promoted
                self._touch_counts.pop(promoted.vpn, None)

    def _evict_to_fit(self, nbytes: int, now: float) -> None:
        """Demote FIFO-oldest active runs until ``nbytes`` could fit."""
        machine = self.machine
        assert machine is not None
        victims = []
        projected_free = machine.fast.free
        while projected_free < nbytes and self._active:
            vpn, run = self._active.popitem(last=False)
            if (
                vpn not in machine.page_table
                or run.device is not DeviceKind.FAST
                or run.in_flight
            ):
                continue
            victims.append(run)
            projected_free += run.npages * machine.page_size
        if victims:
            _, scheduled = machine.migration.demote(victims, now, tag="ial-evict")
            scheduled_vpns = {run.vpn for run in scheduled}
            if len(scheduled_vpns) != len(victims):
                # A refused/aborted eviction leaves victims resident on fast
                # memory; put them back at the head of the FIFO so they stay
                # first in line for the next eviction attempt.
                for run in reversed(victims):
                    if run.vpn not in scheduled_vpns:
                        self._active[run.vpn] = run
                        self._active.move_to_end(run.vpn, last=False)
