"""AutoTM: offline placement planning with exposed movement [7].

AutoTM formulates tensor placement/movement as an integer linear program
over a *static* profile (operation times collected at compile time) and
executes the resulting schedule.  We implement the standard LP-relaxation
view of that program: per layer, choose the fast-resident tensor set by
greedy benefit density (benefit per byte), which is the fractional-knapsack
optimum and what ILP rounding converges to for this structure; movement
between consecutive layers follows the plan.

The two behaviours the paper criticizes are reproduced faithfully:

* on CPU, **all movement is exposed** — AutoTM's TensorFlow port moves
  tensors synchronously at layer boundaries (§VII-B);
* newly produced outputs are placed per the static plan (slow unless the
  plan wants them), which hurts when outputs are large (§VII-B).

The GPU variant (``exposed=False``) issues the same plan's movements
asynchronously, as the paper's §VII-C implementation does; misses then
stall at access time instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.dnn.alloc import TensorMapping
from repro.dnn.graph import Graph, Layer
from repro.dnn.policy import PlacementPolicy, fits_fast
from repro.dnn.tensor import Tensor
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.page import PageTableEntry

#: Fraction of fast memory the plan may fill; the rest absorbs temporaries.
PLAN_CAPACITY_FRACTION = 0.7


def plan_fast_sets(graph: Graph, capacity: int) -> List[Set[int]]:
    """Per-layer fast-resident tensor sets via greedy benefit density.

    Benefit of keeping tensor ``t`` fast during layer ``l`` is its traffic
    there (touches x bytes); density is benefit per byte, i.e. simply the
    touch count — so the greedy order is hottest-in-layer first, subject to
    the capacity bound.
    """
    budget = int(capacity * PLAN_CAPACITY_FRACTION)
    plans: List[Set[int]] = []
    for layer in graph.layers:
        candidates = []
        for tensor in layer.tensors():
            if tensor.short_lived:
                continue  # temps live outside the plan
            touches = tensor.layer_touches.get(layer.index, 0)
            if touches > 0:
                candidates.append((touches, tensor.tid, tensor.nbytes))
        candidates.sort(key=lambda c: (-c[0], c[1]))
        chosen: Set[int] = set()
        used = 0
        for touches, tid, nbytes in candidates:
            if used + nbytes <= budget:
                chosen.add(tid)
                used += nbytes
        plans.append(chosen)
    return plans


class AutoTMPolicy(PlacementPolicy):
    """Executes the offline placement plan."""

    name = "autotm"

    def __init__(self, exposed: Optional[bool] = None) -> None:
        super().__init__()
        #: None = exposed on CPU, asynchronous on GPU (paper's two ports)
        self._exposed_override = exposed
        self.exposed = True
        self._plans: List[Set[int]] = []
        self._mappings: Dict[int, TensorMapping] = {}

    def bind(self, machine: Machine, graph: Graph) -> None:
        super().bind(machine, graph)
        self.exposed = (
            self._exposed_override
            if self._exposed_override is not None
            else not self.residency
        )
        self._plans = plan_fast_sets(graph, machine.fast.capacity)
        self._offload_at: Dict[int, List[int]] = {}
        self._prefetch_at: Dict[int, List[int]] = {}
        if not self.exposed:
            self._build_gap_schedule(machine, graph)

    def _build_gap_schedule(self, machine: Machine, graph: Graph) -> None:
        """GPU schedule: the ILP effectively offloads every forward-saved
        tensor across its forward->backward gap and starts each fetch early
        enough to hide the transfer behind computation — the lead is the
        transfer time divided by the mean layer time."""
        from repro.core.profiler import estimate_layer_fast_times
        from repro.dnn.graph import Phase

        from repro.baselines.common import select_for_pressure

        layer_times = estimate_layer_fast_times(graph, machine)
        mean_layer = max(1e-9, sum(layer_times) / len(layer_times))
        bandwidth = machine.platform.promote_bandwidth
        candidates = []
        for tensor in graph.step_tensors():
            if tensor.short_lived:
                continue
            layers = tensor.access_layers()
            forward = [l for l in layers if graph.layers[l].phase is Phase.FORWARD]
            backward = [l for l in layers if graph.layers[l].phase is Phase.BACKWARD]
            if not forward or not backward or min(backward) <= max(forward) + 1:
                continue
            candidates.append((tensor, max(forward), min(backward)))
        # The ILP offloads only what the deficit requires, preferring the
        # savings that are cheapest to schedule (largest tensors first).
        chosen = select_for_pressure(
            candidates,
            graph.peak_memory_bytes(),
            machine.fast.capacity,
            size_of=lambda c: c[0].nbytes,
        )
        for tensor, offload_layer, use_layer in chosen:
            transfer = tensor.nbytes / bandwidth
            lead = min(10, 1 + int(transfer / mean_layer + 1))
            self._offload_at.setdefault(offload_layer, []).append(tensor.tid)
            prefetch_layer = max(0, use_layer - lead)
            self._prefetch_at.setdefault(prefetch_layer, []).append(tensor.tid)

    # ------------------------------------------------------------ placement

    def place(self, tensor: Tensor, now: float) -> DeviceKind:
        assert self.machine is not None
        if tensor.short_lived:
            return (
                DeviceKind.FAST
                if fits_fast(self.machine, tensor.nbytes)
                else DeviceKind.SLOW
            )
        wanted = (
            not tensor.preallocated
            and tensor.alloc_layer < len(self._plans)
            and tensor.tid in self._plans[tensor.alloc_layer]
        )
        if wanted and fits_fast(self.machine, tensor.nbytes):
            return DeviceKind.FAST
        return DeviceKind.SLOW

    def on_alloc(self, tensor: Tensor, mapping: TensorMapping, now: float) -> None:
        self._mappings[tensor.tid] = mapping

    def on_free(self, tensor: Tensor, mapping: TensorMapping, now: float) -> None:
        self._mappings.pop(tensor.tid, None)

    # -------------------------------------------------------------- schedule

    def on_layer_start(self, layer: Layer, now: float) -> float:
        machine = self.machine
        assert machine is not None
        if not self.exposed:
            runs = self._runs_for(
                self._prefetch_at.get(layer.index, ()), DeviceKind.SLOW, now
            )
            if runs:
                machine.migration.promote_each(runs, now, tag="autotm-prefetch")
            return 0.0
        if layer.index >= len(self._plans):
            return 0.0
        wanted = self._plans[layer.index]
        demote_runs = self._runs_for(
            [tid for tid in self._mappings if tid not in wanted],
            DeviceKind.FAST,
            now,
        )
        promote_runs = self._runs_for(
            [tid for tid in wanted if tid in self._mappings],
            DeviceKind.SLOW,
            now,
        )
        finish = now
        if demote_runs:
            transfer, _ = machine.migration.demote(demote_runs, now, tag="autotm")
            if transfer is not None:
                finish = max(finish, transfer.finish)
        if promote_runs:
            # Wait for evictions to free space (synchronous movement).
            machine.migration.sync(finish)
            transfer, _, _ = machine.migration.promote(
                promote_runs, finish, tag="autotm"
            )
            if transfer is not None:
                finish = max(finish, transfer.finish)
        if finish > now:
            machine.migration.sync(finish)
            return finish - now
        return 0.0

    def on_layer_end(self, layer: Layer, now: float) -> float:
        if self.exposed:
            return 0.0
        machine = self.machine
        assert machine is not None
        runs = self._runs_for(
            self._offload_at.get(layer.index, ()), DeviceKind.FAST, now
        )
        if runs:
            machine.migration.demote_each(runs, now, tag="autotm-offload")
        return 0.0

    def _runs_for(
        self, tids, device: DeviceKind, now: float
    ) -> List[PageTableEntry]:
        runs: List[PageTableEntry] = []
        seen: Set[int] = set()
        for tid in tids:
            mapping = self._mappings.get(tid)
            if mapping is None or mapping.tensor.short_lived:
                continue
            for share in mapping.shares:
                run = share.run
                if run.vpn in seen or run.in_flight or run.pinned:
                    continue
                seen.add(run.vpn)
                if run.device is device:
                    runs.append(run)
        return runs

    # ------------------------------------------------------------ residency

    def evict_for(self, nbytes: int, now: float) -> float:
        """GPU miss path: demote runs the current plan does not want."""
        from repro.core.gpu import evict_coldest

        assert self.machine is not None
        resident = self.machine.page_table.runs_on(DeviceKind.FAST)
        return evict_coldest(self, nbytes, now, resident)
