"""Capuchin: tensor swap with recomputation fallback on GPU [9].

Capuchin observes the access pattern dynamically (a measured step, like
Sentinel) and then, per saved tensor, picks the cheaper of:

* **swap** — offload after the last forward use, prefetch before the first
  backward use (hidden if the intervening layers are long enough);
* **recompute** — discard the tensor after forward use and recompute it
  from its inputs when the backward pass needs it, paying compute instead
  of transfer.

The paper's measurement: recomputation costs Capuchin ~11% of step time —
time Sentinel does not spend, because co-allocation and interval-planned
prefetching keep its transfers hidden.  We reproduce the decision rule and
charge recomputation as compute stall via the migration engine's
discard/materialize primitives (no bandwidth is spent on either side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.dnn.alloc import TensorMapping
from repro.dnn.graph import Graph, Layer, Phase
from repro.dnn.policy import AccessCharge, PlacementPolicy, fits_fast
from repro.dnn.ops import TensorAccess
from repro.dnn.tensor import Tensor
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.page import PageTableEntry


@dataclass(frozen=True)
class _Decision:
    tid: int
    action: str  # "swap" | "recompute"
    offload_layer: int
    use_layer: int
    recompute_cost: float


class CapuchinPolicy(PlacementPolicy):
    """Swap/recompute hybrid with dynamically profiled decisions."""

    name = "capuchin"
    requires_residency = True

    #: recomputing a tensor re-runs its producing layer's forward work
    RECOMPUTE_FRACTION = 1.0

    #: share of managed tensors with recompute-feasible (cheap,
    #: single-input) producers — BN/activation saves, not conv outputs
    RECOMPUTE_ELIGIBLE_FRACTION = 0.35

    def __init__(self) -> None:
        super().__init__()
        self._decisions: Dict[int, _Decision] = {}
        self._offload_at: Dict[int, List[_Decision]] = {}
        self._prefetch_at: Dict[int, List[_Decision]] = {}
        self._mappings: Dict[int, TensorMapping] = {}
        self._recomputed_this_step: Set[int] = set()
        self.recompute_time = 0.0

    def bind(self, machine: Machine, graph: Graph) -> None:
        super().bind(machine, graph)
        from repro.core.profiler import estimate_layer_fast_times

        from repro.baselines.common import select_for_pressure

        self._decisions.clear()
        self._offload_at.clear()
        self._prefetch_at.clear()
        layer_times = estimate_layer_fast_times(graph, machine)
        bandwidth = machine.platform.promote_bandwidth
        candidates = []
        for tensor in graph.step_tensors():
            if tensor.short_lived:
                continue
            layers = tensor.access_layers()
            forward = [l for l in layers if graph.layers[l].phase is Phase.FORWARD]
            backward = [l for l in layers if graph.layers[l].phase is Phase.BACKWARD]
            if not forward or not backward or min(backward) <= max(forward) + 1:
                continue
            candidates.append((tensor, max(forward), min(backward)))
        # Capuchin's measured pass manages only enough tensors to relieve
        # the observed pressure, preferring the widest forward->backward
        # gaps (cheapest to hide, first to be chosen in the paper).
        chosen = select_for_pressure(
            candidates,
            graph.peak_memory_bytes(),
            machine.fast.capacity,
            size_of=lambda c: c[0].nbytes,
            priority=lambda c: -(c[2] - c[1]) * c[0].nbytes,
        )
        # Recomputation is only *feasible* for tensors whose producers are
        # cheap, single-input ops (BN/activation outputs); convolution and
        # matmul outputs would drag their whole input chain back in.  In
        # our graphs those are the auxiliary saved intermediates, a bounded
        # share of the candidates.
        recompute_budget = int(len(chosen) * self.RECOMPUTE_ELIGIBLE_FRACTION)
        recomputed = 0
        for tensor, offload_layer, use_layer in chosen:
            transfer = tensor.nbytes / bandwidth
            # Prefetch is issued one layer ahead (Capuchin's access-pattern
            # trigger); what the preceding layer cannot hide is exposed.
            hidden = layer_times[use_layer - 1]
            swap_exposure = max(0.0, transfer - hidden)
            recompute_cost = layer_times[tensor.alloc_layer] * self.RECOMPUTE_FRACTION
            action = "swap" if swap_exposure <= recompute_cost else "recompute"
            if action == "recompute":
                if recomputed >= recompute_budget:
                    action = "swap"
                else:
                    recomputed += 1
            decision = _Decision(
                tid=tensor.tid,
                action=action,
                offload_layer=offload_layer,
                use_layer=use_layer,
                recompute_cost=recompute_cost,
            )
            self._decisions[tensor.tid] = decision
            self._offload_at.setdefault(offload_layer, []).append(decision)
            self._prefetch_at.setdefault(max(0, use_layer - 1), []).append(decision)

    # ------------------------------------------------------------ execution

    def place(self, tensor: Tensor, now: float) -> DeviceKind:
        assert self.machine is not None
        if fits_fast(self.machine, tensor.nbytes):
            return DeviceKind.FAST
        return DeviceKind.SLOW

    def on_alloc(self, tensor: Tensor, mapping: TensorMapping, now: float) -> None:
        self._mappings[tensor.tid] = mapping

    def on_free(self, tensor: Tensor, mapping: TensorMapping, now: float) -> None:
        self._mappings.pop(tensor.tid, None)

    def on_step_start(self, step: int, now: float) -> float:
        self._recomputed_this_step.clear()
        return 0.0

    def on_layer_end(self, layer: Layer, now: float) -> float:
        machine = self.machine
        assert machine is not None
        swap_runs: List[PageTableEntry] = []
        for decision in self._offload_at.get(layer.index, ()):
            mapping = self._mappings.get(decision.tid)
            if mapping is None:
                continue
            for share in mapping.shares:
                run = share.run
                if run.in_flight or run.pinned:
                    continue
                if run.device is not DeviceKind.FAST:
                    continue
                if decision.action == "swap":
                    swap_runs.append(run)
                else:
                    machine.migration.discard(run, now)
        if swap_runs:
            machine.migration.demote_each(swap_runs, now, tag="capuchin-swap")
        return 0.0

    def on_layer_start(self, layer: Layer, now: float) -> float:
        machine = self.machine
        assert machine is not None
        runs: List[PageTableEntry] = []
        for decision in self._prefetch_at.get(layer.index, ()):
            if decision.action != "swap":
                continue
            mapping = self._mappings.get(decision.tid)
            if mapping is None:
                continue
            runs.extend(
                share.run
                for share in mapping.shares
                if share.run.device is DeviceKind.SLOW
                and not share.run.in_flight
                and not share.run.pinned
            )
        if runs:
            machine.migration.promote_each(runs, now, tag="capuchin-prefetch")
        return 0.0

    # --------------------------------------------------------- recompute hit

    def charge_access(
        self, tensor: Tensor, mapping: TensorMapping, access: TensorAccess, now: float
    ) -> AccessCharge:
        decision = self._decisions.get(tensor.tid)
        if (
            decision is not None
            and decision.action == "recompute"
            and tensor.tid not in self._recomputed_this_step
            and self._is_discarded(mapping)
        ):
            stall = self._recompute(decision, mapping, now)
            charge = super().charge_access(tensor, mapping, access, now + stall)
            charge.stall += stall
            return charge
        return super().charge_access(tensor, mapping, access, now)

    @staticmethod
    def _is_discarded(mapping: TensorMapping) -> bool:
        return any(
            share.run.device is DeviceKind.SLOW and not share.run.in_flight
            for share in mapping.shares
        )

    def _recompute(
        self, decision: _Decision, mapping: TensorMapping, now: float
    ) -> float:
        """Materialize a discarded tensor by recomputation (compute stall)."""
        machine = self.machine
        assert machine is not None
        stall = 0.0
        for share in mapping.shares:
            run = share.run
            if run.device is not DeviceKind.SLOW or run.in_flight:
                continue
            if not machine.migration.materialize(run, now + stall):
                stall += self.evict_for(run.npages * machine.page_size, now + stall)
                if not machine.migration.materialize(run, now + stall):
                    # Out of options: fall back to a regular (priced) promote
                    # via the residency path later.
                    continue
        stall += decision.recompute_cost
        self.recompute_time += decision.recompute_cost
        self._recomputed_this_step.add(decision.tid)
        return stall

    def evict_for(self, nbytes: int, now: float) -> float:
        from repro.core.gpu import evict_coldest

        assert self.machine is not None
        resident = self.machine.page_table.runs_on(DeviceKind.FAST)
        return evict_coldest(self, nbytes, now, resident)
