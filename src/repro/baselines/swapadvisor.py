"""SwapAdvisor: genetic-algorithm swap planning [8].

SwapAdvisor searches the joint space of memory allocation and swap
scheduling with a genetic algorithm over simulated execution.  Per the
paper's critique, the search is *slow* (30+ minutes of planning that can
exceed short training jobs) and its objective is training time, not memory
minimization, so it swaps less aggressively than Sentinel.

Our genome is one gene per swappable (long-lived, step-allocated) tensor:
``(swap?, prefetch_lead)``; fitness is an analytic step-time estimate
(exposed-transfer model plus an infeasibility penalty when the resident set
overflows device memory).  The GA is seeded and budgeted, so runs are
deterministic and the planner's limited budget — the realistic handicap —
is explicit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dnn.alloc import TensorMapping
from repro.dnn.graph import Graph, Layer, Phase
from repro.dnn.policy import PlacementPolicy, fits_fast
from repro.dnn.tensor import Tensor
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.page import PageTableEntry

MAX_PREFETCH_LEAD = 4


@dataclass(frozen=True)
class _Candidate:
    """A swappable tensor with the schedule anchors the GA plans around."""

    tid: int
    nbytes: int
    offload_layer: int  # last forward touch
    use_layer: int  # first backward touch


def _find_candidates(graph: Graph) -> List[_Candidate]:
    candidates = []
    for tensor in graph.step_tensors():
        if tensor.short_lived:
            continue
        layers = tensor.access_layers()
        forward = [l for l in layers if graph.layers[l].phase is Phase.FORWARD]
        backward = [l for l in layers if graph.layers[l].phase is Phase.BACKWARD]
        if forward and backward and min(backward) > max(forward) + 1:
            candidates.append(
                _Candidate(
                    tid=tensor.tid,
                    nbytes=tensor.nbytes,
                    offload_layer=max(forward),
                    use_layer=min(backward),
                )
            )
    return candidates


@dataclass
class SwapPlan:
    """GA output: which tensors swap, and how early each prefetch starts."""

    swap: Dict[int, int]  # tid -> prefetch lead (layers before first use)
    fitness: float


class SwapAdvisorPolicy(PlacementPolicy):
    """Executes the GA-selected swap plan on GPU."""

    name = "swapadvisor"
    requires_residency = True

    def __init__(
        self,
        seed: int = 7,
        population: int = 24,
        generations: int = 12,
    ) -> None:
        super().__init__()
        if population < 2 or generations < 1:
            raise ValueError("GA needs population >= 2 and generations >= 1")
        self.seed = seed
        self.population = population
        self.generations = generations
        self.plan: Optional[SwapPlan] = None
        self._candidates: List[_Candidate] = []
        self._mappings: Dict[int, TensorMapping] = {}
        self._offload_at: Dict[int, List[int]] = {}
        self._prefetch_at: Dict[int, List[int]] = {}

    # -------------------------------------------------------------- planning

    def bind(self, machine: Machine, graph: Graph) -> None:
        super().bind(machine, graph)
        from repro.baselines.common import select_for_pressure

        # Restrict the genome to a pressure-proportional candidate pool (the
        # GA's fitness would steer there anyway; this keeps planning fast
        # and small workloads untouched).
        self._candidates = select_for_pressure(
            _find_candidates(graph),
            graph.peak_memory_bytes(),
            machine.fast.capacity,
            size_of=lambda c: c.nbytes,
        )
        self.plan = self._run_ga(machine, graph)
        self._offload_at.clear()
        self._prefetch_at.clear()
        by_tid = {c.tid: c for c in self._candidates}
        for tid, lead in self.plan.swap.items():
            candidate = by_tid[tid]
            self._offload_at.setdefault(candidate.offload_layer, []).append(tid)
            prefetch_layer = max(0, candidate.use_layer - lead)
            self._prefetch_at.setdefault(prefetch_layer, []).append(tid)

    def _estimate(
        self,
        genome: Sequence[Tuple[bool, int]],
        machine: Machine,
        layer_times: List[float],
    ) -> float:
        """Analytic step time for one genome (the GA's fitness)."""
        capacity = machine.fast.capacity
        bandwidth = machine.platform.promote_bandwidth
        base = sum(layer_times)
        resident_extra = 0
        exposure = 0.0
        for (swap, lead), candidate in zip(genome, self._candidates):
            if not swap:
                # Stays on GPU across the forward->backward gap.
                resident_extra += candidate.nbytes
                continue
            transfer = candidate.nbytes / bandwidth
            start = max(0, candidate.use_layer - lead)
            hidden = sum(layer_times[start : candidate.use_layer])
            exposure += 2 * max(0.0, transfer - hidden)  # out and back in
        over = resident_extra - capacity * 0.5
        penalty = max(0.0, over) / bandwidth * 4.0
        return base + exposure + penalty

    def _run_ga(self, machine: Machine, graph: Graph) -> SwapPlan:
        from repro.core.profiler import estimate_layer_fast_times

        rng = random.Random(self.seed)
        layer_times = estimate_layer_fast_times(graph, machine)
        n = len(self._candidates)
        if n == 0:
            return SwapPlan(swap={}, fitness=sum(layer_times))

        def random_genome() -> List[Tuple[bool, int]]:
            return [
                (rng.random() < 0.5, rng.randint(1, MAX_PREFETCH_LEAD))
                for _ in range(n)
            ]

        def mutate(genome: List[Tuple[bool, int]]) -> List[Tuple[bool, int]]:
            out = list(genome)
            index = rng.randrange(n)
            swap, lead = out[index]
            if rng.random() < 0.5:
                out[index] = (not swap, lead)
            else:
                out[index] = (swap, rng.randint(1, MAX_PREFETCH_LEAD))
            return out

        def crossover(a, b) -> List[Tuple[bool, int]]:
            point = rng.randrange(1, n) if n > 1 else 0
            return list(a[:point]) + list(b[point:])

        population = [random_genome() for _ in range(self.population)]
        scored = [
            (self._estimate(g, machine, layer_times), g) for g in population
        ]
        for _ in range(self.generations):
            scored.sort(key=lambda item: item[0])
            elite = [g for _, g in scored[: max(2, self.population // 4)]]
            children = list(elite)
            while len(children) < self.population:
                a, b = rng.sample(elite, 2) if len(elite) >= 2 else (elite[0], elite[0])
                child = crossover(a, b)
                if rng.random() < 0.6:
                    child = mutate(child)
                children.append(child)
            scored = [
                (self._estimate(g, machine, layer_times), g) for g in children
            ]
        scored.sort(key=lambda item: item[0])
        fitness, best = scored[0]
        swap = {
            candidate.tid: lead
            for (flag, lead), candidate in zip(best, self._candidates)
            if flag
        }
        return SwapPlan(swap=swap, fitness=fitness)

    # ------------------------------------------------------------ execution

    def place(self, tensor: Tensor, now: float) -> DeviceKind:
        assert self.machine is not None
        if fits_fast(self.machine, tensor.nbytes):
            return DeviceKind.FAST
        return DeviceKind.SLOW

    def on_alloc(self, tensor: Tensor, mapping: TensorMapping, now: float) -> None:
        self._mappings[tensor.tid] = mapping

    def on_free(self, tensor: Tensor, mapping: TensorMapping, now: float) -> None:
        self._mappings.pop(tensor.tid, None)

    def on_layer_start(self, layer: Layer, now: float) -> float:
        runs = self._runs(self._prefetch_at.get(layer.index, ()), DeviceKind.SLOW)
        if runs:
            assert self.machine is not None
            self.machine.migration.promote_each(runs, now, tag="swapadvisor")
        return 0.0

    def on_layer_end(self, layer: Layer, now: float) -> float:
        runs = self._runs(self._offload_at.get(layer.index, ()), DeviceKind.FAST)
        if runs:
            assert self.machine is not None
            self.machine.migration.demote_each(runs, now, tag="swapadvisor")
        return 0.0

    def _runs(self, tids, device: DeviceKind) -> List[PageTableEntry]:
        runs: List[PageTableEntry] = []
        seen: Set[int] = set()
        for tid in tids:
            mapping = self._mappings.get(tid)
            if mapping is None:
                continue
            for share in mapping.shares:
                run = share.run
                if run.vpn in seen or run.in_flight or run.pinned:
                    continue
                seen.add(run.vpn)
                if run.device is device:
                    runs.append(run)
        return runs

    def evict_for(self, nbytes: int, now: float) -> float:
        from repro.core.gpu import evict_coldest

        assert self.machine is not None
        resident = self.machine.page_table.runs_on(DeviceKind.FAST)
        return evict_coldest(self, nbytes, now, resident)
