"""Every comparison point of the paper's evaluation, implemented.

CPU (Optane) baselines — §VII-B:

* slow-only / fast-only bounds,
* first-touch NUMA (Linux default),
* Memory Mode (DRAM as a hardware cache of PMM),
* IAL — the improved FIFO active-list kernel approach of [19],
* AutoTM — offline placement with synchronous (exposed) movement [7].

GPU baselines — §VII-C:

* Unified Memory (on-demand page migration on fault) [37],
* vDNN (conv-input offload; cannot handle recurrent graphs) [6],
* SwapAdvisor (genetic-algorithm swap planning) [8],
* Capuchin (swap with recomputation fallback) [9].

All implement :class:`repro.dnn.policy.PlacementPolicy`; see
:data:`repro.baselines.registry.POLICIES` for construction by name.
"""

from repro.baselines.simple import (
    FastOnlyPolicy,
    FirstTouchNUMAPolicy,
    MemoryModePolicy,
    SlowOnlyPolicy,
)
from repro.baselines.ial import IALPolicy
from repro.baselines.autotm import AutoTMPolicy
from repro.baselines.um import UnifiedMemoryPolicy
from repro.baselines.vdnn import UnsupportedModelError, VDNNPolicy
from repro.baselines.swapadvisor import SwapAdvisorPolicy
from repro.baselines.capuchin import CapuchinPolicy
from repro.baselines.registry import POLICIES, make_policy

__all__ = [
    "SlowOnlyPolicy",
    "FastOnlyPolicy",
    "FirstTouchNUMAPolicy",
    "MemoryModePolicy",
    "IALPolicy",
    "AutoTMPolicy",
    "UnifiedMemoryPolicy",
    "VDNNPolicy",
    "UnsupportedModelError",
    "SwapAdvisorPolicy",
    "CapuchinPolicy",
    "POLICIES",
    "make_policy",
]
