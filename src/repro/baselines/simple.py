"""The non-adaptive baselines: bounds, first-touch NUMA, and Memory Mode."""

from __future__ import annotations

from repro.dnn.alloc import Allocator, TensorMapping
from repro.dnn.arena import ArenaAllocator
from repro.dnn.graph import Graph
from repro.dnn.ops import TensorAccess
from repro.dnn.policy import AccessCharge, PlacementPolicy
from repro.dnn.tensor import Tensor
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.numa import FirstTouchPolicy


class SlowOnlyPolicy(PlacementPolicy):
    """Everything on the slow tier — the paper's normalization baseline."""

    name = "slow-only"
    requires_residency = False

    def place(self, tensor: Tensor, now: float) -> DeviceKind:
        return DeviceKind.SLOW


class FastOnlyPolicy(PlacementPolicy):
    """Everything on the fast tier — the performance ceiling.

    Requires the fast tier to hold the model's peak footprint; use an
    unconstrained machine (full DRAM) for this bound.
    """

    name = "fast-only"
    requires_residency = False

    def place(self, tensor: Tensor, now: float) -> DeviceKind:
        return DeviceKind.FAST


class FirstTouchNUMAPolicy(PlacementPolicy):
    """Linux default on the two-node Optane platform (§VII-B).

    The first touch lands a page on the toucher's node — the DRAM node,
    until DRAM fills, after which everything spills to PMM and *stays
    there*: there is no migration to correct the placement, which is why
    first-touch collapses once the working set outgrows DRAM (Figure 8).
    """

    name = "first-touch"
    requires_residency = False

    def bind(self, machine: Machine, graph: Graph) -> None:
        super().bind(machine, graph)
        self._first_touch = FirstTouchPolicy(machine.fast, machine.slow)

    def make_allocator(self) -> Allocator:
        # TensorFlow-default arena: placement is decided once per slab at
        # its first touch and persists with the pages across steps — the
        # real reason first-touch behaves statically on training loops.
        assert self.machine is not None
        return ArenaAllocator(self.machine, self.place)

    def place(self, tensor: Tensor, now: float) -> DeviceKind:
        # The arena maps whole slabs: the placement decision must check the
        # slab the allocator will actually request, not the tensor's bytes,
        # or a small allocation can claim space a 16-page slab overflows.
        page_size = self.machine.page_size
        slab_bytes = max(
            ArenaAllocator.SLAB_PAGES * page_size,
            page_size * (-(-tensor.nbytes // page_size)),
        )
        return self._first_touch.choose(slab_bytes, page_size=page_size)


class MemoryModePolicy(PlacementPolicy):
    """Optane Memory Mode: DRAM is a hardware-managed cache of PMM.

    Software sees one flat (slow) memory; the simulated hardware cache
    decides what is DRAM-resident.  Fills and write-backs are synchronous —
    on the critical path — which is the mode's fundamental handicap against
    software prefetching.
    """

    name = "memory-mode"
    requires_residency = False

    def make_allocator(self) -> Allocator:
        # Same arena as plain TensorFlow: cache lines keyed by page runs
        # stay meaningful across steps because the runs persist.
        assert self.machine is not None
        return ArenaAllocator(self.machine, self.place)

    def place(self, tensor: Tensor, now: float) -> DeviceKind:
        return DeviceKind.SLOW

    def charge_access(
        self, tensor: Tensor, mapping: TensorMapping, access: TensorAccess, now: float
    ) -> AccessCharge:
        machine = self.machine
        assert machine is not None
        cache = machine.dram_cache
        page_size = machine.page_size
        charge = AccessCharge()
        for share in mapping.shares:
            run = share.run
            nbytes = access.nbytes * share.nbytes // tensor.nbytes
            if nbytes <= 0 and share.nbytes > 0:
                nbytes = min(share.nbytes, access.nbytes)
            if nbytes <= 0:
                continue
            pages = min(run.npages, max(1, -(-nbytes // page_size)))
            charge.fault += machine.fault_handler.on_access_pass(
                run, pages, access.is_write, passes=access.passes
            )
            was_resident = cache.resident(run.vpn)
            for _ in range(access.passes):
                charge.mem_time += cache.access(
                    run.vpn, run.npages * page_size, nbytes, access.is_write
                )
            if was_resident:
                charge.bytes_fast += nbytes * access.passes
            else:
                charge.bytes_slow += nbytes * access.passes
        return charge

    def on_free(self, tensor: Tensor, mapping: TensorMapping, now: float) -> None:
        assert self.machine is not None
        cache = self.machine.dram_cache
        for share in mapping.shares:
            cache.invalidate(share.run.vpn)
