"""Policy registry: construct any evaluated memory manager by name."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.baselines.autotm import AutoTMPolicy
from repro.baselines.capuchin import CapuchinPolicy
from repro.baselines.ial import IALPolicy
from repro.baselines.simple import (
    FastOnlyPolicy,
    FirstTouchNUMAPolicy,
    MemoryModePolicy,
    SlowOnlyPolicy,
)
from repro.baselines.swapadvisor import SwapAdvisorPolicy
from repro.baselines.um import UnifiedMemoryPolicy
from repro.baselines.vdnn import VDNNPolicy
from repro.core.gpu import SentinelGPUPolicy
from repro.core.runtime import SentinelConfig, SentinelPolicy
from repro.dnn.policy import PlacementPolicy

PolicyFactory = Callable[[], PlacementPolicy]

#: name -> (factory, platforms it applies to)
POLICIES: Dict[str, PolicyFactory] = {
    "slow-only": SlowOnlyPolicy,
    "fast-only": FastOnlyPolicy,
    "first-touch": FirstTouchNUMAPolicy,
    "memory-mode": MemoryModePolicy,
    "ial": IALPolicy,
    "autotm": AutoTMPolicy,
    "unified-memory": UnifiedMemoryPolicy,
    "vdnn": VDNNPolicy,
    "swapadvisor": SwapAdvisorPolicy,
    "capuchin": CapuchinPolicy,
    "sentinel": SentinelPolicy,
    "sentinel-gpu": SentinelGPUPolicy,
}

#: policies meaningful only on the GPU platform (residency semantics)
GPU_ONLY = frozenset(
    {"unified-memory", "vdnn", "swapadvisor", "capuchin", "sentinel-gpu"}
)

#: policies meaningful only on the CPU/Optane platform
CPU_ONLY = frozenset({"first-touch", "memory-mode", "ial", "sentinel"})


def make_policy(
    name: str, sentinel_config: Optional[SentinelConfig] = None
) -> PlacementPolicy:
    """Build a policy by registry name.

    ``sentinel_config`` customizes the two Sentinel variants (warm-up steps,
    ablation switches, pinned interval length); it is ignored for baselines.
    """
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {sorted(POLICIES)}"
        ) from None
    if name in ("sentinel", "sentinel-gpu") and sentinel_config is not None:
        return factory(sentinel_config)  # type: ignore[call-arg]
    return factory()
