"""Table I: the qualitative feature comparison, as data.

The paper's Table I compares state-of-the-art heterogeneous-memory managers
along six design dimensions.  Keeping the matrix in code (a) renders the
table from the same registry that builds the policies, and (b) lets tests
assert that each implementation actually *has* the property the row claims
(e.g. "graph agnostic" policies must not import tensor kinds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class FeatureRow:
    """One system's design properties (paper Table I columns)."""

    policy: str
    dynamic_profiling: bool
    minimizes_fast_memory: bool
    graph_agnostic: bool
    counts_memory_accesses: bool
    avoids_false_sharing: bool
    cpu: bool
    gpu: bool


FEATURES: Dict[str, FeatureRow] = {
    row.policy: row
    for row in (
        FeatureRow(
            policy="first-touch",
            dynamic_profiling=False,
            minimizes_fast_memory=False,
            graph_agnostic=True,
            counts_memory_accesses=False,
            avoids_false_sharing=False,
            cpu=True,
            gpu=False,
        ),
        FeatureRow(
            policy="memory-mode",
            dynamic_profiling=False,
            minimizes_fast_memory=False,
            graph_agnostic=True,
            counts_memory_accesses=False,
            avoids_false_sharing=False,
            cpu=True,
            gpu=False,
        ),
        FeatureRow(
            policy="ial",
            dynamic_profiling=True,  # reference sampling at runtime
            minimizes_fast_memory=False,
            graph_agnostic=True,
            counts_memory_accesses=False,  # binary referenced/not per scan
            avoids_false_sharing=False,
            cpu=True,
            gpu=False,
        ),
        FeatureRow(
            policy="autotm",
            dynamic_profiling=False,  # compile-time (static) profiling
            minimizes_fast_memory=True,
            graph_agnostic=True,
            counts_memory_accesses=False,
            avoids_false_sharing=False,
            cpu=True,
            gpu=True,
        ),
        FeatureRow(
            policy="unified-memory",
            dynamic_profiling=False,
            minimizes_fast_memory=False,
            graph_agnostic=True,
            counts_memory_accesses=False,
            avoids_false_sharing=False,
            cpu=False,
            gpu=True,
        ),
        FeatureRow(
            policy="vdnn",
            dynamic_profiling=False,
            minimizes_fast_memory=False,  # conv feature maps only
            graph_agnostic=False,  # needs to know which layers are convs
            counts_memory_accesses=False,
            avoids_false_sharing=False,
            cpu=False,
            gpu=True,
        ),
        FeatureRow(
            policy="swapadvisor",
            dynamic_profiling=True,  # GA over measured runs
            minimizes_fast_memory=False,  # optimizes time, not memory
            graph_agnostic=True,
            counts_memory_accesses=False,
            avoids_false_sharing=False,
            cpu=False,
            gpu=True,
        ),
        FeatureRow(
            policy="capuchin",
            dynamic_profiling=True,
            minimizes_fast_memory=True,
            graph_agnostic=True,
            counts_memory_accesses=False,  # checks references, not counts
            avoids_false_sharing=False,
            cpu=False,
            gpu=True,
        ),
        FeatureRow(
            policy="sentinel",
            dynamic_profiling=True,
            minimizes_fast_memory=True,
            graph_agnostic=True,
            counts_memory_accesses=True,
            avoids_false_sharing=True,
            cpu=True,
            gpu=False,
        ),
        FeatureRow(
            policy="sentinel-gpu",
            dynamic_profiling=True,
            minimizes_fast_memory=True,
            graph_agnostic=True,
            counts_memory_accesses=True,
            avoids_false_sharing=True,
            cpu=False,
            gpu=True,
        ),
    )
}

COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("dynamic_profiling", "dyn. profiling"),
    ("minimizes_fast_memory", "min. fast mem"),
    ("graph_agnostic", "graph agnostic"),
    ("counts_memory_accesses", "counts accesses"),
    ("avoids_false_sharing", "no false sharing"),
    ("cpu", "CPU"),
    ("gpu", "GPU"),
)


def feature_table() -> str:
    """Render Table I."""
    from repro.harness.report import format_table

    rows: List[Tuple] = []
    for row in FEATURES.values():
        rows.append(
            (row.policy,)
            + tuple("yes" if getattr(row, field) else "-" for field, _ in COLUMNS)
        )
    return format_table(
        ("system",) + tuple(label for _, label in COLUMNS),
        rows,
        title="Table I — design-dimension comparison",
    )
