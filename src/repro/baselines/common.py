"""Shared helpers for the offloading baselines.

Every swap-planning system (vDNN-dyn, AutoTM's ILP, Capuchin's measured
pass, SwapAdvisor's GA) responds to memory *pressure*: it offloads roughly
the amount by which the model's footprint exceeds device memory, not its
entire offloadable set.  :func:`select_for_pressure` implements that common
proportional response so each baseline's distinctive part stays its
scheduling, not its arithmetic.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")

#: Fraction of device memory the planners budget for the resident set;
#: the rest absorbs temporaries and transfer double-buffering.
PLAN_BUDGET_FRACTION = 0.9

#: Offload this much beyond the bare deficit — working-set spikes within a
#: layer need slack beyond the average-case arithmetic.
SAVINGS_MARGIN = 1.3


def offload_deficit(peak_bytes: int, capacity_bytes: int) -> int:
    """Bytes a plan must move off-device; zero when the model fits."""
    return max(0, peak_bytes - int(capacity_bytes * PLAN_BUDGET_FRACTION))


def select_for_pressure(
    candidates: Sequence[T],
    peak_bytes: int,
    capacity_bytes: int,
    size_of: Callable[[T], int],
    priority: Optional[Callable[[T], float]] = None,
) -> List[T]:
    """Pick offload candidates until the memory deficit is covered.

    Candidates are taken in ``priority`` order (default: largest first —
    the cheapest savings per scheduling decision) until cumulative savings
    reach the deficit times :data:`SAVINGS_MARGIN`.  Returns all candidates
    when even that cannot cover the deficit (maximum-batch regime).
    """
    deficit = offload_deficit(peak_bytes, capacity_bytes)
    if deficit <= 0:
        return []
    ordered = sorted(
        candidates,
        key=priority if priority is not None else (lambda c: -size_of(c)),
    )
    selected: List[T] = []
    savings = 0
    target = deficit * SAVINGS_MARGIN
    for candidate in ordered:
        if savings >= target:
            break
        selected.append(candidate)
        savings += size_of(candidate)
    return selected
