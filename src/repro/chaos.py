"""Deterministic fault injection and invariant auditing (chaos layer).

Sentinel's real-system substrate is fallible: ``move_pages()`` returns
``-EBUSY``/``-ENOMEM`` under contention, Optane throttles under write
pressure, and the profiling fault stream can drop samples when the handler's
buffer overflows.  This module injects those failure modes into the
simulated substrate so the runtime's *degradation* behaviour — retry,
backoff, fallback, re-profiling — can be exercised and measured.

Three design rules:

* **Deterministic.**  Every decision comes from a per-concern
  ``random.Random`` stream seeded from ``(seed, concern)``, so the draw
  sequence one mechanism sees is independent of how often the others are
  consulted.  Same seed, same workload ⇒ bit-identical run.
* **Pay for what you use.**  A concern whose rate is zero returns its
  neutral value without consuming randomness or doing arithmetic; a machine
  built without an injector has exactly the pre-chaos code paths.
* **Faults are injected below the policy layer.**  Policies see only the
  consequences the real system would show them — a refused submission, a
  stretched access, a lossy profile — never the injector itself.

:class:`InvariantAuditor` is the complement: an opt-in per-step observer
that verifies the machine's memory accounting still balances *while* faults
fly, raising :class:`~repro.errors.ConsistencyError` naming the violated
invariant if graceful degradation ever corrupts state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional

from repro.dnn.executor import StepObserver, StepResult
from repro.errors import ConsistencyError
from repro.mem.devices import DeviceKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mem.machine import Machine
    from repro.obs.trace import EventTracer


@dataclass(frozen=True)
class ChaosConfig:
    """Fault rates and retry tunables for a :class:`FaultInjector`.

    All rates are per-decision probabilities in ``[0, 1]``; a rate of zero
    disables that concern entirely (no randomness is consumed for it).

    Attributes:
        seed: RNG seed; every derived stream is a pure function of it.
        migration_busy_rate: probability a migration submission is refused
            with a transient EBUSY-style error (retried with backoff).
        migration_abort_rate: probability a submitted copy dies mid-flight
            (channel time burned, no pages moved).
        device_throttle_rate: probability a slow-tier access lands in a
            bandwidth-degradation episode (Optane write throttling).
        device_throttle_factor: bandwidth multiplier during an episode
            (0.25 ⇒ writes run at a quarter of nominal bandwidth; reads
            degrade half as hard).
        profile_drop_rate: expected fraction of profiling fault samples the
            handler loses (perf-style ``RECORD_LOST``).
        capacity_shrink_rate: probability per step that the fast tier
            transiently loses frames (a neighbouring process grabbing
            DRAM, a ballooning hypervisor); zero disables the concern.
        capacity_shrink_frames: frames withheld during a shrink episode
            (the grant is clamped to free frames — resident data is never
            evicted by the fault itself).
        capacity_shrink_steps: steps an episode lasts before the frames
            are restored.
        max_retries: EBUSY retries before a background submission gives up
            and degrades into the leave-in-slow path.
        retry_backoff: seconds before the first EBUSY retry; doubles per
            attempt.
        abort_fraction: fraction of a copy's bytes transferred before a
            mid-flight abort kills it.
    """

    seed: int = 0
    migration_busy_rate: float = 0.0
    migration_abort_rate: float = 0.0
    device_throttle_rate: float = 0.0
    device_throttle_factor: float = 0.25
    profile_drop_rate: float = 0.0
    capacity_shrink_rate: float = 0.0
    capacity_shrink_frames: int = 64
    capacity_shrink_steps: int = 1
    max_retries: int = 4
    retry_backoff: float = 5e-5
    abort_fraction: float = 0.5

    def __post_init__(self) -> None:
        for field in (
            "migration_busy_rate",
            "migration_abort_rate",
            "device_throttle_rate",
            "profile_drop_rate",
            "capacity_shrink_rate",
        ):
            rate = getattr(self, field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field} must be in [0, 1], got {rate!r}")
        if self.capacity_shrink_frames < 0:
            raise ValueError(
                f"capacity_shrink_frames must be >= 0, got "
                f"{self.capacity_shrink_frames!r}"
            )
        if self.capacity_shrink_steps < 1:
            raise ValueError(
                f"capacity_shrink_steps must be >= 1, got "
                f"{self.capacity_shrink_steps!r}"
            )
        if not 0.0 < self.device_throttle_factor <= 1.0:
            raise ValueError(
                f"device_throttle_factor must be in (0, 1], got "
                f"{self.device_throttle_factor!r}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.retry_backoff < 0.0:
            raise ValueError(
                f"retry_backoff must be non-negative, got {self.retry_backoff!r}"
            )
        if not 0.0 < self.abort_fraction < 1.0:
            raise ValueError(
                f"abort_fraction must be in (0, 1), got {self.abort_fraction!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any concern can actually fire."""
        return (
            self.migration_busy_rate > 0.0
            or self.migration_abort_rate > 0.0
            or self.device_throttle_rate > 0.0
            or self.profile_drop_rate > 0.0
            or self.capacity_shrink_rate > 0.0
        )

    @classmethod
    def uniform(cls, rate: float, seed: int = 0, **overrides) -> "ChaosConfig":
        """All concerns driven by one headline fault rate.

        Busy refusals and throttle episodes fire at ``rate``; mid-flight
        aborts (the rarer, nastier event on real hardware) at half of it;
        profile drops at ``rate``.  The convenience the fault-rate sweeps
        use.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate!r}")
        config = cls(
            seed=seed,
            migration_busy_rate=rate,
            migration_abort_rate=rate / 2.0,
            device_throttle_rate=rate,
            profile_drop_rate=rate,
        )
        return replace(config, **overrides) if overrides else config

    def reseeded(self, seed: int) -> "ChaosConfig":
        """A copy of this config with a different seed (sweep plumbing)."""
        return replace(self, seed=seed)


class FaultInjector:
    """Draws fault decisions from seeded per-concern streams.

    Attributes:
        config: the governing :class:`ChaosConfig`.
        counts: injected-event counters (``chaos.*`` keys), surfaced by the
            harness next to the runtime's retry/fallback counters.
        tracer: optional :class:`repro.obs.EventTracer`, attached by the
            :class:`~repro.mem.machine.Machine` that adopts this injector;
            every injected decision then also lands in the trace as a
            ``chaos``-category instant (timestamped from the tracer's bound
            clock — the injector itself has no notion of time).
    """

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self.tracer: Optional["EventTracer"] = None
        #: optional discrete-event engine; injected faults then also fire
        #: as typed FAULT engine events (set by ``Machine.bind_engine``)
        self.engine = None
        self._migration_rng = self._stream("migration")
        self._device_rng = self._stream("device")
        self._profile_rng = self._stream("profile")
        self._capacity_rng = self._stream("capacity")
        self.counts: Dict[str, int] = {}

    def _stream(self, concern: str) -> random.Random:
        return random.Random(f"{self.config.seed}:{concern}")

    def _count(self, key: str, amount: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + amount
        if self.tracer is not None:
            self.tracer.instant(
                key.partition("chaos.")[2] or key,
                "chaos",
                track="chaos",
                amount=amount,
            )
        if self.engine is not None:
            from repro.sim.engine import EventKind

            self.engine.emit(
                EventKind.FAULT,
                key.partition("chaos.")[2] or key,
                {"amount": amount},
            )

    # ------------------------------------------------------------- migration

    def migration_busy(self) -> bool:
        """Whether this submission attempt hits a transient EBUSY."""
        rate = self.config.migration_busy_rate
        if rate <= 0.0:
            return False
        if self._migration_rng.random() < rate:
            self._count("chaos.migration_busy")
            return True
        return False

    def migration_abort(self) -> bool:
        """Whether a submitted copy dies mid-flight."""
        rate = self.config.migration_abort_rate
        if rate <= 0.0:
            return False
        if self._migration_rng.random() < rate:
            self._count("chaos.migration_aborts")
            return True
        return False

    # -------------------------------------------------------------- capacity

    def capacity_shrink_begins(self) -> bool:
        """Whether a transient fast-tier capacity-loss episode starts now."""
        rate = self.config.capacity_shrink_rate
        if rate <= 0.0:
            return False
        if self._capacity_rng.random() < rate:
            self._count("chaos.capacity_shrink")
            return True
        return False

    # ---------------------------------------------------------------- device

    def device_slowdown(self, kind: DeviceKind, is_write: bool) -> float:
        """Access-time multiplier (>= 1.0) for one device access.

        Throttling episodes model Optane's write-pressure collapse, so only
        the slow tier is subject; writes take the configured factor in full,
        reads degrade half as hard (the media is write-limited).
        """
        rate = self.config.device_throttle_rate
        if rate <= 0.0 or kind is not DeviceKind.SLOW:
            return 1.0
        if self._device_rng.random() >= rate:
            return 1.0
        self._count("chaos.device_throttled")
        factor = self.config.device_throttle_factor
        if not is_write:
            factor = (1.0 + factor) / 2.0
        return 1.0 / factor

    # -------------------------------------------------------------- profiler

    def drop_faults(self, faults: int) -> int:
        """How many of ``faults`` profiling samples the handler loses.

        Accounted arithmetically (like the fault counting itself): the
        expected loss is ``faults * rate`` with one randomized-rounding
        draw, so a million-fault pass costs one RNG call, not a million.
        """
        rate = self.config.profile_drop_rate
        if rate <= 0.0 or faults <= 0:
            return 0
        expected = faults * rate
        dropped = int(expected)
        if self._profile_rng.random() < expected - dropped:
            dropped += 1
        dropped = min(faults, dropped)
        if dropped:
            self._count("chaos.profile_faults_dropped", dropped)
        return dropped


# --------------------------------------------------------------- episodes

#: Machine-level failure-episode kinds (see :class:`Episode`).
EPISODE_KINDS = ("machine-offline", "channel-blackout", "capacity-loss")


@dataclass(frozen=True)
class Episode:
    """One machine-level failure window on the simulated timeline.

    Unlike the per-decision faults above (which fire *inside* a workload's
    own code path), episodes are wall-clock events on the shared machine:
    they begin and end at absolute simulated times regardless of what any
    tenant is doing, which is what makes overload/recovery behaviour at the
    cluster boundary non-trivial.

    Attributes:
        kind: one of :data:`EPISODE_KINDS` —

            * ``"machine-offline"``: the whole machine is down; the serving
              layer interrupts in-flight jobs and pauses dispatch until the
              episode ends (crash + reboot, a node lost from the cluster).
            * ``"channel-blackout"``: one migration channel is unavailable
              for the window; queued transfers are pushed back exactly like
              work stuck behind a long transfer (a fabric link flap on a
              network-attached slow tier).
            * ``"capacity-loss"``: the fast tier transiently loses frames
              (clamped to free space — resident data survives).
        start: absolute simulated time the episode begins (>= 0).
        duration: episode length in seconds (> 0).
        target: channel name for ``"channel-blackout"`` episodes.
        frames: frames withheld for ``"capacity-loss"`` episodes.
    """

    kind: str
    start: float
    duration: float
    target: str = ""
    frames: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EPISODE_KINDS:
            raise ValueError(
                f"unknown episode kind {self.kind!r}; expected one of "
                f"{EPISODE_KINDS}"
            )
        if self.start < 0.0:
            raise ValueError(f"episode start must be >= 0, got {self.start!r}")
        if self.duration <= 0.0:
            raise ValueError(
                f"episode duration must be positive, got {self.duration!r}"
            )
        if self.kind == "channel-blackout" and not self.target:
            raise ValueError("channel-blackout episodes need a target channel")
        if self.kind == "capacity-loss" and self.frames <= 0:
            raise ValueError(
                f"capacity-loss episodes need frames > 0, got {self.frames!r}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class EpisodeConfig:
    """Seeded generator parameters for a machine-failure timeline.

    Each concern is an independent renewal process: inter-episode gaps and
    durations are exponential draws from a per-concern stream seeded from
    ``(seed, concern)``, so enabling one concern never shifts another's
    schedule.  A concern with MTBF 0 is disabled.  Episodes of one concern
    never overlap each other (the next gap starts after the previous episode
    ends); different concerns may overlap freely, as real failures do.

    Attributes:
        seed: RNG seed; the generated timeline is a pure function of it.
        horizon: episodes begin strictly before this time (they may end
            after it — recovery still happens).
        machine_mtbf / machine_mttr: mean time between machine-offline
            episodes / mean outage duration.
        blackout_mtbf / blackout_mttr: ditto for channel blackouts; the
            affected channel is drawn uniformly per episode.
        capacity_mtbf / capacity_mttr: ditto for transient capacity loss.
        capacity_frames: frames withheld during each capacity-loss episode.
    """

    seed: int = 0
    horizon: float = 1.0
    machine_mtbf: float = 0.0
    machine_mttr: float = 0.02
    blackout_mtbf: float = 0.0
    blackout_mttr: float = 0.01
    capacity_mtbf: float = 0.0
    capacity_mttr: float = 0.05
    capacity_frames: int = 64

    def __post_init__(self) -> None:
        if self.horizon <= 0.0:
            raise ValueError(f"horizon must be positive, got {self.horizon!r}")
        for name in (
            "machine_mtbf",
            "machine_mttr",
            "blackout_mtbf",
            "blackout_mttr",
            "capacity_mtbf",
            "capacity_mttr",
        ):
            value = getattr(self, name)
            if value < 0.0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")
        if self.capacity_frames <= 0:
            raise ValueError(
                f"capacity_frames must be positive, got {self.capacity_frames!r}"
            )

    @property
    def enabled(self) -> bool:
        return (
            self.machine_mtbf > 0.0
            or self.blackout_mtbf > 0.0
            or self.capacity_mtbf > 0.0
        )


#: Channels a generated blackout may hit, in draw order.
BLACKOUT_CHANNELS = ("promote", "demote", "demand-promote")


def generate_episodes(config: EpisodeConfig) -> list:
    """Deterministic failure timeline for ``config`` (sorted by start time).

    Same config ⇒ byte-identical episode list; the serving report's
    restart/shedding stream inherits that determinism.
    """
    episodes = []

    def renewal(concern: str, mtbf: float, mttr: float, make):
        if mtbf <= 0.0:
            return
        rng = random.Random(f"{config.seed}:episodes:{concern}")
        t = rng.expovariate(1.0 / mtbf)
        while t < config.horizon:
            duration = max(1e-9, rng.expovariate(1.0 / mttr) if mttr > 0 else 1e-9)
            episodes.append(make(t, duration, rng))
            t = t + duration + rng.expovariate(1.0 / mtbf)

    renewal(
        "machine",
        config.machine_mtbf,
        config.machine_mttr,
        lambda start, dur, rng: Episode("machine-offline", start, dur),
    )
    renewal(
        "blackout",
        config.blackout_mtbf,
        config.blackout_mttr,
        lambda start, dur, rng: Episode(
            "channel-blackout", start, dur, target=rng.choice(BLACKOUT_CHANNELS)
        ),
    )
    renewal(
        "capacity",
        config.capacity_mtbf,
        config.capacity_mttr,
        lambda start, dur, rng: Episode(
            "capacity-loss", start, dur, frames=config.capacity_frames
        ),
    )
    return sorted(episodes, key=lambda ep: (ep.start, ep.kind, ep.target))


class EpisodeDriver:
    """Plays a failure timeline onto a machine via the discrete-event engine.

    Each episode schedules a begin and an end occurrence as typed
    :data:`~repro.sim.engine.EventKind.FAULT` events (payload carries the
    :class:`Episode` and ``phase`` = ``"begin"``/``"end"``), so observers —
    the serving layer interrupting in-flight jobs, the trace — see every
    transition at its exact simulated instant.  Effects:

    * ``machine-offline`` flips :attr:`Machine.online` down and back up;
    * ``channel-blackout`` holds the target channel busy for the window;
    * ``capacity-loss`` reserves fast frames (clamped to free space) and
      returns them at the end.

    Attach with :meth:`arm` *before* the engine runs (episodes must not
    start in the past).
    """

    def __init__(self, machine: "Machine", episodes) -> None:
        self.machine = machine
        self.episodes = list(episodes)
        channels = {
            ch.name: ch
            for ch in (
                machine.promote_channel,
                machine.demote_channel,
                machine.demand_channel,
            )
        }
        for episode in self.episodes:
            if episode.kind == "channel-blackout" and episode.target not in channels:
                raise ValueError(
                    f"episode targets unknown channel {episode.target!r}; "
                    f"machine has {sorted(channels)}"
                )
        self._channels = channels
        self.counts: Dict[str, int] = {}
        self.engine = None

    def arm(self, engine) -> None:
        """Schedule every episode's begin event on ``engine``."""
        from repro.sim.engine import EventKind

        self.engine = engine
        for episode in self.episodes:
            engine.schedule_at(
                episode.start,
                EventKind.FAULT,
                name=f"episode:{episode.kind}",
                payload={"episode": episode, "phase": "begin"},
                callback=lambda ev, ep=episode: self._begin(ep, ev.time),
            )

    def _count(self, key: str) -> None:
        self.counts[key] = self.counts.get(key, 0) + 1

    def _begin(self, episode: Episode, now: float) -> None:
        from repro.sim.engine import EventKind

        machine = self.machine
        self._count(f"chaos.episode.{episode.kind}")
        reserved = 0
        if episode.kind == "machine-offline":
            machine.set_online(False, now)
        elif episode.kind == "channel-blackout":
            self._channels[episode.target].block(now, episode.duration)
            # The block pushed in-flight transfers' finish times back; the
            # availability times cached on their page runs at submission
            # must follow, or accesses would read destination frames (and
            # commits could land) mid-outage.
            machine.migration.refresh_availability()
        elif episode.kind == "capacity-loss":
            reserved = machine.fast.reserve(episode.frames * machine.page_size)
            if machine.tracer is not None:
                machine.tracer.instant(
                    "capacity-loss",
                    "chaos",
                    ts=now,
                    track="chaos",
                    nbytes=reserved,
                )
            if machine.pressure is not None:
                machine.pressure.note_usage(now)
        assert self.engine is not None
        self.engine.schedule_at(
            episode.end,
            EventKind.FAULT,
            name=f"episode:{episode.kind}",
            payload={"episode": episode, "phase": "end"},
            callback=lambda ev, ep=episode, nb=reserved: self._end(ep, nb, ev.time),
        )

    def _end(self, episode: Episode, reserved: int, now: float) -> None:
        machine = self.machine
        if episode.kind == "machine-offline":
            machine.set_online(True, now)
        elif episode.kind == "capacity-loss":
            if reserved:
                machine.fast.unreserve(reserved)
                if machine.tracer is not None:
                    machine.tracer.instant(
                        "capacity-restore",
                        "chaos",
                        ts=now,
                        track="chaos",
                        nbytes=reserved,
                    )
            if machine.pressure is not None:
                machine.pressure.note_usage(now)


class CapacityShrinker(StepObserver):
    """Drives the ``capacity_shrink`` chaos fault as a per-step observer.

    At each step start, an episode may begin (one seeded draw): the fast
    tier reserves up to ``capacity_shrink_frames`` frames — clamped to
    free space, so resident data is untouched and the shrink models a
    neighbour grabbing *available* DRAM.  After ``capacity_shrink_steps``
    steps the frames are returned.  Episodes do not stack: a new draw is
    made only once the current episode has been restored.
    """

    def __init__(self, machine: "Machine", injector: FaultInjector) -> None:
        self.machine = machine
        self.injector = injector
        self.episodes = 0
        self._remaining_steps = 0
        self._reserved = 0

    def on_step_start(self, step: int, now: float) -> None:
        if self._remaining_steps > 0:
            self._remaining_steps -= 1
            if self._remaining_steps == 0:
                self._restore(now)
            return
        if not self.injector.capacity_shrink_begins():
            return
        config = self.injector.config
        requested = config.capacity_shrink_frames * self.machine.page_size
        self._reserved = self.machine.fast.reserve(requested)
        self._remaining_steps = config.capacity_shrink_steps
        self.episodes += 1
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.instant(
                "capacity-shrink",
                "chaos",
                ts=now,
                track="chaos",
                nbytes=self._reserved,
                requested=requested,
            )
        if self.machine.pressure is not None:
            # Losing frames is a usage-fraction jump; the governor should
            # see it immediately, not at the next allocation.
            self.machine.pressure.note_usage(now)

    def _restore(self, now: float) -> None:
        restored, self._reserved = self._reserved, 0
        if restored:
            self.machine.fast.unreserve(restored)
            tracer = self.machine.tracer
            if tracer is not None:
                tracer.instant(
                    "capacity-restore",
                    "chaos",
                    ts=now,
                    track="chaos",
                    nbytes=restored,
                )
        if self.machine.pressure is not None:
            self.machine.pressure.note_usage(now)


class InvariantAuditor(StepObserver):
    """Opt-in per-step verifier of the machine's memory accounting.

    Attach as an executor observer; after every step (when the books should
    balance — all committed work synced) it checks:

    * device usage is non-negative and within capacity on both tiers;
    * every mapped run is charged to exactly one device — except a demoting
      run, whose fast frames are still occupied while its slow reservation
      exists (the documented double-charge window) — and the per-device sums
      equal the devices' recorded usage byte-for-byte;
    * no run is migrating to the tier it already occupies.

    Violations raise :class:`~repro.errors.ConsistencyError` naming the
    invariant, turning silent corruption into a structured failure.
    """

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.audits_run = 0

    # StepObserver hook: audit after each completed step.
    def on_step_end(self, step: int, result: StepResult) -> None:
        self.audit()

    def audit(self) -> None:
        """Run every check now; raises on the first violated invariant."""
        machine = self.machine
        page_size = machine.page_size
        for device in (machine.fast, machine.slow):
            if device.used < 0:
                raise ConsistencyError(
                    "device.usage-non-negative",
                    f"{device.spec.name}: used={device.used}",
                )
            if device.reserved < 0:
                raise ConsistencyError(
                    "device.reserved-non-negative",
                    f"{device.spec.name}: reserved={device.reserved}",
                )
            if device.used + device.reserved > device.capacity:
                raise ConsistencyError(
                    "device.usage-within-capacity",
                    f"{device.spec.name}: used={device.used} + "
                    f"reserved={device.reserved} > capacity={device.capacity}",
                )
            if device.reserved + device.used + device.free != device.capacity:
                raise ConsistencyError(
                    "device.capacity-partition",
                    f"{device.spec.name}: reserved={device.reserved} + "
                    f"used={device.used} + free={device.free} != "
                    f"capacity={device.capacity}",
                )
        expected_fast = 0
        expected_slow = 0
        for run in machine.page_table.entries():
            if run.migrating_to is run.device and run.migrating_to is not None:
                raise ConsistencyError(
                    "migration.destination-differs",
                    f"run {run.vpn} migrating to its own tier "
                    f"{run.device.value}",
                )
            nbytes = run.npages * page_size
            # Charging rules mirror the engine's capacity protocol: a
            # promotion reserves fast (and frees slow) at submission; a
            # demotion reserves slow at submission but vacates fast only at
            # commit.
            if run.device is DeviceKind.FAST or run.migrating_to is DeviceKind.FAST:
                expected_fast += nbytes
            if (
                run.device is DeviceKind.SLOW and run.migrating_to is None
            ) or run.migrating_to is DeviceKind.SLOW:
                expected_slow += nbytes
        if machine.fast.used != expected_fast:
            raise ConsistencyError(
                "accounting.fast-usage-matches-page-table",
                f"fast device used={machine.fast.used} but mapped runs "
                f"charge {expected_fast}",
            )
        if machine.slow.used != expected_slow:
            raise ConsistencyError(
                "accounting.slow-usage-matches-page-table",
                f"slow device used={machine.slow.used} but mapped runs "
                f"charge {expected_slow}",
            )
        self.audits_run += 1
