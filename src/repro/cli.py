"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``        — one (model, policy) simulation, metrics printed as a table.
* ``compare``    — every applicable policy on one model (the quickstart).
* ``profile``    — Sentinel's tensor-level dynamic profile of a model.
* ``sweep``      — Sentinel across fast-memory fractions (Figure 10 style).
* ``maxbatch``   — maximum feasible batch per policy on the GPU platform.
* ``experiment`` — regenerate one of the paper's tables/figures by id.
* ``chaos``      — fault-rate sweep under deterministic fault injection.
* ``pressure``   — capacity-pressure survival sweep under the memory governor.
* ``concurrent`` — co-schedule several models on one machine (event engine).
* ``serve``      — open-loop serving with SLO-aware admission and failure
  episodes (retry/backoff, checkpoint/restart, latency percentiles).
* ``trace``      — run one simulation with event tracing and export the trace.
* ``critpath``   — per-step critical-path attribution of a traced run.
* ``insight``    — tensor-level insight: residency timelines, heat,
  ping-pong/thrash analytics, stall attribution, HTML report.
* ``bench``      — attribution benchmark + step-time regression gate.
* ``tournament`` — ranked leaderboard over {model x policy x admission
  controller x pressure governor} combos (byte-stable JSON artifact).
* ``models``     — list the model zoo.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.baselines.registry import CPU_ONLY, GPU_ONLY, POLICIES
from repro.baselines.vdnn import UnsupportedModelError
from repro.chaos import ChaosConfig
from repro.harness.report import (
    format_admission,
    format_counters,
    format_pressure,
    format_table,
    gib,
    mib,
)
from repro.harness.runner import OOM_ERRORS, max_batch_size, run_policy
from repro.mem.platforms import GPU_HM, OPTANE_HM, Platform
from repro.mem.pressure import PressureConfig
from repro.models.zoo import MODELS

EXPERIMENTS = {
    "obs": "characterization",
    "table3": "table3_models",
    "fig5": "fig5_interval_sweep",
    "fig7": "fig7_speedup",
    "table4": "table4_migrated",
    "fig8": "fig8_large_batch",
    "fig9": "fig9_bandwidth",
    "fig10": "fig10_sensitivity",
    "fig11": "fig11_resnet_scaling",
    "table5": "table5_max_batch",
    "fig12": "fig12_gpu_throughput",
    "fig13": "fig13_breakdown",
    "attrib": "step_attribution",
    "robust": "robustness_degradation",
    "ras": "ras_resilience",
    "survival": "pressure_survival",
    "contention": "multi_tenant_contention",
    "serving": "serving_overload",
}


def _watermarks(text: str):
    """Parse ``--fast-watermarks LOW,HIGH`` (fractions of fast capacity)."""
    try:
        low_text, high_text = text.split(",")
        return float(low_text), float(high_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected LOW,HIGH (e.g. 0.75,0.9), got {text!r}"
        )


def _pressure_from(args) -> Optional[PressureConfig]:
    """Build the governor config from ``--fast-watermarks``/``--reserve-frames``.

    With neither flag given this returns ``None`` — the machine is built
    without a governor and the run stays byte-identical to pre-pressure
    builds.
    """
    watermarks = getattr(args, "fast_watermarks", None)
    reserve = getattr(args, "reserve_frames", 0)
    if watermarks is None and not reserve:
        return None
    low, high = watermarks if watermarks is not None else (1.0, 1.0)
    return PressureConfig.watermarks(low, high, reserve_frames=reserve)


def _add_insight_flags(parser) -> None:
    parser.add_argument(
        "--insight",
        metavar="PATH",
        default=None,
        help="write the canonical tensor-insight JSON artifact to PATH "
        "(residency timelines, heat, ping-pong/thrash analytics)",
    )
    parser.add_argument(
        "--insight-html",
        metavar="PATH",
        default=None,
        help="write the self-contained HTML insight report to PATH "
        "(no network, opens in any browser)",
    )


def _insight_from(args):
    """Build an insight collector when either ``--insight`` flag was given.

    Returns ``None`` otherwise — the machine is built without a collector
    and the run stays byte-identical to insight-free builds.
    """
    if not (getattr(args, "insight", None) or getattr(args, "insight_html", None)):
        return None
    from repro.obs import InsightCollector

    return InsightCollector()


def _write_insight_artifacts(args, report) -> None:
    """Write the JSON / HTML artifacts a command's insight flags asked for."""
    if getattr(args, "insight", None):
        from repro.obs import write_insight

        write_insight(report, args.insight)
        print(f"insight: {len(report['tensors'])} tensor episodes -> {args.insight}")
    if getattr(args, "insight_html", None):
        from repro.obs import write_insight_html

        write_insight_html(report, args.insight_html)
        print(f"insight html: {args.insight_html}")


def _add_pressure_flags(parser) -> None:
    parser.add_argument(
        "--fast-watermarks",
        type=_watermarks,
        metavar="LOW,HIGH",
        default=None,
        help="pressure-governor watermarks as fractions of fast capacity "
        "(e.g. 0.75,0.9): reclaim above LOW, refuse background promotions "
        "above HIGH",
    )
    parser.add_argument(
        "--reserve-frames",
        type=int,
        default=0,
        help="fast frames reserved for the urgent demand lane (governor "
        "reserve pool)",
    )


def _add_admission_flags(parser, flag: str = "--admission") -> None:
    """Attach migration-admission controller flags to a subcommand.

    ``flag`` is overridable because ``serve`` already owns ``--admission``
    for its *job* admission policy; there the migration-level flags are
    ``--migration-admission``/``--migration-admission-args``.
    """
    from repro.mem.admission import CONTROLLERS

    parser.add_argument(
        flag,
        choices=sorted(CONTROLLERS),
        default=None,
        dest=flag.lstrip("-").replace("-", "_"),
        help="migration admission controller screening non-urgent "
        "promotions/demotions (unset = no controller, byte-identical "
        "to pre-admission builds)",
    )
    parser.add_argument(
        f"{flag}-args",
        metavar="K=V[,K=V...]",
        default=None,
        dest=flag.lstrip("-").replace("-", "_") + "_args",
        help="controller constructor overrides, e.g. "
        "stall_target=0.05,cooldown=0.1",
    )


def _admission_from(args, attr: str = "admission"):
    """Resolve the admission flags to ``(name, kwargs-or-None)``.

    Raises ``SystemExit`` via argparse error semantics when ``-args`` is
    given without a controller name.
    """
    name = getattr(args, attr, None)
    raw = getattr(args, f"{attr}_args", None)
    if raw and name is None:
        raise SystemExit(
            f"error: --{attr.replace('_', '-')}-args requires "
            f"--{attr.replace('_', '-')}"
        )
    if name is None:
        return None, None
    if not raw:
        return name, None
    from repro.mem.admission import parse_admission_args

    return name, parse_admission_args(raw)


def _ras_from(args):
    """Build the RAS config from ``--ue-rate``/``--ce-rate``/``--scrub-bw``.

    With both rates zero this returns ``None`` — the machine is built
    without a RAS engine and the run stays byte-identical to pre-RAS
    builds.
    """
    ue_rate = getattr(args, "ue_rate", 0.0)
    ce_rate = getattr(args, "ce_rate", 0.0)
    if not ue_rate and not ce_rate:
        return None
    from repro.mem.ras import RASConfig

    return RASConfig(
        seed=getattr(args, "ras_seed", 0),
        ue_rate=ue_rate,
        ce_rate=ce_rate,
        scrub_bandwidth=getattr(args, "scrub_bw", 0.0),
        recovery=getattr(args, "recovery", "remat"),
    )


def _add_ras_flags(parser) -> None:
    parser.add_argument(
        "--ue-rate",
        type=float,
        default=0.0,
        help="uncorrectable-error rate per byte-second of slow-tier "
        "residency (0 = no RAS engine attached)",
    )
    parser.add_argument(
        "--ce-rate",
        type=float,
        default=0.0,
        help="correctable-error rate per byte-second of slow-tier residency",
    )
    parser.add_argument(
        "--scrub-bw",
        type=float,
        default=0.0,
        metavar="BYTES_PER_S",
        help="patrol-scrubber sweep bandwidth (0 disables scrubbing)",
    )
    parser.add_argument(
        "--recovery",
        choices=("none", "refetch", "remat"),
        default="remat",
        help="UE recovery ladder ceiling: none = every UE is fatal to the "
        "run; refetch = re-fetch clean preallocated pages; remat = also "
        "re-run the producer op for lost activations",
    )
    parser.add_argument(
        "--ras-seed",
        type=int,
        default=0,
        help="seed for the deterministic error-injection streams",
    )


def _chaos_from(args) -> Optional[ChaosConfig]:
    """Build the injected-fault config from ``--fault-rate``/``--chaos-seed``.

    A rate of zero returns ``None`` — the machine is built without an
    injector at all, keeping the default path bit-identical to pre-chaos
    builds.
    """
    if not args.fault_rate:
        return None
    return ChaosConfig.uniform(args.fault_rate, seed=args.chaos_seed)


def _platform(name: str) -> Platform:
    if name == "optane":
        return OPTANE_HM
    if name == "gpu":
        return GPU_HM
    raise argparse.ArgumentTypeError(f"unknown platform {name!r} (optane|gpu)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sentinel (HPCA 2021) reproduction on a simulated "
        "heterogeneous-memory machine.",
    )
    parser.add_argument(
        "--scalar-path",
        action="store_true",
        help="run the scalar reference accounting path instead of the "
        "vectorized one (identical results, slower; for differential "
        "debugging)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one policy on one model")
    run.add_argument("model", choices=sorted(MODELS))
    run.add_argument("policy", choices=sorted(POLICIES))
    run.add_argument("--batch", type=int, default=None)
    run.add_argument("--platform", type=_platform, default=OPTANE_HM)
    run.add_argument(
        "--fast-fraction",
        type=float,
        default=None,
        help="fast memory as a fraction of the model's peak (paper: 0.2)",
    )
    run.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="inject faults at this rate (0 = no injector attached)",
    )
    run.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault injector",
    )
    run.add_argument(
        "--audit",
        action="store_true",
        help="check memory-accounting invariants after every step",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace of the run to PATH (open in Perfetto)",
    )
    _add_insight_flags(run)
    _add_pressure_flags(run)
    _add_ras_flags(run)
    _add_admission_flags(run)

    compare = sub.add_parser("compare", help="all applicable policies on one model")
    compare.add_argument("model", choices=sorted(MODELS))
    compare.add_argument("--batch", type=int, default=None)
    compare.add_argument("--platform", type=_platform, default=OPTANE_HM)
    compare.add_argument("--fast-fraction", type=float, default=0.2)

    profile = sub.add_parser("profile", help="Sentinel's dynamic profile of a model")
    profile.add_argument("model", choices=sorted(MODELS))
    profile.add_argument("--batch", type=int, default=None)
    profile.add_argument("--top", type=int, default=10, help="hot tensors to list")

    sweep = sub.add_parser("sweep", help="Sentinel vs fast-memory fraction")
    sweep.add_argument("model", choices=sorted(MODELS))
    sweep.add_argument("--batch", type=int, default=None)
    sweep.add_argument(
        "--fractions",
        type=float,
        nargs="+",
        default=(0.2, 0.3, 0.4, 0.6),
    )

    maxbatch = sub.add_parser("maxbatch", help="max feasible batch per GPU policy")
    maxbatch.add_argument("model", choices=sorted(MODELS))
    maxbatch.add_argument(
        "--policies",
        nargs="+",
        default=["fast-only", "vdnn", "autotm", "swapadvisor", "capuchin", "sentinel-gpu"],
        choices=sorted(POLICIES),
    )
    maxbatch.add_argument("--limit", type=int, default=1 << 15)

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure by id"
    )
    experiment.add_argument("which", choices=sorted(EXPERIMENTS))

    chaos = sub.add_parser(
        "chaos", help="fault-rate sweep: throughput degradation per policy"
    )
    chaos.add_argument("model", choices=sorted(MODELS))
    chaos.add_argument(
        "--policies",
        nargs="+",
        default=["sentinel", "ial", "autotm"],
        choices=sorted(POLICIES),
    )
    chaos.add_argument(
        "--fault-rates",
        type=float,
        nargs="+",
        default=[0.0, 0.05, 0.1, 0.2],
    )
    chaos.add_argument("--fast-fraction", type=float, default=0.2)
    chaos.add_argument("--chaos-seed", type=int, default=1234)

    grid = sub.add_parser("grid", help="free-form policy x model sweep")
    grid.add_argument("--policies", nargs="+", default=["slow-only", "ial", "autotm", "sentinel", "fast-only"], choices=sorted(POLICIES))
    grid.add_argument("--models", nargs="+", default=["resnet32", "lstm", "dcgan"], choices=sorted(MODELS))
    grid.add_argument("--fast-fraction", type=float, default=0.2)
    grid.add_argument("--platform", type=_platform, default=OPTANE_HM)
    grid.add_argument("--value", default="step_time", help="RunMetrics field to tabulate")
    grid.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="inject faults at this rate on every grid point",
    )
    grid.add_argument("--chaos-seed", type=int, default=0)
    grid.add_argument(
        "--workers",
        type=int,
        default=1,
        help="grid points to run in parallel (multiprocessing); results are "
        "merged deterministically and byte-identical to --workers 1",
    )
    grid.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="capture every grid point's event trace and write one combined "
        "Chrome trace (one Perfetto process per point)",
    )
    grid.add_argument(
        "--insight",
        metavar="DIR",
        default=None,
        help="collect tensor insight on every grid point and write one "
        "canonical JSON artifact per point into DIR",
    )
    _add_pressure_flags(grid)
    _add_admission_flags(grid)

    pressure = sub.add_parser(
        "pressure",
        help="capacity-pressure survival sweep under the memory governor",
    )
    pressure.add_argument(
        "--models", nargs="+", default=sorted(MODELS), choices=sorted(MODELS)
    )
    pressure.add_argument(
        "--policies",
        nargs="+",
        default=["sentinel", "ial"],
        choices=sorted(POLICIES),
    )
    pressure.add_argument(
        "--fractions",
        type=float,
        nargs="+",
        default=[0.1, 0.05],
        help="fast memory as fractions of each model's peak",
    )
    pressure.add_argument(
        "--fast-watermarks",
        type=_watermarks,
        metavar="LOW,HIGH",
        default=(0.75, 0.9),
    )
    pressure.add_argument("--reserve-frames", type=int, default=32)
    pressure.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write one combined Chrome trace of every point to PATH",
    )

    concurrent = sub.add_parser(
        "concurrent",
        help="co-schedule several models on one machine (event engine)",
    )
    concurrent.add_argument(
        "models", nargs="+", choices=sorted(MODELS), help="one workload per model"
    )
    concurrent.add_argument(
        "--policies",
        nargs="+",
        default=["sentinel"],
        choices=sorted(POLICIES),
        help="one policy per model, or a single policy for all workloads",
    )
    concurrent.add_argument("--platform", type=_platform, default=OPTANE_HM)
    concurrent.add_argument(
        "--fast-fraction",
        type=float,
        default=0.2,
        help="fast memory as a fraction of the workloads' combined peak",
    )
    concurrent.add_argument(
        "--steps", type=int, default=None, help="steady steps per workload"
    )
    concurrent.add_argument(
        "--isolated",
        action="store_true",
        help="also run each workload alone at the same fast capacity and "
        "report the co-scheduling slowdown",
    )
    concurrent.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace (one track per workload) to PATH",
    )

    serve = sub.add_parser(
        "serve",
        help="open-loop serving: Poisson arrivals, SLO-aware admission, "
        "failure episodes (event engine)",
    )
    serve.add_argument(
        "--scenario",
        choices=("steady", "overload", "failure"),
        default="steady",
        help="preset: steady = under capacity; overload = arrivals exceed "
        "service rate (sheds, bounded p99); failure = machine-offline "
        "episodes mid-run (restarts from checkpoints)",
    )
    serve.add_argument("--rate", type=float, default=None, help="arrivals/s (overrides the preset)")
    serve.add_argument("--horizon", type=float, default=None, help="arrival window in seconds")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--slots", type=int, default=2, help="concurrent execution slots")
    serve.add_argument(
        "--admission",
        choices=("fifo", "edf", "watermark"),
        default="edf",
    )
    serve.add_argument("--queue", type=int, default=4, help="admission queue bound")
    serve.add_argument("--timeout", type=float, default=240.0, help="per-attempt timeout (s)")
    serve.add_argument("--max-attempts", type=int, default=3, help="admission attempts incl. the first")
    serve.add_argument("--restart-budget", type=int, default=2, help="failure-episode restarts per job")
    serve.add_argument(
        "--fast-fraction",
        type=float,
        default=0.5,
        help="fast memory as a fraction of (largest template peak x slots)",
    )
    serve.add_argument("--platform", type=_platform, default=OPTANE_HM)
    serve.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace (serve lane + per-job tracks) to PATH",
    )
    serve.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the canonical serve report JSON to PATH",
    )
    _add_insight_flags(serve)
    _add_ras_flags(serve)
    _add_admission_flags(serve, flag="--migration-admission")

    trace = sub.add_parser(
        "trace", help="run one simulation under event tracing and export it"
    )
    trace.add_argument("model", choices=sorted(MODELS))
    trace.add_argument("policy", choices=sorted(POLICIES))
    trace.add_argument("--batch", type=int, default=None)
    trace.add_argument("--platform", type=_platform, default=OPTANE_HM)
    trace.add_argument("--fast-fraction", type=float, default=0.2)
    trace.add_argument("--fault-rate", type=float, default=0.0)
    trace.add_argument("--chaos-seed", type=int, default=0)
    trace.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="output file (default: print the per-category summary only)",
    )
    trace.add_argument(
        "--format",
        choices=("chrome", "jsonl", "summary"),
        default="chrome",
        help="chrome: Perfetto-loadable trace_event JSON; jsonl: canonical "
        "one-event-per-line records; summary: per-category digest table",
    )

    critpath = sub.add_parser(
        "critpath",
        help="per-step critical-path attribution of a traced run",
    )
    critpath.add_argument("model", choices=sorted(MODELS))
    critpath.add_argument("policy", choices=sorted(POLICIES))
    critpath.add_argument("--batch", type=int, default=None)
    critpath.add_argument("--platform", type=_platform, default=OPTANE_HM)
    critpath.add_argument("--fast-fraction", type=float, default=0.2)
    critpath.add_argument("--fault-rate", type=float, default=0.0)
    critpath.add_argument("--chaos-seed", type=int, default=0)
    critpath.add_argument(
        "--capacity",
        type=int,
        default=65536,
        help="tracer ring-buffer capacity; attribution refuses truncated "
        "windows, so raise this for very large models",
    )
    critpath.add_argument(
        "--bandwidth-scale",
        type=float,
        default=None,
        metavar="K",
        help="additionally answer the what-if of K-times migration bandwidth",
    )
    critpath.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the per-step attribution as canonical JSON to PATH",
    )
    _add_pressure_flags(critpath)
    _add_ras_flags(critpath)

    insight = sub.add_parser(
        "insight",
        help="tensor-level insight report: residency, heat, ping-pong, "
        "thrash, per-tensor stall attribution",
    )
    insight.add_argument("model", choices=sorted(MODELS))
    insight.add_argument("policy", choices=sorted(POLICIES))
    insight.add_argument("--batch", type=int, default=None)
    insight.add_argument("--platform", type=_platform, default=OPTANE_HM)
    insight.add_argument("--fast-fraction", type=float, default=0.2)
    insight.add_argument("--fault-rate", type=float, default=0.0)
    insight.add_argument("--chaos-seed", type=int, default=0)
    insight.add_argument(
        "--top", type=int, default=10, help="tensors to list in the table"
    )
    insight.add_argument(
        "--capacity",
        type=int,
        default=65536,
        help="tracer ring-buffer capacity for the stall-attribution join; "
        "a truncated window skips the join instead of failing the report",
    )
    insight.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the canonical insight JSON artifact to PATH",
    )
    insight.add_argument(
        "--html",
        metavar="PATH",
        default=None,
        help="write the self-contained HTML report to PATH",
    )
    _add_pressure_flags(insight)
    _add_ras_flags(insight)

    bench = sub.add_parser(
        "bench",
        help="attribution benchmark: write BENCH_*.json and gate on the "
        "committed step-time baseline",
    )
    bench.add_argument(
        "--models",
        nargs="+",
        default=None,
        choices=sorted(MODELS),
        help="models to benchmark (default: the CI smoke set)",
    )
    bench.add_argument("--policy", choices=sorted(POLICIES), default="sentinel")
    bench.add_argument("--fast-fraction", type=float, default=0.2)
    bench.add_argument(
        "--out-dir",
        default="bench-artifacts",
        help="directory for BENCH_attribution.json / BENCH_step_time.json",
    )
    bench.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="committed BENCH_step_time.json to gate against; written on "
        "first run when missing",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="maximum allowed relative growth of median step time (0.05 = 5%%)",
    )
    bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )
    bench.add_argument(
        "--wallclock",
        action="store_true",
        help="also measure wall-clock throughput (vectorized vs scalar) and "
        "write BENCH_wallclock.json",
    )
    bench.add_argument(
        "--wallclock-baseline",
        metavar="PATH",
        default=None,
        help="committed BENCH_wallclock.json to gate the vectorized speedup "
        "against; written on first run when missing",
    )
    bench.add_argument(
        "--band",
        type=float,
        default=0.25,
        help="tolerance band for the wallclock gate: fail when the speedup "
        "falls more than this fraction below baseline (0.25 = 25%%)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="wall-clock repeats per (model, path) measurement",
    )

    from repro.mem.admission import CONTROLLERS

    tournament = sub.add_parser(
        "tournament",
        help="rank {model x policy x admission x governor} combos on a "
        "byte-stable leaderboard",
    )
    tournament.add_argument(
        "--models",
        nargs="+",
        default=None,
        choices=sorted(MODELS),
        help="zoo models to run (default: dcgan lstm mobilenet resnet32)",
    )
    tournament.add_argument(
        "--policies",
        nargs="+",
        default=None,
        choices=sorted(POLICIES),
        help="placement policies to rank (default: sentinel ial autotm)",
    )
    tournament.add_argument(
        "--admissions",
        nargs="+",
        default=None,
        choices=sorted(CONTROLLERS),
        help="admission controllers to rank (default: every registered one)",
    )
    tournament.add_argument(
        "--governor",
        choices=("off", "on", "both"),
        default="both",
        help="pressure-governor axis: off/on pins one setting, both runs "
        "the full axis",
    )
    tournament.add_argument(
        "--fast-fraction",
        type=float,
        default=0.2,
        help="fast memory as a fraction of each model's peak",
    )
    tournament.add_argument("--platform", type=_platform, default=OPTANE_HM)
    tournament.add_argument(
        "--workers",
        type=int,
        default=1,
        help="cells to run in parallel (multiprocessing); merged "
        "deterministically, byte-identical to --workers 1",
    )
    tournament.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the canonical tournament artifact JSON to PATH "
        "(byte-identical across reruns)",
    )

    sub.add_parser("models", help="list the model zoo")
    sub.add_parser("features", help="print Table I (design comparison)")
    return parser


# ------------------------------------------------------------------ commands

def _cmd_run(args) -> int:
    chaos = _chaos_from(args)
    tracer = None
    if args.trace:
        from repro.obs import EventTracer

        tracer = EventTracer()
    collector = _insight_from(args)
    admission, admission_args = _admission_from(args)
    metrics = run_policy(
        args.policy,
        model=args.model,
        batch_size=args.batch,
        platform=args.platform,
        fast_fraction=args.fast_fraction,
        chaos=chaos,
        audit=args.audit,
        tracer=tracer,
        pressure=_pressure_from(args),
        ras=_ras_from(args),
        insight=collector,
        admission=admission,
        admission_args=admission_args,
    )
    rows = [
        ("step time (s)", f"{metrics.step_time:.4f}"),
        ("throughput (samples/s)", f"{metrics.throughput:.1f}"),
        ("compute time (s)", f"{metrics.compute_time:.4f}"),
        ("exposed stall (s)", f"{metrics.stall_time:.4f}"),
        ("migrated (MiB)", f"{mib(metrics.migrated_bytes):.0f}"),
        ("fast traffic (MiB)", f"{mib(metrics.bytes_fast):.0f}"),
        ("slow traffic (MiB)", f"{mib(metrics.bytes_slow):.0f}"),
        ("peak fast use (GiB)", f"{gib(metrics.peak_fast):.2f}"),
    ]
    rows += [
        (f"extras.{key}", f"{value:g}")
        for key, value in metrics.extras.items()
        if not key.startswith(("pressure.", "migration.relocated", "admission."))
    ]
    print(
        format_table(
            ("metric", "value"),
            rows,
            title=f"{args.model} / {args.policy} (batch {metrics.batch_size})",
        )
    )
    if any(key.startswith("pressure.") for key in metrics.extras):
        print()
        print(format_pressure(metrics.extras))
    if any(key.startswith("admission.") for key in metrics.extras):
        print()
        print(format_admission(metrics.extras))
    if tracer is not None:
        from repro.obs import write_chrome

        write_chrome(
            tracer.events, args.trace, process_name=f"{args.model}/{args.policy}"
        )
        print(f"trace: {len(tracer)} events -> {args.trace}")
    if collector is not None:
        _write_insight_artifacts(
            args, collector.report(meta={"model": args.model, "policy": args.policy})
        )
    return 0


def _cmd_compare(args) -> int:
    gpu = args.platform is GPU_HM
    skip = CPU_ONLY if gpu else GPU_ONLY
    order = [name for name in POLICIES if name not in skip]
    rows = []
    baseline: Optional[float] = None
    for name in order:
        fraction = None if name in ("slow-only", "fast-only") else args.fast_fraction
        try:
            metrics = run_policy(
                name,
                model=args.model,
                batch_size=args.batch,
                platform=args.platform,
                fast_fraction=fraction,
            )
        except UnsupportedModelError:
            rows.append((name, "x", "x", "x"))
            continue
        except OOM_ERRORS:
            # Below the policy's feasible fast-memory size (e.g. under
            # Sentinel's §IV-E lower bound on a residency platform).
            rows.append((name, "oom", "oom", "oom"))
            continue
        if baseline is None:
            baseline = metrics.step_time
        rows.append(
            (
                name,
                f"{metrics.step_time:.4f}",
                f"{baseline / metrics.step_time:.2f}x",
                f"{mib(metrics.migrated_bytes):.0f}",
            )
        )
    print(
        format_table(
            ("policy", "step (s)", "speedup", "migrated MiB"),
            rows,
            title=f"{args.model} on {'GPU' if gpu else 'Optane'} platform, "
            f"fast = {args.fast_fraction:.0%} of peak",
        )
    )
    return 0


def _cmd_profile(args) -> int:
    from repro.core import DynamicProfiler
    from repro.models import build_model

    graph = build_model(args.model, batch_size=args.batch)
    run = DynamicProfiler(OPTANE_HM).run(graph)
    profile = run.profile
    hot = sorted(profile.tensors.values(), key=lambda t: -t.total_touches)
    rows = [
        (t.name, t.nbytes, t.total_touches, "pre" if t.preallocated else t.lifetime_layers)
        for t in hot[: args.top]
    ]
    print(
        format_table(
            ("tensor", "bytes", "accesses", "lifetime (layers)"),
            rows,
            title=f"{graph.name}: hottest tensors "
            f"({len(profile.tensors)} total, {profile.fault_count} faults, "
            f"lower bound {mib(profile.fast_memory_lower_bound()):.0f} MiB)",
        )
    )
    return 0


def _cmd_sweep(args) -> int:
    fast = run_policy("fast-only", model=args.model, batch_size=args.batch)
    rows = []
    for fraction in args.fractions:
        metrics = run_policy(
            "sentinel", model=args.model, batch_size=args.batch, fast_fraction=fraction
        )
        rows.append(
            (
                f"{fraction:.0%}",
                f"{metrics.step_time:.4f}",
                f"{metrics.step_time / fast.step_time:.2f}x",
                f"{mib(metrics.migrated_bytes):.0f}",
            )
        )
    rows.append(("fast-only", f"{fast.step_time:.4f}", "1.00x", "0"))
    print(
        format_table(
            ("fast memory", "step (s)", "vs fast-only", "migrated MiB"),
            rows,
            title=f"Sentinel sensitivity — {args.model}",
        )
    )
    return 0


def _cmd_maxbatch(args) -> int:
    rows = []
    for policy in args.policies:
        try:
            best = max_batch_size(policy, args.model, GPU_HM, limit=args.limit)
            rows.append((policy, best))
        except UnsupportedModelError:
            rows.append((policy, "x"))
    print(
        format_table(
            ("policy", "max batch"),
            rows,
            title=f"{args.model} on {gib(GPU_HM.fast.capacity):.0f} GiB GPU memory",
        )
    )
    return 0


def _cmd_experiment(args) -> int:
    from repro.harness import experiments

    function = getattr(experiments, EXPERIMENTS[args.which])
    result = function()
    print(result["text"])
    return 0


def _cmd_grid(args) -> int:
    from repro.harness.sweeps import sweep

    admission, admission_args = _admission_from(args)
    result = sweep(
        policies=args.policies,
        models=args.models,
        fast_fractions=(args.fast_fraction,),
        platform=args.platform,
        chaos=_chaos_from(args),
        trace=args.trace is not None,
        pressure=_pressure_from(args),
        workers=args.workers,
        insight=args.insight is not None,
        admission=admission,
        admission_args=admission_args,
    )
    print(result.to_table(value=args.value))
    failures = [p for p in result if not p.ok]
    if failures:
        print(
            "\nfailed points: "
            + ", ".join(f"{p.policy}/{p.model} ({p.failure})" for p in failures)
        )
    if args.trace:
        import json

        from repro.obs import combine_chrome

        labeled = [(p.label, p.events) for p in result if p.events]
        with open(args.trace, "w") as handle:
            json.dump(combine_chrome(labeled), handle, sort_keys=True)
        total = sum(len(events) for _, events in labeled)
        print(f"trace: {total} events from {len(labeled)} points -> {args.trace}")
    if args.insight:
        import os

        from repro.obs import write_insight

        os.makedirs(args.insight, exist_ok=True)
        written = 0
        for point in result:
            if point.insight is None:
                continue
            name = point.label.replace("/", "-") + ".json"
            write_insight(point.insight, os.path.join(args.insight, name))
            written += 1
        print(f"insight: {written} artifacts -> {args.insight}/")
    return 0


def _cmd_chaos(args) -> int:
    from repro.harness import experiments

    result = experiments.robustness_degradation(
        model=args.model,
        policies=tuple(args.policies),
        fault_rates=tuple(args.fault_rates),
        fast_fraction=args.fast_fraction,
        chaos_seed=args.chaos_seed,
    )
    print(result["text"])
    totals: dict = {}
    for series in result["records"].values():
        for record in series:
            for key in ("retries", "busy_fallbacks", "aborted_bytes", "faults_dropped"):
                totals[key] = totals.get(key, 0) + record.get(key, 0)
    print()
    print(format_counters(totals, title="injected-fault totals"))
    return 0


def _cmd_pressure(args) -> int:
    from repro.harness import experiments

    result = experiments.pressure_survival(
        models=tuple(args.models),
        policies=tuple(args.policies),
        fast_fractions=tuple(args.fractions),
        watermarks=args.fast_watermarks,
        reserve_frames=args.reserve_frames,
        trace=args.trace is not None,
    )
    print(result["text"])
    totals: dict = {}
    for series in result["records"].values():
        for record in series:
            for key in (
                "spills",
                "spilled_bytes",
                "refused_promotions",
                "reclaims",
                "compaction_moves",
                "compaction_bytes",
            ):
                totals[f"pressure.{key}"] = (
                    totals.get(f"pressure.{key}", 0) + record.get(key, 0)
                )
    print()
    print(format_counters(totals, title="pressure totals"))
    if args.trace:
        import json

        from repro.obs import combine_chrome

        labeled = [pair for pair in result["labeled"] if pair[1]]
        with open(args.trace, "w") as handle:
            json.dump(combine_chrome(labeled), handle, sort_keys=True)
        total = sum(len(events) for _, events in labeled)
        print(f"trace: {total} events from {len(labeled)} points -> {args.trace}")
    return 0


def _cmd_concurrent(args) -> int:
    from repro.harness.cluster import WorkloadSpec, run_concurrent
    from repro.models.zoo import build_model

    policies = args.policies
    if len(policies) == 1:
        policies = policies * len(args.models)
    if len(policies) != len(args.models):
        print(
            f"error: {len(args.models)} models but {len(policies)} policies "
            "(give one per model, or one for all)",
            file=sys.stderr,
        )
        return 2
    tracer = None
    if args.trace:
        from repro.obs import EventTracer

        tracer = EventTracer()
    specs = []
    for index, (model, policy) in enumerate(zip(args.models, policies)):
        spec_kwargs = {} if args.steps is None else {"steps": args.steps}
        specs.append(
            WorkloadSpec(
                name=f"{model}-{index}", model=model, policy=policy, **spec_kwargs
            )
        )
    combined_peak = sum(
        build_model(model, scale="small").peak_memory_bytes()
        for model in args.models
    )
    cap = max(args.platform.page_size, int(combined_peak * args.fast_fraction))
    report = run_concurrent(
        specs, platform=args.platform, fast_capacity=cap, tracer=tracer
    )
    isolated = {}
    if args.isolated:
        for model, policy in zip(args.models, policies):
            if model not in isolated:
                isolated[model] = run_policy(
                    policy, model=model, platform=args.platform, fast_capacity=cap
                ).step_time
    rows = []
    for spec, workload in zip(specs, report.workloads):
        row = [
            workload.name,
            workload.policy,
            str(workload.steps),
            f"{workload.steady_step_time:.4f}",
            f"{workload.steps_per_second:.3f}",
        ]
        if args.isolated:
            iso = isolated[spec.model]
            row.append(
                f"{workload.steady_step_time / iso:.2f}x" if iso > 0 else "-"
            )
        rows.append(tuple(row))
    headers = ["workload", "policy", "steps", "steady step (s)", "steps/s"]
    if args.isolated:
        headers.append("vs isolated")
    print(
        format_table(
            tuple(headers),
            rows,
            title=f"{len(specs)} workloads co-scheduled, fast = "
            f"{args.fast_fraction:.0%} of combined peak "
            f"({mib(cap):.0f} MiB)",
        )
    )
    print(
        f"\nmakespan {report.makespan:.4f}s | aggregate "
        f"{report.aggregate_steps_per_second:.3f} steps/s | fairness "
        f"{report.fairness:.3f} | migrated {mib(report.promoted_bytes + report.demoted_bytes):.0f} MiB"
    )
    delays = ", ".join(
        f"{name} {delay * 1e3:.2f}ms"
        for name, delay in sorted(report.channel_queue_delay.items())
    )
    print(f"mean channel queueing delay: {delays}")
    if tracer is not None:
        from repro.obs import write_chrome

        write_chrome(
            tracer.events, args.trace, process_name="+".join(args.models)
        )
        print(f"trace: {len(tracer)} events -> {args.trace}")
    return 0


#: Serving scenario presets: (rate, horizon, episode config kwargs).
SERVE_SCENARIOS = {
    "steady": (0.2, 30.0, None),
    "overload": (1.0, 30.0, None),
    "failure": (0.3, 40.0, {"machine_mtbf": 6.0, "machine_mttr": 2.0}),
}


def _cmd_serve(args) -> int:
    from repro.chaos import EpisodeConfig
    from repro.harness.report import format_serve
    from repro.serve import JobTemplate, PoissonArrivals, ServeConfig, Server

    preset_rate, preset_horizon, episode_kwargs = SERVE_SCENARIOS[args.scenario]
    rate = args.rate if args.rate is not None else preset_rate
    horizon = args.horizon if args.horizon is not None else preset_horizon
    episodes = None
    if episode_kwargs is not None:
        episodes = EpisodeConfig(
            seed=args.seed, horizon=horizon, **episode_kwargs
        )
    mix = (
        JobTemplate(
            name="infer",
            model="mobilenet",
            policy="ial",
            steps=1,
            slo=15.0,
            weight=4.0,
        ),
        JobTemplate(name="train", model="dcgan", policy="ial", steps=2, slo=60.0),
    )
    tracer = None
    if args.trace:
        from repro.obs import EventTracer

        tracer = EventTracer()
    config = ServeConfig(
        seed=args.seed,
        slots=args.slots,
        admission=args.admission,
        queue_limit=args.queue,
        timeout=args.timeout,
        max_attempts=args.max_attempts,
        restart_budget=args.restart_budget,
        episodes=episodes,
    )
    collector = _insight_from(args)
    migration_admission, migration_admission_args = _admission_from(
        args, attr="migration_admission"
    )
    server = Server(
        PoissonArrivals(
            rate=rate, horizon=horizon, templates=mix, seed=args.seed
        ),
        config,
        platform=args.platform,
        fast_fraction=args.fast_fraction,
        tracer=tracer,
        ras=_ras_from(args),
        insight=collector,
        migration_admission=migration_admission,
        migration_admission_args=migration_admission_args,
    )
    report = server.run()
    print(
        format_serve(
            report,
            title=f"serving — {args.scenario} scenario, rate {rate:g}/s, "
            f"{args.admission} admission, seed {args.seed}",
        )
    )
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json(indent=2))
            handle.write("\n")
        print(f"report: {args.json}")
    if tracer is not None:
        from repro.obs import write_chrome

        events = tracer.events
        if collector is not None:
            # Bounded retention: keep machine-level tracks plus the
            # reservoir-sampled jobs only.
            events = collector.retained_events(events)
        write_chrome(
            events, args.trace, process_name="serve", tids=server.job_tids()
        )
        print(f"trace: {len(events)} events -> {args.trace}")
    if collector is not None:
        _write_insight_artifacts(
            args,
            collector.report(
                meta={"scenario": args.scenario, "seed": args.seed}
            ),
        )
    return 0


def _cmd_tournament(args) -> int:
    from repro.harness.tournament import (
        DEFAULT_ADMISSIONS,
        DEFAULT_MODELS,
        DEFAULT_POLICIES,
        format_leaderboard,
        run_tournament,
        tournament_json,
    )

    governors = {"off": (False,), "on": (True,), "both": (False, True)}
    result = run_tournament(
        models=tuple(args.models) if args.models else DEFAULT_MODELS,
        policies=tuple(args.policies) if args.policies else DEFAULT_POLICIES,
        admissions=(
            tuple(args.admissions) if args.admissions else DEFAULT_ADMISSIONS
        ),
        governors=governors[args.governor],
        fast_fraction=args.fast_fraction,
        platform=args.platform,
        workers=args.workers,
    )
    print(format_leaderboard(result))
    failures = [
        cell for cell in result["cells"] if cell.get("failure") is not None
    ]
    if failures:
        print(
            "\nfailed cells: "
            + ", ".join(
                f"{c['policy']}/{c['model']} ({c['failure']})" for c in failures
            )
        )
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(tournament_json(result))
        print(f"artifact: {args.json}")
    return 0


def _cmd_trace(args) -> int:
    from repro.harness.report import format_trace_summary
    from repro.obs import EventTracer, to_jsonl, write_chrome

    tracer = EventTracer()
    metrics = run_policy(
        args.policy,
        model=args.model,
        batch_size=args.batch,
        platform=args.platform,
        fast_fraction=args.fast_fraction,
        chaos=_chaos_from(args),
        tracer=tracer,
    )
    events = tracer.events
    title = (
        f"{args.model} / {args.policy} (batch {metrics.batch_size}, "
        f"step {metrics.step_time:.4f}s)"
    )
    if args.out is None or args.format == "summary":
        text = format_trace_summary(events, title=title, dropped=tracer.dropped)
        if args.out is not None:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
        else:
            print(text)
    if args.out is not None and args.format == "chrome":
        write_chrome(events, args.out, process_name=f"{args.model}/{args.policy}")
    elif args.out is not None and args.format == "jsonl":
        with open(args.out, "w") as handle:
            handle.write(to_jsonl(events))
    if args.out is not None:
        print(f"trace: {len(events)} events -> {args.out} ({args.format})")
    if tracer.dropped and args.out is not None:
        # The printed summary already carries this warning; repeat it on
        # stdout for file exports so the truncation is never silent.
        print(
            f"WARNING: ring buffer dropped {tracer.dropped} events — "
            "window truncated, attribution may be partial "
            "(raise EventTracer capacity to keep them)"
        )
    return 0


def _cmd_critpath(args) -> int:
    from repro.errors import TraceTruncatedError
    from repro.harness.report import format_attribution
    from repro.obs import EventTracer, attribute, build_step_dags, critical_path

    tracer = EventTracer(capacity=args.capacity)
    metrics = run_policy(
        args.policy,
        model=args.model,
        batch_size=args.batch,
        platform=args.platform,
        fast_fraction=args.fast_fraction,
        chaos=_chaos_from(args),
        pressure=_pressure_from(args),
        ras=_ras_from(args),
        tracer=tracer,
    )
    try:
        attribution = attribute(tracer.events, dropped=tracer.dropped)
        dags = build_step_dags(tracer.events, dropped=tracer.dropped)
    except TraceTruncatedError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    title = (
        f"{args.model} / {args.policy} (batch {metrics.batch_size}) — "
        "step attribution"
    )
    print(format_attribution(attribution, title=title))
    if args.bandwidth_scale is not None and len(attribution):
        scaled = attribution.what_if_bandwidth_scale(args.bandwidth_scale)
        print(
            f"what-if {args.bandwidth_scale:g}x bandwidth = {scaled:.4f} s"
        )
    if dags:
        dag = dags[-1]
        path = critical_path(dag)
        by_kind: dict = {}
        for node in path:
            by_kind[node.kind] = by_kind.get(node.kind, 0.0) + node.duration
        composition = ", ".join(
            f"{kind} {total:.4f}s" for kind, total in sorted(by_kind.items())
        )
        print(
            f"\ncritical path (step {dag.step}): {len(path)} nodes spanning "
            f"{dag.makespan:.4f}s — {composition}"
        )
    if args.json is not None:
        import json

        payload = {
            "model": args.model,
            "policy": args.policy,
            "steps": [
                {"step": step.step, "duration": step.duration, **step.components()}
                for step in attribution
            ],
            "median_step_time": attribution.median_step_time(),
            "what_if_free_migration": attribution.what_if_free_migration(),
            "what_if_2x_bandwidth": attribution.what_if_bandwidth_scale(2.0),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"attribution: {len(attribution)} steps -> {args.json}")
    return 0


def _cmd_insight(args) -> int:
    from repro.errors import TraceTruncatedError
    from repro.harness.report import format_insight
    from repro.obs import (
        EventTracer,
        InsightCollector,
        attribute,
        join_stall_attribution,
    )

    tracer = EventTracer(capacity=args.capacity)
    collector = InsightCollector()
    metrics = run_policy(
        args.policy,
        model=args.model,
        batch_size=args.batch,
        platform=args.platform,
        fast_fraction=args.fast_fraction,
        chaos=_chaos_from(args),
        pressure=_pressure_from(args),
        ras=_ras_from(args),
        tracer=tracer,
        insight=collector,
    )
    report = collector.report(
        meta={
            "model": args.model,
            "policy": args.policy,
            "batch_size": metrics.batch_size,
            "step_time": metrics.step_time,
        }
    )
    try:
        attribution = attribute(tracer.events, dropped=tracer.dropped)
    except TraceTruncatedError:
        print(
            "note: trace window truncated — skipping per-tensor stall "
            "attribution (raise --capacity to keep it)",
            file=sys.stderr,
        )
    else:
        join_stall_attribution(report, attribution)
    print(
        format_insight(
            report,
            top=args.top,
            title=f"{args.model} / {args.policy} (batch {metrics.batch_size}, "
            f"step {metrics.step_time:.4f}s) — tensor insight",
        )
    )
    if args.json:
        from repro.obs import write_insight

        write_insight(report, args.json)
        print(f"insight: {len(report['tensors'])} tensor episodes -> {args.json}")
    if args.html:
        from repro.obs import write_insight_html

        write_insight_html(report, args.html, top=args.top)
        print(f"insight html: {args.html}")
    return 0


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro.harness import bench

    models = tuple(args.models) if args.models else bench.DEFAULT_BENCH_MODELS
    payload = bench.attribution_benchmark(
        models=models, policy=args.policy, fast_fraction=args.fast_fraction
    )
    gate = bench.step_time_payload(payload)
    out_dir = Path(args.out_dir)
    bench.write_bench(payload, out_dir / "BENCH_attribution.json")
    bench.write_bench(gate, out_dir / "BENCH_step_time.json")
    rows = [
        (
            model,
            f"{entry['median_step_time']:.4f}",
            f"{entry['what_if_free_migration']:.4f}",
            f"{entry['what_if_2x_bandwidth']:.4f}",
        )
        for model, entry in sorted(payload["models"].items())
    ]
    print(
        format_table(
            ("model", "median step (s)", "free migration", "2x bandwidth"),
            rows,
            title=f"attribution benchmark — {args.policy}, "
            f"fast = {args.fast_fraction:.0%} of peak",
        )
    )
    print(f"artifacts: {out_dir / 'BENCH_attribution.json'}, "
          f"{out_dir / 'BENCH_step_time.json'}")
    status = 0
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        baseline = bench.load_bench(baseline_path)
        if baseline is None or args.update_baseline:
            bench.write_bench(gate, baseline_path)
            verb = "updated" if baseline is not None else "committed (first run)"
            print(f"baseline {verb}: {baseline_path}")
        else:
            problems = bench.check_regression(
                baseline, gate, threshold=args.threshold
            )
            if problems:
                for problem in problems:
                    print(f"REGRESSION: {problem}", file=sys.stderr)
                status = 1
            else:
                print(
                    f"benchmark gate passed: no model regressed more than "
                    f"{args.threshold:.0%} vs {baseline_path}"
                )
    if not (args.wallclock or args.wallclock_baseline):
        return status

    kwargs = {} if args.repeats is None else {"repeats": args.repeats}
    wallclock = bench.wallclock_benchmark(
        models=models, policy=args.policy,
        fast_fraction=args.fast_fraction, **kwargs,
    )
    bench.write_bench(wallclock, out_dir / "BENCH_wallclock.json")
    rows = [
        (
            model,
            f"{entry['steps_per_sec']:.1f}",
            f"{entry['scalar_steps_per_sec']:.1f}",
            f"{entry['speedup_vs_scalar']:.2f}x",
        )
        for model, entry in sorted(wallclock["models"].items())
    ]
    print(
        format_table(
            ("model", "steps/s", "scalar steps/s", "speedup"),
            rows,
            title="wall-clock throughput (simulated steps per second)",
        )
    )
    print(f"artifact: {out_dir / 'BENCH_wallclock.json'}")
    if args.wallclock_baseline is None:
        return status
    wc_baseline_path = Path(args.wallclock_baseline)
    wc_baseline = bench.load_bench(wc_baseline_path)
    if wc_baseline is None or args.update_baseline:
        bench.write_bench(wallclock, wc_baseline_path)
        verb = "updated" if wc_baseline is not None else "committed (first run)"
        print(f"wallclock baseline {verb}: {wc_baseline_path}")
        return status
    problems = bench.check_wallclock_regression(
        wc_baseline, wallclock, band=args.band
    )
    if problems:
        for problem in problems:
            print(f"WALLCLOCK REGRESSION: {problem}", file=sys.stderr)
        return 1
    print(
        f"wallclock gate passed: every model's vectorized speedup within "
        f"{args.band:.0%} of {wc_baseline_path}"
    )
    return status


def _cmd_features(args) -> int:
    from repro.baselines.features import feature_table

    print(feature_table())
    return 0


def _cmd_models(args) -> int:
    rows = [
        (spec.name, spec.small_batch, spec.large_batch, spec.description)
        for spec in MODELS.values()
    ]
    print(format_table(("model", "batch(S)", "batch(L)", "description"), rows))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.scalar_path:
        from repro import accel

        accel.set_scalar_path(True)
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "profile": _cmd_profile,
        "sweep": _cmd_sweep,
        "maxbatch": _cmd_maxbatch,
        "experiment": _cmd_experiment,
        "models": _cmd_models,
        "features": _cmd_features,
        "grid": _cmd_grid,
        "chaos": _cmd_chaos,
        "pressure": _cmd_pressure,
        "concurrent": _cmd_concurrent,
        "serve": _cmd_serve,
        "trace": _cmd_trace,
        "critpath": _cmd_critpath,
        "insight": _cmd_insight,
        "bench": _cmd_bench,
        "tournament": _cmd_tournament,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
