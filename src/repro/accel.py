"""The vectorized/scalar execution-path switch.

The simulator keeps two implementations of every accelerated hot path:

* the **scalar** path — the original, obviously-correct Python loops.  It
  is the differential reference: the equivalence suite pins the vectorized
  path against it byte for byte (per-step results, counters, golden trace
  digests);
* the **vectorized** path — numpy batch accounting and plan-derived caches
  (see DESIGN.md).  Every vectorized site computes *exactly* the same
  arithmetic in the same order as its scalar twin: integer quantities are
  order-free, and floating-point accumulations keep the scalar association
  order, so enabling vectorization never changes a simulated result.

The switch is process-global (the paths are semantically identical, so it
is a performance knob, not an experiment parameter).  Select the scalar
reference with ``REPRO_SCALAR=1`` in the environment, the ``--scalar-path``
CLI flag, or :func:`set_scalar_path` / the :func:`scalar_path` context
manager in tests.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "vectorized_enabled",
    "scalar_enabled",
    "set_scalar_path",
    "scalar_path",
]

#: Process-global reference-path flag; ``True`` selects the scalar loops.
_SCALAR = os.environ.get("REPRO_SCALAR", "").strip() not in ("", "0", "false")

# The vectorized paths lean on numpy; without it every hot path silently
# takes its scalar twin (identical results, just slower) rather than
# making numpy a hard dependency of the whole simulator.
try:
    import numpy as _numpy  # noqa: F401

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only without numpy
    _HAVE_NUMPY = False


def vectorized_enabled() -> bool:
    """Whether hot paths should take their vectorized implementation."""
    return _HAVE_NUMPY and not _SCALAR


def scalar_enabled() -> bool:
    """Whether the scalar differential-reference path is selected."""
    return _SCALAR


def set_scalar_path(enabled: bool) -> None:
    """Select (or deselect) the scalar reference path process-wide."""
    global _SCALAR
    _SCALAR = bool(enabled)


@contextmanager
def scalar_path(enabled: bool = True) -> Iterator[None]:
    """Temporarily select the scalar (or vectorized) path.

    The differential suite runs each workload once per path under this
    context manager and asserts byte-identical outcomes.
    """
    global _SCALAR
    previous = _SCALAR
    _SCALAR = bool(enabled)
    try:
        yield
    finally:
        _SCALAR = previous
