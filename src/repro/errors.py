"""The common exception hierarchy of the reproduction runtime.

Every structured failure the runtime can raise derives from
:class:`ReproError`, so harness code can catch "anything this system
considers a managed failure" without enumerating concrete classes.  Two
branches matter to callers:

* :class:`MemoryPressureError` — the run hit a genuine capacity wall
  (device full, residency unsatisfiable).  The batch-size probes treat this
  branch as "infeasible", not as a bug.
* everything else — contract violations (:class:`ExecutionError`,
  :class:`PageError`), broken accounting (:class:`ConsistencyError`), or a
  migration mechanism failing permanently (:class:`MigrationFailure`).
  These indicate bugs or injected faults that the degradation machinery
  failed to absorb, and should surface.

The concrete classes are re-exported from their historical homes
(``repro.mem.devices.DeviceFullError``, ``repro.dnn.policy.ResidencyError``,
``repro.dnn.executor.ExecutionError``, ``repro.mem.page.PageError``) so
existing imports keep working.
"""

from __future__ import annotations


class ReproError(RuntimeError):
    """Base class for all structured failures raised by the runtime."""


class MemoryPressureError(ReproError):
    """A capacity wall: the workload does not fit the configured machine.

    Feasibility probes (``max_batch_size``, sweeps) catch this branch and
    record the point as out-of-memory rather than failing the experiment.
    """


class DeviceFullError(MemoryPressureError):
    """Raised when an allocation exceeds a device's remaining capacity."""


class ResidencyError(MemoryPressureError):
    """Raised when fast memory cannot hold a tensor that must be resident."""


class ExecutionError(ReproError):
    """Raised when a step cannot be executed (placement contract violated)."""


class PageError(ReproError):
    """Raised on invalid page-table operations (double map, missing run...)."""


class MigrationFailure(ReproError, ValueError):
    """A migration mechanism failed permanently (not a transient EBUSY).

    Transient submission failures are retried with backoff and, if they
    persist, degrade into the Case-3 "leave tensors in slow memory" path;
    this class is reserved for misuse of the engine itself (e.g. discarding
    an in-flight run), which no amount of retrying can fix.  Also a
    :class:`ValueError`: these were plain ``ValueError`` before the
    hierarchy existed and callers may still catch them as such.
    """


class TraceTruncatedError(ReproError):
    """An analysis refused a trace whose ring buffer dropped events.

    Critical-path attribution reconstructs a dependency DAG from the full
    event stream; with the observation window truncated the reconstruction
    would silently attribute only the surviving suffix.  Raised by
    :mod:`repro.obs.critpath` when ``dropped > 0`` — callers should re-run
    with a larger ``EventTracer(capacity=...)``.

    Attributes:
        dropped: number of events the ring buffer overwrote.
    """

    def __init__(self, dropped: int) -> None:
        self.dropped = dropped
        super().__init__(
            f"trace window truncated: ring buffer dropped {dropped} events — "
            f"attribution may be partial; re-run with a larger "
            f"EventTracer(capacity=...)"
        )


class AccountingError(ReproError, ValueError):
    """Device byte-accounting went negative (over-release / over-unreserve).

    Raised by :class:`repro.mem.devices.MemoryDevice` when a ``release`` or
    ``unreserve`` would drive the used/reserved counters below zero — always
    a bookkeeping bug in the caller (a double free, a retirement path
    returning frames it never took), never a recoverable condition.  Also a
    :class:`ValueError`: these were plain ``ValueError`` before the typed
    class existed and callers may still catch them as such.

    Attributes:
        device: name of the device whose accounting broke.
        counter: which counter would have underflowed (``"used"`` or
            ``"reserved"``).
    """

    def __init__(self, device: str, counter: str, detail: str) -> None:
        self.device = device
        self.counter = counter
        super().__init__(f"{device}: {counter} accounting underflow — {detail}")


class UncorrectableMemoryError(ReproError):
    """An uncorrectable memory error survived every recovery rung.

    Raised by :class:`repro.mem.ras.RasEngine` when a UE hits data whose
    loss cannot be absorbed: no clean copy exists on the other tier and the
    owning tensor cannot be rematerialized from its producer op.  This is
    deliberately *not* a :class:`MemoryPressureError` — the workload fits,
    the data is gone — so feasibility probes never mistake it for OOM.  The
    serving layer catches it per job: the owning job fails (against its
    restart budget) while the machine stays online.

    Attributes:
        vpn: virtual page number of the poisoned-by-UE page.
        device: name of the device the error struck.
        tensor: tid of the owning tensor if one was identified, else None.
    """

    def __init__(
        self, vpn: int, device: str, tensor=None, detail: str = ""
    ) -> None:
        self.vpn = vpn
        self.device = device
        self.tensor = tensor
        message = (
            f"uncorrectable memory error on {device} at vpn {vpn} "
            f"exhausted the recovery ladder"
        )
        if tensor is not None:
            message += f" (tensor {tensor})"
        if detail:
            message += f" — {detail}"
        super().__init__(message)


class ConsistencyError(ReproError):
    """An internal invariant was violated; names the broken invariant.

    Raised by the opt-in :class:`repro.chaos.InvariantAuditor` when the
    machine's memory accounting stops balancing — the failure mode graceful
    degradation must never introduce silently.

    Attributes:
        invariant: short stable identifier of the violated invariant
            (e.g. ``"device.usage-non-negative"``).
    """

    def __init__(self, invariant: str, detail: str = "") -> None:
        self.invariant = invariant
        message = f"invariant violated: {invariant}"
        if detail:
            message = f"{message} — {detail}"
        super().__init__(message)
