"""Migration admission control: controllers, engine gate, urgent bypass.

The controller unit tests drive :meth:`decide`/:meth:`on_admitted`/
:meth:`on_step` directly with synthetic :class:`MigrationRequest` objects;
the engine tests attach controllers to a real :class:`MigrationEngine` and
check the gate's contracts — deny/defer comes back as the established
leave-in-slow (Case 2) signal, urgent requests never reach the controller,
and counters/trace instants appear only when a decision is negative.
"""

import pytest

from repro.mem.admission import (
    ADMIT,
    DEFER,
    DENY,
    AdmissionController,
    AlwaysAdmit,
    BenefitCostController,
    CONTROLLERS,
    FeedbackController,
    MigrationRequest,
    admit,
    defer,
    deny,
    make_admission,
    parse_admission_args,
)
from repro.mem.devices import DeviceKind, DeviceSpec, MemoryDevice
from repro.mem.migration import MigrationEngine
from repro.mem.page import PageTable
from repro.obs import EventTracer, MetricsRegistry
from repro.sim.channel import BandwidthChannel

PAGE = 4096


def request(
    kind="promote",
    nbytes=4 * PAGE,
    nruns=1,
    tag="prefetch",
    now=0.0,
    vpns=(1,),
    heat=0.0,
    in_flight_bytes=0,
    backlog=0.0,
):
    return MigrationRequest(
        kind=kind,
        nbytes=nbytes,
        nruns=nruns,
        tag=tag,
        now=now,
        vpns=vpns,
        heat=heat,
        in_flight_bytes=in_flight_bytes,
        backlog=backlog,
    )


def make_engine(fast_pages=16, slow_pages=1024, tracer=None, metrics=None):
    table = PageTable(page_size=PAGE)
    fast = MemoryDevice(
        DeviceSpec("fast", fast_pages * PAGE, 1e9, 1e9), DeviceKind.FAST
    )
    slow = MemoryDevice(
        DeviceSpec("slow", slow_pages * PAGE, 1e8, 1e8), DeviceKind.SLOW
    )
    engine = MigrationEngine(
        table,
        fast,
        slow,
        BandwidthChannel(1e6, "promote"),
        BandwidthChannel(5e5, "demote"),
        stats=metrics,
        tracer=tracer,
    )
    return table, fast, slow, engine


def map_on(table, device, npages, fast, slow):
    run = table.map_run(npages, device)
    (fast if device is DeviceKind.FAST else slow).allocate(npages * PAGE)
    return run


class DenyAll(AdmissionController):
    """Test double: refuse every background request."""

    name = "deny-all"

    def __init__(self):
        self.seen = []

    def decide(self, req):
        self.seen.append(req)
        return deny("test")


class TestRegistry:
    def test_registered_names(self):
        assert set(CONTROLLERS) == {"always", "benefit-cost", "feedback"}

    def test_make_admission_builds_fresh_instances(self):
        a = make_admission("feedback")
        b = make_admission("feedback")
        assert a is not b
        assert a.name == "feedback"

    def test_make_admission_forwards_kwargs(self):
        controller = make_admission("feedback", stall_target=0.2)
        assert controller.stall_target == 0.2

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown admission controller"):
            make_admission("nope")


class TestParseArgs:
    def test_empty_and_none(self):
        assert parse_admission_args(None) == {}
        assert parse_admission_args("") == {}

    def test_coercion_order(self):
        args = parse_admission_args(
            "a=3,b=0.25,c=true,d=False,e=hello"
        )
        assert args == {"a": 3, "b": 0.25, "c": True, "d": False, "e": "hello"}
        assert isinstance(args["a"], int)

    def test_dashes_normalize_to_underscores(self):
        assert parse_admission_args("stall-target=0.1") == {"stall_target": 0.1}

    def test_missing_equals_raises(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_admission_args("oops")


class TestDecisions:
    def test_verdict_helpers(self):
        assert admit().verdict == ADMIT and admit().admitted
        assert deny("x").verdict == DENY and not deny("x").admitted
        assert defer("y").verdict == DEFER and not defer("y").admitted
        assert deny("low-benefit").reason == "low-benefit"

    def test_admit_is_shared_singleton(self):
        assert admit() is admit()


class TestAlwaysAdmit:
    def test_admits_everything(self):
        controller = AlwaysAdmit()
        assert controller.decide(request(kind="promote")).admitted
        assert controller.decide(request(kind="demote")).admitted
        assert controller.decide(request(heat=0.0, in_flight_bytes=1 << 30)).admitted


class TestBenefitCost:
    def test_demotes_always_admitted(self):
        controller = BenefitCostController()
        assert controller.decide(
            request(kind="demote", in_flight_bytes=1 << 30)
        ).admitted

    def test_hot_idle_promote_admitted(self):
        controller = BenefitCostController()
        assert controller.decide(request(heat=8.0)).admitted

    def test_occupied_channel_defers(self):
        # Benefit 1 (floor) against in-flight load 16x the payload: defer.
        controller = BenefitCostController()
        decision = controller.decide(
            request(nbytes=PAGE, in_flight_bytes=16 * PAGE)
        )
        assert decision.verdict == DEFER
        assert decision.reason == "occupancy"

    def test_idle_low_benefit_denies(self):
        controller = BenefitCostController(min_benefit=2.0)
        decision = controller.decide(request(heat=0.0))
        assert decision.verdict == DENY
        assert decision.reason == "low-benefit"

    def test_pingpong_penalty_flips_the_decision(self):
        controller = BenefitCostController(
            min_benefit=0.5, pingpong_window=1.0, pingpong_penalty=4.0
        )
        # The same promote admits cold...
        assert controller.decide(request(vpns=(7,), now=1.0)).admitted
        # ...but after an admitted demote of the same vpn, benefit/4 < 0.5.
        controller.on_admitted(request(kind="demote", vpns=(7,), now=1.5))
        decision = controller.decide(request(vpns=(7,), now=2.0))
        assert not decision.admitted
        assert decision.reason == "low-benefit"
        # Outside the window the penalty expires.
        assert controller.decide(request(vpns=(7,), now=9.0)).admitted

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            BenefitCostController(min_benefit=0.0)
        with pytest.raises(ValueError):
            BenefitCostController(pingpong_penalty=0.5)


class TestFeedback:
    def test_demotes_always_admitted(self):
        controller = FeedbackController()
        controller.on_step(0, 1.0, 1.0)  # fully stalled: throttle trips
        assert controller.throttled
        assert controller.decide(request(kind="demote")).admitted

    def test_cooldown_denies_repromote(self):
        controller = FeedbackController(cooldown=0.5)
        controller.on_admitted(request(kind="demote", vpns=(3,), now=1.0))
        decision = controller.decide(request(vpns=(3,), now=1.2))
        assert decision.verdict == DENY
        assert decision.reason == "cooldown"
        # After the cooldown the vpn promotes again.
        assert controller.decide(request(vpns=(3,), now=1.6)).admitted

    def test_hysteresis_throttles_and_releases(self):
        controller = FeedbackController(
            stall_target=0.1, release=0.5, smoothing=1.0
        )
        controller.on_step(0, 1.0, 0.2)
        assert controller.throttled
        assert controller.decide(request()).reason == "stall-share"
        # Between release*target and target: the throttle holds (hysteresis).
        controller.on_step(1, 1.0, 0.07)
        assert controller.throttled
        controller.on_step(2, 1.0, 0.0)
        assert not controller.throttled
        assert controller.decide(request()).admitted

    def test_rate_limit_defers_excess(self):
        controller = FeedbackController(
            rate_bytes_per_s=1024.0, burst_bytes=2 * PAGE
        )
        first = request(nbytes=2 * PAGE, now=0.0)
        assert controller.decide(first).admitted
        controller.on_admitted(first)
        decision = controller.decide(request(nbytes=PAGE, now=0.0))
        assert decision.verdict == DEFER
        assert decision.reason == "rate-limit"
        # The budget refills with simulated time.
        assert controller.decide(request(nbytes=PAGE, now=10.0)).admitted

    def test_zero_duration_step_is_ignored(self):
        controller = FeedbackController()
        controller.on_step(0, 0.0, 0.0)
        assert not controller.throttled

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            FeedbackController(stall_target=0.0)
        with pytest.raises(ValueError):
            FeedbackController(release=1.5)
        with pytest.raises(ValueError):
            FeedbackController(smoothing=0.0)


class TestEngineGate:
    def test_deny_is_the_case2_signal(self):
        table, fast, slow, engine = make_engine()
        engine.admission = DenyAll()
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        transfer, scheduled, skipped = engine.promote([run], now=0.0)
        assert transfer is None and scheduled == []
        assert skipped == [run]
        assert fast.used == 0  # nothing was reserved

    def test_denied_demote_stays_on_fast(self):
        table, fast, slow, engine = make_engine()
        engine.admission = DenyAll()
        run = map_on(table, DeviceKind.FAST, 4, fast, slow)
        transfer, scheduled = engine.demote([run], now=0.0)
        assert transfer is None and scheduled == []
        assert run.device is DeviceKind.FAST

    def test_urgent_bypasses_the_controller(self):
        table, fast, slow, engine = make_engine()
        controller = DenyAll()
        engine.admission = controller
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        transfer, scheduled, skipped = engine.promote([run], now=0.0, urgent=True)
        assert scheduled == [run] and skipped == []
        assert controller.seen == []  # never consulted

    def test_request_carries_engine_state(self):
        table, fast, slow, engine = make_engine()
        controller = DenyAll()
        engine.admission = controller
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        run.reads += 6
        run.writes += 2
        engine.promote([run], now=2.5, tag="prefetch")
        (req,) = controller.seen
        assert req.kind == "promote"
        assert req.nbytes == 4 * PAGE
        assert req.nruns == 1
        assert req.tag == "prefetch"
        assert req.now == 2.5
        assert req.vpns == (run.vpn,)
        assert req.heat == pytest.approx(8 / 4)

    def test_counters_and_help_on_deny(self):
        registry = MetricsRegistry()
        table, fast, slow, engine = make_engine(metrics=registry)
        engine.admission = DenyAll()
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        engine.promote([run], now=0.0)
        assert registry.counter("admission.denied.test").value == 1
        assert registry.counter("admission.denied_bytes").value == 4 * PAGE
        assert "denied by the admission" in registry.to_prometheus()

    def test_admitted_counters_without_trace_events(self):
        tracer = EventTracer()
        registry = MetricsRegistry()
        table, fast, slow, engine = make_engine(tracer=tracer, metrics=registry)
        engine.admission = AlwaysAdmit()
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        engine.promote([run], now=0.0)
        assert registry.counter("admission.admitted").value == 1
        assert registry.counter("admission.admitted_bytes").value == 4 * PAGE
        assert not [e for e in tracer.events if e.cat == "admission"]

    def test_deny_emits_admission_instant(self):
        tracer = EventTracer()
        table, fast, slow, engine = make_engine(tracer=tracer)
        engine.admission = DenyAll()
        run = map_on(table, DeviceKind.SLOW, 4, fast, slow)
        engine.promote([run], now=0.0, tag="prefetch")
        events = [e for e in tracer.events if e.cat == "admission"]
        assert len(events) == 1
        assert events[0].name == "admission-deny"
        assert events[0].args["reason"] == "test"
        assert events[0].args["kind"] == "promote"
        assert events[0].args["nbytes"] == 4 * PAGE
