"""DRAM cache (Optane Memory Mode) model."""

import pytest

from repro.mem.cache import DRAMCache
from repro.mem.devices import DeviceKind, DeviceSpec, MemoryDevice


def make_cache(fast_capacity=1 << 20, fill_bw=0.0, writeback_bw=0.0):
    fast = MemoryDevice(
        DeviceSpec("dram", fast_capacity, 1e9, 1e9), DeviceKind.FAST
    )
    slow = MemoryDevice(
        DeviceSpec("pmm", 1 << 30, 1e8, 5e7), DeviceKind.SLOW
    )
    return DRAMCache(
        fast,
        slow,
        page_size=4096,
        fill_bandwidth=fill_bw,
        writeback_bandwidth=writeback_bw,
    )


class TestDRAMCache:
    def test_first_access_misses_then_hits(self):
        cache = make_cache()
        miss_cost = cache.access(run_id=1, run_bytes=4096, touched_bytes=4096, is_write=False)
        hit_cost = cache.access(run_id=1, run_bytes=4096, touched_bytes=4096, is_write=False)
        assert cache.misses == 1
        assert cache.hits == 1
        assert miss_cost > hit_cost

    def test_capacity_eviction_is_lru(self):
        cache = make_cache(fast_capacity=8192)  # effective capacity 6144
        cache.access(1, 4096, 4096, is_write=False)
        cache.access(2, 4096, 4096, is_write=False)  # evicts 1
        assert not cache.resident(1)
        assert cache.resident(2)

    def test_dirty_eviction_charges_writeback(self):
        cache = make_cache(fast_capacity=8192)
        cache.access(1, 4096, 4096, is_write=True)
        cost_clean_fill = make_cache(fast_capacity=8192).access(
            2, 4096, 4096, is_write=False
        )
        cost_with_writeback = cache.access(2, 4096, 4096, is_write=False)
        assert cost_with_writeback > cost_clean_fill
        assert cache.writeback_bytes == 4096

    def test_uncacheable_run_served_from_slow(self):
        cache = make_cache(fast_capacity=8192)
        big = 1 << 20
        cost = cache.access(1, big, big, is_write=False)
        assert not cache.resident(1)
        assert cost == pytest.approx(cache.slow.access_time(big, is_write=False))

    def test_invalidate_frees_space(self):
        cache = make_cache(fast_capacity=8192)
        cache.access(1, 4096, 4096, is_write=True)
        cache.invalidate(1)
        assert not cache.resident(1)
        assert cache.used == 0

    def test_fill_bandwidth_override(self):
        slow_fill = make_cache().access(1, 4096, 4096, is_write=False)
        fast_fill = make_cache(fill_bw=1e9).access(1, 4096, 4096, is_write=False)
        assert fast_fill < slow_fill

    def test_hit_rate(self):
        cache = make_cache()
        assert cache.hit_rate == 0.0
        cache.access(1, 4096, 4096, is_write=False)
        cache.access(1, 4096, 4096, is_write=False)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_invalid_access_rejected(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.access(1, 0, 10, is_write=False)
        with pytest.raises(ValueError):
            cache.access(1, 4096, -1, is_write=False)

    def test_dirty_bytes_capped_at_run_size(self):
        cache = make_cache(fast_capacity=8192)
        for _ in range(5):
            cache.access(1, 4096, 4096, is_write=True)
        cache.access(2, 4096, 4096, is_write=False)  # evicts 1
        assert cache.writeback_bytes == 4096
