"""Energy model: arithmetic, specs, and policy-level consequences."""

import pytest

from repro.harness.runner import RunMetrics
from repro.mem.energy import (
    GPU_ENERGY,
    OPTANE_ENERGY,
    EnergyBreakdown,
    EnergySpec,
    estimate_step_energy,
)


def metrics_with(bytes_fast=0, bytes_slow=0, promoted=0, demoted=0, step_time=1.0):
    return RunMetrics(
        model="m",
        policy="p",
        batch_size=1,
        fast_capacity=1,
        step_time=step_time,
        throughput=1.0,
        compute_time=0.0,
        mem_time=0.0,
        stall_time=0.0,
        fault_time=0.0,
        promoted_bytes=promoted,
        demoted_bytes=demoted,
        bytes_fast=bytes_fast,
        bytes_slow=bytes_slow,
        peak_fast=0,
        peak_slow=0,
    )


class TestSpec:
    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            EnergySpec(fast_read=-1, fast_write=0, slow_read=0, slow_write=0)

    def test_migration_energy_composition(self):
        spec = EnergySpec(fast_read=1, fast_write=2, slow_read=3, slow_write=4)
        assert spec.promote_per_byte == 3 + 2
        assert spec.demote_per_byte == 1 + 4

    def test_presets_slow_costlier_than_fast(self):
        for spec in (OPTANE_ENERGY, GPU_ENERGY):
            assert spec.slow_read > spec.fast_read
            assert spec.slow_write > spec.fast_write
        # Optane's write asymmetry is the defining trait.
        assert OPTANE_ENERGY.slow_write > 2 * OPTANE_ENERGY.slow_read


class TestEstimate:
    def test_access_energy_linear_in_traffic(self):
        one = estimate_step_energy(metrics_with(bytes_fast=10**9), OPTANE_ENERGY)
        two = estimate_step_energy(metrics_with(bytes_fast=2 * 10**9), OPTANE_ENERGY)
        assert two.fast_access == pytest.approx(2 * one.fast_access)

    def test_slow_traffic_costs_more_than_fast(self):
        fast = estimate_step_energy(metrics_with(bytes_fast=10**9), OPTANE_ENERGY)
        slow = estimate_step_energy(metrics_with(bytes_slow=10**9), OPTANE_ENERGY)
        assert slow.slow_access > fast.fast_access

    def test_static_scales_with_time(self):
        short = estimate_step_energy(metrics_with(step_time=1.0), OPTANE_ENERGY)
        long = estimate_step_energy(metrics_with(step_time=3.0), OPTANE_ENERGY)
        assert long.static == pytest.approx(3 * short.static)

    def test_breakdown_totals(self):
        breakdown = EnergyBreakdown(
            fast_access=1.0, slow_access=2.0, migration=3.0, static=4.0
        )
        assert breakdown.dynamic == 6.0
        assert breakdown.total == 10.0


class TestPolicyEnergy:
    def test_sentinel_spends_less_dynamic_energy_than_slow_only(self):
        """Serving the working set from DRAM is cheaper per byte; Sentinel's
        migration surcharge must not eat the whole saving (the §IV-C
        argument, measured)."""
        from repro.harness.runner import run_policy

        slow = run_policy("slow-only", model="dcgan", batch_size=64)
        sentinel = run_policy(
            "sentinel", model="dcgan", batch_size=64, fast_fraction=0.3
        )
        slow_energy = estimate_step_energy(slow, OPTANE_ENERGY)
        sentinel_energy = estimate_step_energy(sentinel, OPTANE_ENERGY)
        assert sentinel_energy.dynamic < slow_energy.dynamic
        # And the faster step wins on static energy too.
        assert sentinel_energy.total < slow_energy.total
