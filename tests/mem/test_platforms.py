"""Platform presets: regime conditions the calibration doc promises."""

import dataclasses

import pytest

from repro.mem.platforms import CXL_HM, GPU_A100_HM, GPU_HM, OPTANE_HM, Platform

ALL_PLATFORMS = (OPTANE_HM, GPU_HM, CXL_HM, GPU_A100_HM)


class TestPresets:
    @pytest.mark.parametrize("platform", ALL_PLATFORMS, ids=lambda p: p.name)
    def test_fast_tier_is_actually_faster(self, platform):
        assert platform.fast.read_bandwidth > platform.slow.read_bandwidth
        assert platform.fast.write_bandwidth > platform.slow.write_bandwidth

    @pytest.mark.parametrize("platform", ALL_PLATFORMS, ids=lambda p: p.name)
    def test_capacity_hierarchy(self, platform):
        """The slow tier is the capacity tier — the premise of HM."""
        assert platform.slow.capacity > platform.fast.capacity

    @pytest.mark.parametrize("platform", (OPTANE_HM, CXL_HM), ids=lambda p: p.name)
    def test_cpu_migration_beats_op_level_slow_bandwidth(self, platform):
        """Calibration condition: sequential migration streams faster than
        op-level effective access on the slow tier (docs/CALIBRATION.md)."""
        assert platform.promote_bandwidth > platform.slow.read_bandwidth
        assert platform.demote_bandwidth > platform.slow.write_bandwidth

    @pytest.mark.parametrize(
        "platform", (GPU_HM, GPU_A100_HM), ids=lambda p: p.name
    )
    def test_gpu_residency_and_link_ratio(self, platform):
        assert platform.residency_required
        # HBM dwarfs the interconnect: the source of Figure 12's dynamics.
        assert platform.fast.read_bandwidth > 25 * platform.promote_bandwidth

    def test_a100_strictly_upgrades_v100(self):
        assert GPU_A100_HM.fast.capacity > GPU_HM.fast.capacity
        assert GPU_A100_HM.fast.read_bandwidth > GPU_HM.fast.read_bandwidth
        assert GPU_A100_HM.promote_bandwidth > GPU_HM.promote_bandwidth

    def test_page_size_replace(self):
        huge = dataclasses.replace(OPTANE_HM, page_size=2 * 1024 * 1024)
        assert huge.page_size == 2 * 1024 * 1024
        with pytest.raises(ValueError):
            Platform(
                name="bad",
                fast=OPTANE_HM.fast,
                slow=OPTANE_HM.slow,
                promote_bandwidth=1.0,
                demote_bandwidth=1.0,
                migration_latency=0.0,
                fault_cost=0.0,
                compute_throughput=1.0,
                residency_required=False,
                page_size=3000,  # not a power of two
            )

    def test_resize_returns_new_object(self):
        resized = OPTANE_HM.with_fast_capacity(1 << 30)
        assert resized is not OPTANE_HM
        assert OPTANE_HM.fast.capacity != 1 << 30 or True
        assert resized.fast.capacity == 1 << 30
