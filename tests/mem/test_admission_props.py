"""Property tests for the feedback controller's anti-ping-pong contract.

A ping-pong promotion is a promote admitted within the cooldown window of
a demote of the same page — exactly the migration the insight layer flags
as thrash.  On an adversarial alternating demote/promote trace, whatever
the vpns and gaps drawn:

* :class:`FeedbackController` admits **zero** ping-pong promotions (the
  per-tensor cooldown is a hard gate), so it never admits more than
  :class:`AlwaysAdmit`;
* whenever the trace contains at least one within-cooldown re-promotion,
  the reduction is **strict** — feedback admits strictly fewer ping-pongs
  than always.

Driven directly through ``decide``/``on_admitted`` with synthetic
:class:`MigrationRequest` objects, so the property is about the
controller, not the simulator around it.

Skipped wholesale when hypothesis is unavailable (it is an optional test
dependency; the simulator itself never imports it).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.mem.admission import (  # noqa: E402
    AlwaysAdmit,
    FeedbackController,
    MigrationRequest,
)

PAGE = 4096
COOLDOWN = 0.5


def request(kind, vpn, now):
    return MigrationRequest(
        kind=kind,
        nbytes=PAGE,
        nruns=1,
        tag="prefetch",
        now=now,
        vpns=(vpn,),
        heat=0.0,
        in_flight_bytes=0,
        backlog=0.0,
    )


# One adversarial event: a vpn is demoted, then re-promoted ``gap``
# seconds later.  Gaps straddle the cooldown so traces mix thrashing
# pairs (gap < COOLDOWN) with legitimate re-promotions (gap >= COOLDOWN).
pairs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),  # vpn (collisions intended)
        st.floats(min_value=0.01, max_value=2 * COOLDOWN),  # re-promote gap
        st.floats(min_value=0.0, max_value=1.0),  # spacing to next pair
    ),
    min_size=1,
    max_size=40,
)


def replay(controller, trace):
    """Run the alternating trace; count admitted ping-pong promotions."""
    now = 0.0
    pingpongs = 0
    demoted_at = {}
    for vpn, gap, spacing in trace:
        demote = request("demote", vpn, now)
        if controller.decide(demote).admitted:
            controller.on_admitted(demote)
            demoted_at[vpn] = now
        promote = request("promote", vpn, now + gap)
        if controller.decide(promote).admitted:
            controller.on_admitted(promote)
            last = demoted_at.get(vpn)
            if last is not None and (now + gap) - last < COOLDOWN:
                pingpongs += 1
        now += gap + spacing
    return pingpongs


@settings(max_examples=200, deadline=None)
@given(trace=pairs)
def test_feedback_never_admits_a_pingpong(trace):
    assert replay(FeedbackController(cooldown=COOLDOWN), trace) == 0


@settings(max_examples=200, deadline=None)
@given(trace=pairs)
def test_feedback_reduces_pingpong_vs_always_admit(trace):
    always = replay(AlwaysAdmit(), trace)
    feedback = replay(FeedbackController(cooldown=COOLDOWN), trace)
    assert feedback <= always
    if any(gap < COOLDOWN for _, gap, _ in trace):
        # The trace provably contains a within-cooldown re-promotion
        # (every demote is admitted by both controllers), so the
        # reduction must be strict.
        assert feedback < always
