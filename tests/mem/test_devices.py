"""Memory devices: capacity tracking and access timing."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.devices import DeviceFullError, DeviceKind, DeviceSpec, MemoryDevice


def make_device(capacity=1 << 20, read_bw=1e9, write_bw=5e8, latency=1e-7):
    spec = DeviceSpec(
        name="test",
        capacity=capacity,
        read_bandwidth=read_bw,
        write_bandwidth=write_bw,
        latency=latency,
    )
    return MemoryDevice(spec, DeviceKind.FAST)


class TestSpec:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", 0, 1.0, 1.0)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", 1, 0.0, 1.0)
        with pytest.raises(ValueError):
            DeviceSpec("x", 1, 1.0, -1.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", 1, 1.0, 1.0, latency=-1.0)

    def test_with_capacity_preserves_other_fields(self):
        spec = DeviceSpec("x", 100, 2.0, 3.0, latency=0.5)
        resized = spec.with_capacity(200)
        assert resized.capacity == 200
        assert resized.read_bandwidth == 2.0
        assert resized.write_bandwidth == 3.0
        assert resized.latency == 0.5
        assert resized.name == "x"


class TestDeviceKind:
    def test_other_flips(self):
        assert DeviceKind.FAST.other() is DeviceKind.SLOW
        assert DeviceKind.SLOW.other() is DeviceKind.FAST


class TestAllocation:
    def test_allocate_and_release(self):
        device = make_device(capacity=100)
        device.allocate(60)
        assert device.used == 60
        assert device.free == 40
        device.release(20)
        assert device.used == 40

    def test_overflow_raises(self):
        device = make_device(capacity=100)
        device.allocate(80)
        with pytest.raises(DeviceFullError):
            device.allocate(21)
        assert device.used == 80  # failed allocation left state intact

    def test_over_release_raises(self):
        device = make_device(capacity=100)
        device.allocate(10)
        with pytest.raises(ValueError):
            device.release(11)

    def test_negative_amounts_rejected(self):
        device = make_device()
        with pytest.raises(ValueError):
            device.allocate(-1)
        with pytest.raises(ValueError):
            device.release(-1)

    def test_fits(self):
        device = make_device(capacity=100)
        device.allocate(90)
        assert device.fits(10)
        assert not device.fits(11)

    def test_peak_tracking(self):
        device = make_device(capacity=100)
        device.allocate(70)
        device.release(50)
        device.allocate(10)
        assert device.peak_used == 70
        device.reset_peak()
        assert device.peak_used == 30

    @given(
        ops=st.lists(
            st.integers(min_value=1, max_value=1000),
            min_size=1,
            max_size=50,
        )
    )
    def test_alloc_release_conservation(self, ops):
        device = make_device(capacity=10**6)
        total = 0
        for amount in ops:
            device.allocate(amount)
            total += amount
        assert device.used == total
        for amount in ops:
            device.release(amount)
        assert device.used == 0


class TestTiming:
    def test_read_write_asymmetry(self):
        device = make_device(read_bw=1000.0, write_bw=500.0, latency=0.0)
        assert device.access_time(1000, is_write=False) == pytest.approx(1.0)
        assert device.access_time(1000, is_write=True) == pytest.approx(2.0)

    def test_latency_added(self):
        device = make_device(read_bw=1000.0, latency=0.5)
        assert device.access_time(1000, is_write=False) == pytest.approx(1.5)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            make_device().access_time(-1, is_write=False)


class TestReservations:
    def test_reserve_withholds_from_free_not_used(self):
        device = make_device(capacity=1000)
        granted = device.reserve(300)
        assert granted == 300
        assert device.reserved == 300
        assert device.used == 0
        assert device.free == 700

    def test_reserve_grant_clamped_to_free(self):
        device = make_device(capacity=1000)
        device.allocate(800)
        assert device.reserve(500) == 200
        assert device.free == 0

    def test_allocate_cannot_consume_reserved(self):
        device = make_device(capacity=1000)
        device.reserve(400)
        with pytest.raises(DeviceFullError, match="reserved"):
            device.allocate(700)
        assert not device.fits(700)
        device.allocate(600)  # exactly the unreserved remainder

    def test_unreserve_restores_free(self):
        device = make_device(capacity=1000)
        device.reserve(400)
        device.unreserve(400)
        assert device.reserved == 0
        assert device.free == 1000

    def test_unreserve_more_than_reserved_rejected(self):
        device = make_device(capacity=1000)
        device.reserve(100)
        with pytest.raises(ValueError):
            device.unreserve(200)

    def test_capacity_partition_invariant(self):
        device = make_device(capacity=1000)
        device.allocate(250)
        device.reserve(300)
        assert device.used + device.reserved + device.free == 1000


class TestAccountingError:
    """Underflow is a typed, attributed failure — not a bare ValueError."""

    def test_over_release_raises_typed_error(self):
        from repro.errors import AccountingError, ReproError

        device = make_device()
        device.allocate(10)
        with pytest.raises(AccountingError) as excinfo:
            device.release(11)
        err = excinfo.value
        assert err.device == "test"
        assert err.counter == "used"
        assert isinstance(err, ReproError)
        # Back-compat: pre-typed callers caught ValueError; they still do.
        assert isinstance(err, ValueError)

    def test_over_unreserve_raises_typed_error(self):
        from repro.errors import AccountingError

        device = make_device(capacity=1000)
        device.reserve(100)
        with pytest.raises(AccountingError) as excinfo:
            device.unreserve(200)
        assert excinfo.value.device == "test"
        assert excinfo.value.counter == "reserved"

    def test_message_names_device_counter_and_amounts(self):
        from repro.errors import AccountingError

        device = make_device()
        device.allocate(5)
        with pytest.raises(
            AccountingError, match=r"test: used accounting underflow"
        ):
            device.release(6)

    def test_negative_amounts_stay_plain_value_errors(self):
        from repro.errors import AccountingError

        device = make_device()
        for call in (device.release, device.unreserve):
            with pytest.raises(ValueError) as excinfo:
                call(-1)
            assert not isinstance(excinfo.value, AccountingError)
