"""TLB: LRU behaviour and flush semantics."""

import pytest

from repro.mem.tlb import TLB


class TestTLB:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TLB(capacity=0)

    def test_miss_then_hit(self):
        tlb = TLB(capacity=4)
        assert not tlb.lookup(1)
        assert tlb.lookup(1)
        assert tlb.hits == 1
        assert tlb.misses == 1

    def test_lru_eviction(self):
        tlb = TLB(capacity=2)
        tlb.lookup(1)
        tlb.lookup(2)
        tlb.lookup(1)  # refresh 1; 2 is now LRU
        tlb.lookup(3)  # evicts 2
        assert 1 in tlb
        assert 2 not in tlb
        assert 3 in tlb

    def test_flush_single(self):
        tlb = TLB()
        tlb.lookup(5)
        tlb.flush(5)
        assert 5 not in tlb
        tlb.flush(5)  # idempotent

    def test_flush_all(self):
        tlb = TLB()
        for vpn in range(10):
            tlb.lookup(vpn)
        tlb.flush_all()
        assert len(tlb) == 0

    def test_capacity_never_exceeded(self):
        tlb = TLB(capacity=8)
        for vpn in range(100):
            tlb.lookup(vpn)
        assert len(tlb) == 8

    def test_reset_stats(self):
        tlb = TLB()
        tlb.lookup(1)
        tlb.lookup(1)
        tlb.reset_stats()
        assert tlb.hits == 0
        assert tlb.misses == 0
