"""First-touch NUMA placement."""

import pytest

from repro.mem.devices import DeviceFullError, DeviceKind, DeviceSpec, MemoryDevice
from repro.mem.numa import FirstTouchPolicy


PAGE = 4096


def make_pair(fast_capacity=100 * PAGE, slow_capacity=1000 * PAGE):
    fast = MemoryDevice(
        DeviceSpec("fast", fast_capacity, 1e9, 1e9), DeviceKind.FAST
    )
    slow = MemoryDevice(
        DeviceSpec("slow", slow_capacity, 1e8, 1e8), DeviceKind.SLOW
    )
    return fast, slow


class TestFirstTouch:
    def test_prefers_fast_while_it_fits(self):
        fast, slow = make_pair()
        policy = FirstTouchPolicy(fast, slow)
        assert policy.choose(50 * PAGE) is DeviceKind.FAST

    def test_spills_to_slow_when_fast_full(self):
        fast, slow = make_pair(fast_capacity=100 * PAGE)
        fast.allocate(90 * PAGE)
        policy = FirstTouchPolicy(fast, slow)
        assert policy.choose(20 * PAGE) is DeviceKind.SLOW
        assert policy.spilled_pages == 1

    def test_no_correction_after_spill(self):
        """First-touch never migrates: once spilled, always slow for big
        allocations, even after fast frees up — the *placement* decision is
        per allocation, so freeing fast lets new pages in again."""
        fast, slow = make_pair(fast_capacity=100 * PAGE)
        fast.allocate(100 * PAGE)
        policy = FirstTouchPolicy(fast, slow)
        assert policy.choose(10 * PAGE) is DeviceKind.SLOW
        fast.release(100 * PAGE)
        assert policy.choose(10 * PAGE) is DeviceKind.FAST

    def test_raises_when_neither_fits(self):
        fast, slow = make_pair(fast_capacity=10 * PAGE, slow_capacity=10 * PAGE)
        policy = FirstTouchPolicy(fast, slow)
        with pytest.raises(DeviceFullError):
            policy.choose(11 * PAGE)

    def test_preferred_slow(self):
        fast, slow = make_pair()
        policy = FirstTouchPolicy(fast, slow, preferred=DeviceKind.SLOW)
        assert policy.choose(10 * PAGE) is DeviceKind.SLOW
