"""Pressure governor: watermarks, reserve pool, spill fallback, reclaim."""

import pytest

from repro.errors import DeviceFullError
from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import OPTANE_HM
from repro.mem.pressure import PressureConfig, PressureGovernor
from repro.obs import EventTracer

PAGE = OPTANE_HM.page_size


def make_machine(fast_pages=64, tracer=None, **pressure_kwargs):
    config = PressureConfig(**pressure_kwargs) if pressure_kwargs else None
    return Machine.for_platform(
        OPTANE_HM,
        fast_capacity=fast_pages * PAGE,
        tracer=tracer,
        pressure=config,
    )


def fill_fast(machine, npages, initialized=True, now=0.0):
    run = machine.map_run(npages, DeviceKind.FAST, now)
    run.initialized = initialized
    return run


class TestPressureConfig:
    def test_defaults_are_disabled(self):
        config = PressureConfig()
        assert not config.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"low_watermark": 0.0},
            {"low_watermark": 1.5},
            {"low_watermark": 0.9, "high_watermark": 0.5},
            {"high_watermark": 1.2},
            {"reserve_frames": -1},
            {"compact_fragmentation_threshold": 1.5},
            {"max_compaction_moves": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PressureConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"low_watermark": 0.5},
            {"low_watermark": 0.5, "high_watermark": 0.9},
            {"reserve_frames": 4},
        ],
    )
    def test_any_real_knob_enables(self, kwargs):
        assert PressureConfig(**kwargs).enabled

    def test_watermarks_constructor(self):
        config = PressureConfig.watermarks(0.6, 0.8, reserve_frames=16)
        assert config.low_watermark == 0.6
        assert config.high_watermark == 0.8
        assert config.reserve_frames == 16

    def test_watermarks_overrides(self):
        config = PressureConfig.watermarks(0.6, 0.8, spill_to_slow=False)
        assert not config.spill_to_slow


class TestGovernorWiring:
    def test_disabled_config_builds_no_governor(self):
        machine = Machine.for_platform(
            OPTANE_HM, fast_capacity=PAGE * 8, pressure=PressureConfig()
        )
        assert machine.pressure is None
        assert machine.migration.governor is None

    def test_no_config_builds_no_governor(self):
        machine = Machine.for_platform(OPTANE_HM, fast_capacity=PAGE * 8)
        assert machine.pressure is None

    def test_enabled_config_wires_engine(self):
        machine = make_machine(low_watermark=0.5, high_watermark=0.8)
        assert isinstance(machine.pressure, PressureGovernor)
        assert machine.migration.governor is machine.pressure


class TestReservePool:
    def test_reserve_bytes(self):
        machine = make_machine(reserve_frames=8)
        assert machine.pressure.reserve_bytes == 8 * PAGE

    def test_urgent_sees_true_free(self):
        machine = make_machine(fast_pages=64, reserve_frames=8)
        fill_fast(machine, 32)
        governor = machine.pressure
        assert governor.available(urgent=True) == 32 * PAGE
        assert governor.available(urgent=False) == 24 * PAGE

    def test_background_promotion_cannot_consume_reserve(self):
        machine = make_machine(fast_pages=16, reserve_frames=8)
        fill_fast(machine, 8)  # free = 8 pages, all of it reserve
        victim = machine.map_run(4, DeviceKind.SLOW)
        _, scheduled, skipped = machine.migration.promote([victim], now=0.0)
        assert scheduled == []
        assert skipped and skipped[0].vpn == victim.vpn

    def test_urgent_promotion_consumes_reserve(self):
        machine = make_machine(fast_pages=16, reserve_frames=8)
        fill_fast(machine, 8)
        victim = machine.map_run(4, DeviceKind.SLOW)
        transfer, scheduled, skipped = machine.migration.promote(
            [victim], now=0.0, urgent=True
        )
        assert transfer is not None and skipped == []
        assert scheduled[0].vpn == victim.vpn

    def test_background_promotion_splits_at_reserve_boundary(self):
        machine = make_machine(fast_pages=16, reserve_frames=8)
        fill_fast(machine, 4)  # 12 free, 4 above the reserve
        victim = machine.map_run(8, DeviceKind.SLOW)
        _, scheduled, skipped = machine.migration.promote([victim], now=0.0)
        assert sum(r.npages for r in scheduled) == 4
        assert sum(r.npages for r in skipped) == 4


class TestAllocationSpill:
    def test_oversized_fast_request_spills_to_slow(self):
        machine = make_machine(fast_pages=16, reserve_frames=4)
        fill_fast(machine, 8)
        run = machine.map_run(8, DeviceKind.FAST)  # > 4 admissible pages
        assert run.device is DeviceKind.SLOW
        assert machine.stats.counter("pressure.spills").value == 1
        assert (
            machine.stats.counter("pressure.spilled_bytes").value == 8 * PAGE
        )

    def test_request_past_high_watermark_spills(self):
        machine = make_machine(fast_pages=64, low_watermark=0.5, high_watermark=0.5)
        run = machine.map_run(40, DeviceKind.FAST)  # 40/64 > 0.5
        assert run.device is DeviceKind.SLOW
        assert machine.stats.counter("pressure.spills").value == 1

    def test_admissible_request_stays_fast(self):
        machine = make_machine(fast_pages=64, low_watermark=0.5, high_watermark=0.5)
        run = machine.map_run(16, DeviceKind.FAST)
        assert run.device is DeviceKind.FAST
        assert machine.stats.counter("pressure.spills").value == 0

    def test_spill_disabled_raises_as_before(self):
        machine = make_machine(
            fast_pages=16, reserve_frames=4, spill_to_slow=False
        )
        fill_fast(machine, 14)
        with pytest.raises(DeviceFullError):
            machine.map_run(8, DeviceKind.FAST)

    def test_no_governor_raises_as_before(self):
        machine = make_machine(fast_pages=16)
        fill_fast(machine, 14)
        with pytest.raises(DeviceFullError):
            machine.map_run(8, DeviceKind.FAST)

    def test_spill_emits_trace_instant(self):
        tracer = EventTracer()
        machine = make_machine(
            fast_pages=16, low_watermark=0.5, high_watermark=0.5, tracer=tracer
        )
        machine.map_run(12, DeviceKind.FAST)
        spills = [
            e for e in tracer.events if e.cat == "pressure" and e.name == "spill"
        ]
        assert len(spills) == 1
        assert spills[0].args["nbytes"] == 12 * PAGE


def promote_urgent(machine, npages, now=0.0):
    """Push fast usage up through the demand lane (admission can't stop it)."""
    run = machine.map_run(npages, DeviceKind.SLOW, now)
    run.initialized = True
    transfer, scheduled, _ = machine.migration.promote([run], now, urgent=True)
    assert transfer is not None and scheduled
    machine.migration.sync(transfer.finish)
    return run


class TestPromotionRefusal:
    def test_background_refused_above_high(self):
        machine = make_machine(fast_pages=64, low_watermark=0.5, high_watermark=0.5)
        promote_urgent(machine, 40)
        victim = machine.map_run(4, DeviceKind.SLOW)
        transfer, scheduled, skipped = machine.migration.promote(
            [victim], now=0.0
        )
        assert transfer is None and scheduled == []
        assert skipped[0].vpn == victim.vpn
        assert machine.stats.counter("pressure.refused_promotions").value == 1
        assert (
            machine.stats.counter("pressure.refused_bytes").value == 4 * PAGE
        )

    def test_urgent_never_refused(self):
        machine = make_machine(fast_pages=64, low_watermark=0.5, high_watermark=0.5)
        promote_urgent(machine, 40)
        victim = machine.map_run(4, DeviceKind.SLOW)
        transfer, scheduled, _ = machine.migration.promote(
            [victim], now=0.0, urgent=True
        )
        assert transfer is not None and scheduled
        assert machine.stats.counter("pressure.refused_promotions").value == 0

    def test_refusal_emits_trace_instant(self):
        tracer = EventTracer()
        machine = make_machine(
            fast_pages=64, low_watermark=0.5, high_watermark=0.5, tracer=tracer
        )
        promote_urgent(machine, 40)
        victim = machine.map_run(4, DeviceKind.SLOW)
        machine.migration.promote([victim], now=0.0)
        refused = [
            e
            for e in tracer.events
            if e.cat == "pressure" and e.name == "refused-promotion"
        ]
        assert len(refused) == 1


class TestReclaim:
    def test_crossing_low_demotes_cold_runs(self):
        machine = make_machine(fast_pages=64, low_watermark=0.5)
        runs = [fill_fast(machine, 8) for _ in range(5)]  # 40/64 > 0.5
        governor = machine.pressure
        assert machine.stats.counter("pressure.reclaims").value >= 1
        machine.migration.sync(1e9)
        assert governor.used_fraction() <= 0.5
        demoted = [r for r in runs if r.device is DeviceKind.SLOW]
        assert demoted, "reclaim never demoted anything"

    def test_pinned_and_uninitialized_runs_survive_reclaim(self):
        machine = make_machine(fast_pages=64, low_watermark=0.5)
        pinned = fill_fast(machine, 8)
        pinned.pinned = True
        fresh = fill_fast(machine, 8, initialized=False)
        for _ in range(4):
            fill_fast(machine, 8)
        machine.migration.sync(1e9)
        assert pinned.device is DeviceKind.FAST
        assert fresh.device is DeviceKind.FAST

    def test_reclaim_counts_inflight_demotes(self):
        """Back-to-back usage notes must not over-demote."""
        machine = make_machine(fast_pages=64, low_watermark=0.5)
        for _ in range(5):
            fill_fast(machine, 8)
        first = machine.stats.counter("pressure.reclaims").value
        machine.pressure.note_usage(0.0)  # demotes still in flight
        assert machine.stats.counter("pressure.reclaims").value == first

    def test_crossings_traced_and_counted(self):
        tracer = EventTracer()
        machine = make_machine(
            fast_pages=64, low_watermark=0.5, high_watermark=0.75, tracer=tracer
        )
        for _ in range(7):
            fill_fast(machine, 8)  # 56/64 crosses both watermarks
        names = {
            e.name for e in tracer.events if e.cat == "pressure"
        }
        assert "watermark-low-enter" in names
        assert "watermark-high-enter" in names
        assert machine.stats.counter("pressure.low_crossings").value >= 1
        assert machine.stats.counter("pressure.high_crossings").value >= 1
        machine.migration.sync(1e9)
        # Reclaim stops *at* the low watermark; drop usage below it so the
        # exit edge actually fires.
        for run in list(machine.page_table.entries()):
            if run.device is DeviceKind.FAST and not run.in_flight:
                machine.unmap_run(run, now=1e9)
        machine.pressure.note_usage(1e9)
        names = {e.name for e in tracer.events if e.cat == "pressure"}
        assert "watermark-low-exit" in names


class TestDisabledIsByteIdentical:
    def test_disabled_config_trace_matches_no_config(self):
        """The governor's existence must be unobservable when disabled."""

        def traced_run(pressure):
            from repro.harness.runner import run_policy

            tracer = EventTracer()
            run_policy(
                "sentinel",
                model="dcgan",
                fast_fraction=0.2,
                steady_steps=4,
                tracer=tracer,
                pressure=pressure,
            )
            return [
                (e.name, e.cat, e.ts, e.dur, tuple(sorted(e.args.items())))
                for e in tracer.events
            ]

        assert traced_run(None) == traced_run(PressureConfig())
