"""Machine assembly and composite operations."""

import pytest

from repro.mem.devices import DeviceKind
from repro.mem.machine import Machine
from repro.mem.platforms import GPU_HM, OPTANE_HM, Platform


class TestPlatforms:
    def test_presets_are_sane(self):
        for platform in (OPTANE_HM, GPU_HM):
            assert platform.fast.read_bandwidth > platform.slow.read_bandwidth or (
                platform is OPTANE_HM
            )
            assert platform.promote_bandwidth > 0
            assert platform.page_size & (platform.page_size - 1) == 0

    def test_optane_is_cpu_gpu_is_residency(self):
        assert not OPTANE_HM.residency_required
        assert GPU_HM.residency_required

    def test_fast_slower_than_slow_ratio(self):
        """The fast tier must actually be faster (the evaluation's premise)."""
        assert OPTANE_HM.fast.read_bandwidth > 3 * OPTANE_HM.slow.read_bandwidth
        assert GPU_HM.fast.read_bandwidth > 10 * GPU_HM.promote_bandwidth

    def test_with_fast_capacity(self):
        resized = OPTANE_HM.with_fast_capacity(123456789)
        assert resized.fast.capacity == 123456789
        assert resized.slow.capacity == OPTANE_HM.slow.capacity

    def test_with_capacity_validation(self):
        with pytest.raises(ValueError):
            OPTANE_HM.with_fast_capacity(0)
        with pytest.raises(ValueError):
            OPTANE_HM.with_slow_capacity(-5)


class TestMachine:
    def test_for_platform_resizes_fast(self):
        machine = Machine.for_platform(OPTANE_HM, fast_capacity=1 << 20)
        assert machine.fast.capacity == 1 << 20

    def test_map_run_charges_device(self):
        machine = Machine.for_platform(OPTANE_HM, fast_capacity=1 << 20)
        run = machine.map_run(4, DeviceKind.FAST)
        assert machine.fast.used == 4 * machine.page_size
        assert run.device is DeviceKind.FAST

    def test_unmap_run_releases_and_flushes(self):
        machine = Machine.for_platform(OPTANE_HM, fast_capacity=1 << 20)
        run = machine.map_run(4, DeviceKind.FAST)
        machine.tlb.lookup(run.vpn)
        machine.unmap_run(run, now=0.0)
        assert machine.fast.used == 0
        assert run.vpn not in machine.page_table
        assert run.vpn not in machine.tlb

    def test_unmap_inflight_run_settles(self):
        machine = Machine.for_platform(OPTANE_HM, fast_capacity=1 << 20)
        run = machine.map_run(4, DeviceKind.SLOW)
        machine.migration.promote([run], now=0.0)
        machine.unmap_run(run, now=0.0)
        assert machine.fast.used == 0
        assert machine.slow.used == 0

    def test_access_time_dispatch(self):
        machine = Machine(OPTANE_HM)
        fast_time = machine.access_time(DeviceKind.FAST, 1 << 20, is_write=False)
        slow_time = machine.access_time(DeviceKind.SLOW, 1 << 20, is_write=False)
        assert slow_time > fast_time

    def test_dram_cache_lazy_and_memoized(self):
        machine = Machine(OPTANE_HM)
        assert machine.dram_cache is machine.dram_cache

    def test_demand_channel_separate_from_prefetch(self):
        machine = Machine(OPTANE_HM)
        assert machine.demand_channel is not machine.promote_channel
        assert machine.migration.demand_channel is machine.demand_channel
