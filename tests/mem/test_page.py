"""Page table: run mapping, splitting, poisoning, migration state."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.devices import DeviceKind
from repro.mem.page import PageError, PageTable, PageTableEntry


class TestMapping:
    def test_map_run_assigns_sequential_vpns(self):
        table = PageTable()
        first = table.map_run(4, DeviceKind.SLOW)
        second = table.map_run(2, DeviceKind.SLOW)
        assert first.vpn == 0
        assert second.vpn == 4
        assert table.mapped_pages == 6

    def test_vpns_never_reused(self):
        table = PageTable()
        run = table.map_run(3, DeviceKind.SLOW)
        table.unmap(run.vpn)
        fresh = table.map_run(1, DeviceKind.SLOW)
        assert fresh.vpn == 3

    def test_zero_pages_rejected(self):
        with pytest.raises(ValueError):
            PageTable().map_run(0, DeviceKind.SLOW)

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            PageTable(page_size=3000)

    def test_unmap_missing_raises(self):
        with pytest.raises(PageError):
            PageTable().unmap(7)

    def test_entry_lookup(self):
        table = PageTable()
        run = table.map_run(1, DeviceKind.FAST)
        assert table.entry(run.vpn) is run
        with pytest.raises(PageError):
            table.entry(99)

    def test_contains_and_len(self):
        table = PageTable()
        run = table.map_run(5, DeviceKind.SLOW)
        assert run.vpn in table
        assert len(table) == 1

    def test_runs_on_and_bytes_on(self):
        table = PageTable(page_size=4096)
        slow = table.map_run(2, DeviceKind.SLOW)
        table.map_run(3, DeviceKind.FAST)
        assert [r.vpn for r in table.runs_on(DeviceKind.SLOW)] == [slow.vpn]
        assert table.bytes_on(DeviceKind.FAST) == 3 * 4096


class TestSplit:
    def test_split_preserves_totals(self):
        table = PageTable()
        run = table.map_run(10, DeviceKind.SLOW)
        tail = table.split(run.vpn, 4)
        assert run.npages == 4
        assert tail.npages == 6
        assert tail.vpn == run.vpn + 4
        assert table.mapped_pages == 10

    def test_split_inherits_state(self):
        table = PageTable()
        run = table.map_run(4, DeviceKind.FAST)
        run.poisoned = True
        run.pinned = True
        run.initialized = True
        tail = table.split(run.vpn, 1)
        assert tail.device is DeviceKind.FAST
        assert tail.poisoned and tail.pinned and tail.initialized

    def test_split_out_of_range_rejected(self):
        table = PageTable()
        run = table.map_run(4, DeviceKind.SLOW)
        with pytest.raises(PageError):
            table.split(run.vpn, 0)
        with pytest.raises(PageError):
            table.split(run.vpn, 4)

    def test_split_in_flight_rejected(self):
        table = PageTable()
        run = table.map_run(4, DeviceKind.SLOW)
        run.begin_migration(DeviceKind.FAST, available_at=1.0)
        with pytest.raises(PageError):
            table.split(run.vpn, 2)

    @given(
        npages=st.integers(min_value=2, max_value=1000),
        data=st.data(),
    )
    def test_repeated_splits_conserve_pages(self, npages, data):
        table = PageTable()
        run = table.map_run(npages, DeviceKind.SLOW)
        for _ in range(data.draw(st.integers(min_value=1, max_value=5))):
            candidates = [e for e in table.entries() if e.npages >= 2]
            if not candidates:
                break
            target = candidates[0]
            point = data.draw(
                st.integers(min_value=1, max_value=target.npages - 1)
            )
            table.split(target.vpn, point)
        assert table.mapped_pages == npages
        # Runs tile the vpn space with no overlap.
        spans = sorted((e.vpn, e.npages) for e in table.entries())
        cursor = run.vpn
        for vpn, count in spans:
            assert vpn == cursor
            cursor += count


class TestMigrationState:
    def test_begin_and_commit(self):
        entry = PageTableEntry(vpn=0, npages=1, device=DeviceKind.SLOW)
        entry.begin_migration(DeviceKind.FAST, available_at=2.0)
        assert entry.in_flight
        source = entry.commit_migration()
        assert source is DeviceKind.SLOW
        assert entry.device is DeviceKind.FAST
        assert not entry.in_flight

    def test_double_begin_rejected(self):
        entry = PageTableEntry(vpn=0, npages=1, device=DeviceKind.SLOW)
        entry.begin_migration(DeviceKind.FAST, 1.0)
        with pytest.raises(PageError):
            entry.begin_migration(DeviceKind.FAST, 2.0)

    def test_migrate_to_same_device_rejected(self):
        entry = PageTableEntry(vpn=0, npages=1, device=DeviceKind.SLOW)
        with pytest.raises(PageError):
            entry.begin_migration(DeviceKind.SLOW, 1.0)

    def test_pinned_cannot_migrate(self):
        entry = PageTableEntry(vpn=0, npages=1, device=DeviceKind.SLOW, pinned=True)
        with pytest.raises(PageError):
            entry.begin_migration(DeviceKind.FAST, 1.0)

    def test_commit_without_begin_rejected(self):
        entry = PageTableEntry(vpn=0, npages=1, device=DeviceKind.SLOW)
        with pytest.raises(PageError):
            entry.commit_migration()

    def test_effective_device_respects_completion_time(self):
        entry = PageTableEntry(vpn=0, npages=1, device=DeviceKind.SLOW)
        entry.begin_migration(DeviceKind.FAST, available_at=5.0)
        assert entry.effective_device(4.9) is DeviceKind.SLOW
        assert entry.effective_device(5.0) is DeviceKind.FAST


class TestPoison:
    def test_poison_all_and_unpoison_all(self):
        table = PageTable()
        runs = [table.map_run(1, DeviceKind.SLOW) for _ in range(3)]
        table.poison_all()
        assert all(r.poisoned for r in runs)
        table.unpoison_all()
        assert not any(r.poisoned for r in runs)

    def test_access_counters(self):
        entry = PageTableEntry(vpn=0, npages=2, device=DeviceKind.SLOW)
        entry.reads = 3
        entry.writes = 4
        assert entry.accesses == 7
        entry.reset_counts()
        assert entry.accesses == 0
