"""Fault handler: Sentinel's poison-count-flush access counting."""

import pytest

from repro.chaos import ChaosConfig, FaultInjector
from repro.mem.devices import DeviceKind
from repro.mem.faults import FaultHandler
from repro.mem.page import PageTable
from repro.mem.tlb import TLB


@pytest.fixture
def setup():
    table = PageTable()
    tlb = TLB()
    handler = FaultHandler(table, tlb, fault_cost=1e-6)
    run = table.map_run(8, DeviceKind.SLOW)
    return table, tlb, handler, run


class TestFaultHandler:
    def test_negative_cost_rejected(self):
        table = PageTable()
        with pytest.raises(ValueError):
            FaultHandler(table, TLB(), fault_cost=-1.0)

    def test_unpoisoned_access_is_free_and_uncounted(self, setup):
        _, _, handler, run = setup
        assert handler.on_access_pass(run, 8, is_write=False) == 0.0
        assert run.accesses == 0
        assert handler.faults_taken == 0

    def test_poisoned_access_counts_per_page(self, setup):
        _, _, handler, run = setup
        run.poisoned = True
        cost = handler.on_access_pass(run, 8, is_write=False)
        assert run.reads == 8
        assert handler.faults_taken == 8
        assert cost == pytest.approx(8e-6)

    def test_write_counts_separately(self, setup):
        _, _, handler, run = setup
        run.poisoned = True
        handler.on_access_pass(run, 3, is_write=True)
        assert run.writes == 3
        assert run.reads == 0

    def test_multiple_passes_multiply(self, setup):
        _, _, handler, run = setup
        run.poisoned = True
        cost = handler.on_access_pass(run, 2, is_write=False, passes=5)
        assert run.reads == 10
        assert cost == pytest.approx(10e-6)

    def test_run_stays_poisoned_for_next_access(self, setup):
        _, _, handler, run = setup
        run.poisoned = True
        handler.on_access_pass(run, 1, is_write=False)
        assert run.poisoned
        handler.on_access_pass(run, 1, is_write=False)
        assert run.reads == 2

    def test_tlb_entry_flushed_after_counting(self, setup):
        _, tlb, handler, run = setup
        run.poisoned = True
        tlb.lookup(run.vpn)
        tlb.flush(run.vpn)  # profiler flushes after poisoning
        handler.on_access_pass(run, 1, is_write=False)
        assert run.vpn not in tlb

    def test_partial_page_touch(self, setup):
        _, _, handler, run = setup
        run.poisoned = True
        handler.on_access_pass(run, 3, is_write=False)
        assert run.reads == 3

    def test_touching_more_pages_than_run_rejected(self, setup):
        _, _, handler, run = setup
        with pytest.raises(ValueError):
            handler.on_access_pass(run, 9, is_write=False)

    def test_zero_pages_is_free(self, setup):
        _, _, handler, run = setup
        run.poisoned = True
        assert handler.on_access_pass(run, 0, is_write=False) == 0.0

    def test_bad_passes_rejected(self, setup):
        _, _, handler, run = setup
        with pytest.raises(ValueError):
            handler.on_access_pass(run, 1, is_write=False, passes=0)

    def test_overhead_accumulates_and_resets(self, setup):
        _, _, handler, run = setup
        run.poisoned = True
        handler.on_access_pass(run, 4, is_write=False)
        assert handler.overhead == pytest.approx(4e-6)
        handler.reset()
        assert handler.overhead == 0.0
        assert handler.faults_taken == 0

    def test_zero_pages_with_multiple_passes_still_free(self, setup):
        _, _, handler, run = setup
        run.poisoned = True
        assert handler.on_access_pass(run, 0, is_write=True, passes=7) == 0.0
        assert run.writes == 0
        assert handler.faults_taken == 0

    def test_multi_pass_overhead_scales_linearly(self, setup):
        _, _, handler, run = setup
        run.poisoned = True
        one = handler.on_access_pass(run, 4, is_write=False)
        handler.reset()
        many = handler.on_access_pass(run, 4, is_write=False, passes=3)
        assert many == pytest.approx(3 * one)
        assert handler.overhead == pytest.approx(many)

    def test_repoison_cycle_resumes_counting(self, setup):
        """Unpoison (profiling done) -> free accesses; re-poison -> counted."""
        _, _, handler, run = setup
        run.poisoned = True
        handler.on_access_pass(run, 2, is_write=False)
        run.poisoned = False
        assert handler.on_access_pass(run, 2, is_write=False) == 0.0
        assert run.reads == 2  # the unpoisoned pass left no trace
        run.poisoned = True
        handler.on_access_pass(run, 2, is_write=False)
        assert run.reads == 4
        assert handler.faults_taken == 4


class TestLossyProfiling:
    def make_handler(self, drop_rate):
        table = PageTable()
        injector = FaultInjector(ChaosConfig(profile_drop_rate=drop_rate))
        handler = FaultHandler(table, TLB(), fault_cost=1e-6, injector=injector)
        run = table.map_run(8, DeviceKind.SLOW)
        run.poisoned = True
        return handler, run

    def test_dropped_samples_cost_time_but_miss_the_counters(self):
        handler, run = self.make_handler(drop_rate=1.0)
        cost = handler.on_access_pass(run, 8, is_write=False)
        # Every trap happened and was paid for...
        assert handler.faults_taken == 8
        assert cost == pytest.approx(8e-6)
        # ...but none of the samples reached the per-run profile.
        assert run.reads == 0
        assert handler.faults_dropped == 8

    def test_partial_drop_splits_the_accounting(self):
        handler, run = self.make_handler(drop_rate=0.5)
        handler.on_access_pass(run, 8, is_write=True)
        assert handler.faults_taken == 8
        assert run.writes + handler.faults_dropped == 8
        assert handler.faults_dropped in (4, 5)

    def test_reset_clears_dropped_count(self):
        handler, run = self.make_handler(drop_rate=1.0)
        handler.on_access_pass(run, 4, is_write=False)
        handler.reset()
        assert handler.faults_dropped == 0

    def test_zero_rate_injector_changes_nothing(self):
        handler, run = self.make_handler(drop_rate=0.0)
        handler.on_access_pass(run, 8, is_write=False)
        assert run.reads == 8
        assert handler.faults_dropped == 0
